"""Record the load-harness baseline for ``bench_load.py``.

Runs the pinned ``bench-pin`` scenario serially and with two consumers
(minimum wall time of :data:`REPEATS` runs each) and writes
``benchmarks/baselines/BENCH_load_baseline.json`` (committed — the
regression reference ``bench_load.py`` gates against).  The recording
pins two things: an absolute wall-clock reference for the serial run,
and a SHA-256 digest over the expanded job list's content
fingerprints, so any drift in the deterministic workload expansion
(seed handling, draw order, circuit generators) fails the benchmark
before timing is even consulted.  Re-run only to re-baseline
deliberately::

    PYTHONPATH=src python benchmarks/record_load_baseline.py [label]
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines"
)
BASELINE_PATH = os.path.join(BASELINE_DIR, "BENCH_load_baseline.json")

REPEATS = 3


def record() -> dict:
    from bench_load import _run, _summarize, jobs_digest
    from repro.loadgen import PRESETS

    runs = {}
    for consumers in (1, 2):
        best = None
        for _ in range(REPEATS):
            report = _run(consumers)
            if best is None or report.duration_seconds < best.duration_seconds:
                best = report
        runs[consumers] = _summarize(best)
    return {
        "label": sys.argv[1] if len(sys.argv) > 1 else "bench-pin baseline",
        "scenario": "bench-pin",
        "repeats": REPEATS,
        "jobs_fingerprint_digest": jobs_digest(PRESETS["bench-pin"]),
        "serial": runs[1],
        "parallel": runs[2],
    }


def main() -> None:
    baseline = record()
    os.makedirs(BASELINE_DIR, exist_ok=True)
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote {BASELINE_PATH}")
    print(json.dumps(baseline, indent=2))


if __name__ == "__main__":
    main()
