"""Record the compile/optimize/simulate/verify wall-time baseline.

Times the four phases on the paper suite (reduced random ensemble,
L6 machine) and writes ``benchmarks/baselines/BENCH_compile_baseline.json``
(committed — the regression reference ``bench_compile.py`` gates
against).  When an earlier baseline exists, its phase totals are
carried into the new recording under ``"previous"`` (with its label),
so the benchmark can keep reporting the speedup that justified the
re-baseline — e.g. the future-gate-index engine's compile win is
pinned against the tail-rescanning recording it retired.  Each row
also records a process-independent content fingerprint of the raw
compiled schedule (:mod:`repro.batch.fingerprint`), so the benchmark
can assert that a performance change left the compiler's *output*
byte-identical, not just fast.  Re-run this script only to re-baseline
deliberately (new hardware, or a performance change whose win should
become the new floor)::

    PYTHONPATH=src python benchmarks/record_compile_baseline.py [label]
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines"
)
BASELINE_PATH = os.path.join(BASELINE_DIR, "BENCH_compile_baseline.json")

#: Repetitions per phase; the minimum is recorded (standard practice for
#: wall-clock microbenchmarks — the minimum is the least noisy statistic).
REPEATS = 3


def time_suite() -> dict:
    from repro.arch.presets import l6_machine
    from repro.batch.fingerprint import fingerprint
    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping
    from repro.passes.manager import PassManager
    from repro.passes.verify import verify_schedule
    from repro.sim.simulator import Simulator

    machine = l6_machine()
    simulator = Simulator(machine)
    compiler = QCCDCompiler(machine, CompilerConfig.optimized())
    rows = []

    for circuit in paper_suite(full=False):
        chains = greedy_initial_mapping(circuit, machine)

        compile_s = min(
            _timed(lambda: compiler.compile(circuit, initial_chains=chains))
            for _ in range(REPEATS)
        )
        result = compiler.compile(circuit, initial_chains=chains)

        optimize_s = min(
            _timed(
                lambda: PassManager().run(
                    result.schedule, machine, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )
        optimization = PassManager().run(
            result.schedule, machine, result.initial_chains
        )

        simulate_s = min(
            _timed(
                lambda: simulator.run(
                    optimization.schedule, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )

        verify_s = min(
            _timed(
                lambda: verify_schedule(
                    machine, optimization.schedule, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )

        rows.append(
            {
                "circuit": circuit.name,
                "num_ops": len(result.schedule),
                "schedule_fingerprint": fingerprint(list(result.schedule)),
                "compile_seconds": round(compile_s, 4),
                "optimize_seconds": round(optimize_s, 4),
                "simulate_seconds": round(simulate_s, 4),
                "verify_seconds": round(verify_s, 4),
            }
        )
        print(
            f"{circuit.name}: compile {compile_s:.3f}s  "
            f"optimize {optimize_s:.3f}s  simulate {simulate_s:.3f}s  "
            f"verify {verify_s:.3f}s",
            flush=True,
        )

    return {
        "machine": machine.name,
        "repeats": REPEATS,
        "total_compile_seconds": round(
            sum(r["compile_seconds"] for r in rows), 4
        ),
        "total_optimize_seconds": round(
            sum(r["optimize_seconds"] for r in rows), 4
        ),
        "total_simulate_seconds": round(
            sum(r["simulate_seconds"] for r in rows), 4
        ),
        "total_verify_seconds": round(
            sum(r["verify_seconds"] for r in rows), 4
        ),
        "results": rows,
    }


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def main() -> None:
    label = sys.argv[1] if len(sys.argv) > 1 else "current tree"
    summary = time_suite()
    summary["label"] = label
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            superseded = json.load(handle)
        # Carry every phase total the superseded recording has (older
        # recordings may predate the verify phase).
        summary["previous"] = {"label": superseded.get("label", "superseded baseline")}
        for key, value in superseded.items():
            if key.startswith("total_") and key.endswith("_seconds"):
                summary["previous"][key] = value
    os.makedirs(BASELINE_DIR, exist_ok=True)
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()
