"""Table III regeneration: compilation-time overhead.

pytest-benchmark times both compilers per NISQ benchmark — the measured
medians are this host's Table III.  The rendered comparison table lands
in ``benchmarks/_results/table3.txt``.
"""

import pytest

from conftest import write_result

_NAMES = ["Supremacy", "QAOA", "SquareRoot", "QFT", "QuadraticForm"]


@pytest.mark.parametrize("name", _NAMES)
@pytest.mark.parametrize("config_name", ["baseline", "optimized"])
def test_table3_compile_time(benchmark, machine, nisq_circuits, name, config_name):
    """Wall-clock of one compiler on one benchmark (3 rounds)."""
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping

    circuit = nisq_circuits[name]
    chains = greedy_initial_mapping(circuit, machine)
    config = (
        CompilerConfig.baseline()
        if config_name == "baseline"
        else CompilerConfig.optimized()
    )
    compiler = QCCDCompiler(machine, config)
    result = benchmark.pedantic(
        lambda: compiler.compile(circuit, initial_chains=chains),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["shuttles"] = result.num_shuttles
    # The paper's tractability claim: under a minute per circuit.
    assert result.compile_time < 60.0


def test_table3_full_table(suite_comparisons, results_dir):
    """Render Table III from the shared suite pass."""
    from repro.eval.table3 import render_table3

    text = render_table3(suite_comparisons)
    write_result(results_dir, "table3.txt", text)
    # Shape check: the optimized compiler costs more time on the big
    # circuits but stays far under the paper's one-minute bound.
    for comparison in suite_comparisons:
        assert comparison.optimized.compile_time < 60.0
