"""Batch-engine benchmark: parallel speedup and warm-cache replay.

Runs the paper suite (reduced random ensemble) through the batch
engine three ways — serial cold, ``n_jobs=4`` cold, and warm-cache
replay — and writes a ``BENCH_batch.json`` summary to
``benchmarks/_results/``.  On multi-core hosts the parallel run should
approach ``min(4, cores)`` times the serial throughput; the warm run
must perform zero compilations regardless of core count.

Run with ``pytest benchmarks/bench_batch.py``.
"""

import json
import time

from conftest import write_result


def _suite_jobs():
    from repro.batch import sweep
    from repro.bench.suite import paper_suite
    from repro.compiler.config import CompilerConfig

    return sweep(
        paper_suite(full=False),
        _machine(),
        [CompilerConfig.baseline(), CompilerConfig.optimized()],
    )


def _machine():
    from repro.arch.presets import l6_machine

    return l6_machine()


def _timed_run(n_jobs, cache=None):
    from repro.batch import BatchRunner

    runner = BatchRunner(n_jobs=n_jobs, cache=cache)
    start = time.perf_counter()
    results = runner.run_or_raise(_suite_jobs())
    elapsed = time.perf_counter() - start
    return elapsed, results, runner


def test_batch_speedup_and_warm_cache(results_dir, tmp_path):
    from repro.batch import ResultCache

    serial_seconds, serial_results, _ = _timed_run(n_jobs=1)
    parallel_seconds, parallel_results, _ = _timed_run(n_jobs=4)

    # Determinism: a parallel pass is element-wise identical.
    for a, b in zip(serial_results, parallel_results):
        assert a.result == b.result

    cache_dir = tmp_path / "cache"
    fill_seconds, _, fill_runner = _timed_run(
        n_jobs=1, cache=ResultCache(cache_dir)
    )
    warm_seconds, warm_results, warm_runner = _timed_run(
        n_jobs=1, cache=ResultCache(cache_dir)
    )
    # Zero recompilations on the warm pass.
    assert warm_runner.cache_stats.misses == 0
    assert warm_runner.cache_stats.hits == len(warm_results)
    for a, b in zip(serial_results, warm_results):
        assert a.result == b.result

    summary = {
        "suite_jobs": len(serial_results),
        "n_jobs1_seconds": round(serial_seconds, 3),
        "n_jobs4_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "cold_cached_seconds": round(fill_seconds, 3),
        "warm_cache_seconds": round(warm_seconds, 3),
        "warm_replay_speedup": round(serial_seconds / warm_seconds, 3),
        "warm_cache_hits": warm_runner.cache_stats.hits,
        "warm_recompilations": warm_runner.cache_stats.misses,
        "cache_entries": fill_runner.cache_stats.puts,
    }
    write_result(
        results_dir, "BENCH_batch.json", json.dumps(summary, indent=2)
    )
    assert summary["warm_cache_seconds"] < summary["n_jobs1_seconds"]
