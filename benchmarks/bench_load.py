"""Load-harness benchmark: pinned scenario vs the recorded baseline.

Runs the ``bench-pin`` preset (24 deterministic random circuits,
linear4, cache disabled, seed 20220308) through
:class:`repro.loadgen.LoadRunner` serially and with two consumers, and
compares against the committed recording in
``benchmarks/baselines/BENCH_load_baseline.json`` (captured by
``record_load_baseline.py``).  Writes ``benchmarks/_results/
BENCH_load.json`` with both runs' throughput and tail latencies.

Hard guarantees asserted here:

* the expanded job list's fingerprint digest equals the baseline's —
  the deterministic workload expansion cannot drift silently (a seed
  or draw-order change fails before any timing gate),
* serial and parallel runs merge to identical counters and identical
  latency-histogram counts (the registry's order-independence
  property, end to end through the harness),
* the serial run's wall time is no worse than the baseline within
  :data:`NO_WORSE_SLACK` (widen via ``REPRO_BENCH_SLACK`` on slow
  shared runners, as with ``bench_compile.py``),
* the pinned run trips no soak detector (it is far too short for the
  trend checks to conclude, and the memory check must stay
  inconclusive below its span floor rather than extrapolating noise).

Run with ``pytest benchmarks/bench_load.py``.
"""

import hashlib
import json
import os

from conftest import write_result

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "BENCH_load_baseline.json",
)

NO_WORSE_SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.25"))

#: Counters that must merge identically no matter the consumer count.
MERGE_KEYS = (
    "load.jobs",
    "load.ok",
    "batch.jobs",
    "batch.jobs_ok",
    "batch.cache_misses",
)


def jobs_digest(scenario) -> str:
    """SHA-256 over the expanded job list's content fingerprints."""
    count = scenario.job_count()
    fingerprints = [
        job.fingerprint() for job in scenario.draw_jobs(count)
    ]
    return hashlib.sha256("\n".join(fingerprints).encode()).hexdigest()


def _run(consumers):
    from repro.loadgen import LoadRunner, PRESETS

    return LoadRunner(PRESETS["bench-pin"], consumers=consumers).run()


def _summarize(report) -> dict:
    return {
        "consumers": report.consumers,
        "wall_seconds": round(report.duration_seconds, 4),
        "jobs_per_s": round(
            report.throughput["overall_jobs_per_s"], 3
        ),
        "p50_ms": round(report.latency["p50"] * 1000, 3),
        "p90_ms": round(report.latency["p90"] * 1000, 3),
        "p99_ms": round(report.latency["p99"] * 1000, 3),
        "counts": report.counts,
    }


def test_load_harness_vs_baseline(results_dir):
    from repro.loadgen import PRESETS

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    scenario = PRESETS["bench-pin"]
    digest = jobs_digest(scenario)
    assert digest == baseline["jobs_fingerprint_digest"], (
        "the bench-pin workload expansion drifted from the baseline "
        "recording: seeded scenario -> job-list determinism is broken "
        "(or the preset changed without re-recording the baseline)"
    )

    serial = _run(consumers=1)
    parallel = _run(consumers=2)

    # Order-independent merges: same counters, same histogram mass.
    for key in MERGE_KEYS:
        assert (
            serial.metrics["counters"].get(key)
            == parallel.metrics["counters"].get(key)
        ), f"counter {key} differs between serial and parallel runs"
    assert serial.counts == parallel.counts
    serial_hist = serial.metrics["histograms"]["load.latency_seconds"]
    parallel_hist = parallel.metrics["histograms"]["load.latency_seconds"]
    assert serial_hist["count"] == parallel_hist["count"]

    # The pinned run must conclude clean: nothing trips, and the
    # sub-second memory series stays inconclusive instead of
    # extrapolating allocator warm-up into a fake leak.
    assert serial.passed and parallel.passed

    summary = {
        "scenario": "bench-pin",
        "jobs_fingerprint_digest": digest,
        "baseline_label": baseline.get("label", "baseline"),
        "serial": _summarize(serial),
        "parallel": _summarize(parallel),
        "serial_speedup_vs_baseline": round(
            baseline["serial"]["wall_seconds"]
            / serial.duration_seconds,
            3,
        ),
    }
    write_result(
        results_dir, "BENCH_load.json", json.dumps(summary, indent=2)
    )

    base_wall = baseline["serial"]["wall_seconds"]
    assert serial.duration_seconds <= base_wall * NO_WORSE_SLACK, (
        f"load harness regressed: {serial.duration_seconds:.2f}s vs "
        f"baseline {base_wall:.2f}s serial wall time"
    )
