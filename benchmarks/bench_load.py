"""Load-harness benchmark: pinned scenario vs the recorded baseline.

Runs the ``bench-pin`` preset (24 deterministic random circuits,
linear4, cache disabled, seed 20220308) through
:class:`repro.loadgen.LoadRunner` serially and with two consumers, and
compares against the committed recording in
``benchmarks/baselines/BENCH_load_baseline.json`` (captured by
``record_load_baseline.py``).  Writes ``benchmarks/_results/
BENCH_load.json`` with both runs' throughput and tail latencies.

Hard guarantees asserted here:

* the expanded job list's fingerprint digest equals the baseline's —
  the deterministic workload expansion cannot drift silently (a seed
  or draw-order change fails before any timing gate),
* serial and parallel runs merge to identical counters and identical
  latency-histogram counts (the registry's order-independence
  property, end to end through the harness),
* the serial run's wall time is no worse than the baseline within
  :data:`NO_WORSE_SLACK` (widen via ``REPRO_BENCH_SLACK`` on slow
  shared runners, as with ``bench_compile.py``),
* the pinned run trips no soak detector (it is far too short for the
  trend checks to conclude, and the memory check must stay
  inconclusive below its span floor rather than extrapolating noise),
* the resilience machinery is inert when armed but uninjected: a
  supervised run (retry + timeout set, no chaos plan) costs within
  :data:`RESILIENCE_SLACK` of the legacy pool on the same jobs and
  produces bit-identical schedules (widen via
  ``REPRO_RESILIENCE_SLACK`` on noisy shared runners).

Run with ``pytest benchmarks/bench_load.py``.
"""

import hashlib
import json
import os
import time

from conftest import write_result

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "BENCH_load_baseline.json",
)

NO_WORSE_SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.25"))

#: Allowed overhead of the armed-but-uninjected supervised path over
#: the legacy pool (the ISSUE's <=5% inertness budget).  Widen via
#: ``REPRO_RESILIENCE_SLACK`` on noisy shared runners.
RESILIENCE_SLACK = float(os.environ.get("REPRO_RESILIENCE_SLACK", "1.05"))

#: Interleaved A/B repetitions for the inertness gate (minima compared,
#: as in ``bench_compile.py``'s obs overhead gate).
RESILIENCE_REPEATS = 3

#: Counters that must merge identically no matter the consumer count.
MERGE_KEYS = (
    "load.jobs",
    "load.ok",
    "batch.jobs",
    "batch.jobs_ok",
    "batch.cache_misses",
)


def jobs_digest(scenario) -> str:
    """SHA-256 over the expanded job list's content fingerprints."""
    count = scenario.job_count()
    fingerprints = [
        job.fingerprint() for job in scenario.draw_jobs(count)
    ]
    return hashlib.sha256("\n".join(fingerprints).encode()).hexdigest()


def _run(consumers):
    from repro.loadgen import LoadRunner, PRESETS

    return LoadRunner(PRESETS["bench-pin"], consumers=consumers).run()


def _summarize(report) -> dict:
    return {
        "consumers": report.consumers,
        "wall_seconds": round(report.duration_seconds, 4),
        "jobs_per_s": round(
            report.throughput["overall_jobs_per_s"], 3
        ),
        "p50_ms": round(report.latency["p50"] * 1000, 3),
        "p90_ms": round(report.latency["p90"] * 1000, 3),
        "p99_ms": round(report.latency["p99"] * 1000, 3),
        "counts": report.counts,
    }


def test_load_harness_vs_baseline(results_dir):
    from repro.loadgen import PRESETS

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    scenario = PRESETS["bench-pin"]
    digest = jobs_digest(scenario)
    assert digest == baseline["jobs_fingerprint_digest"], (
        "the bench-pin workload expansion drifted from the baseline "
        "recording: seeded scenario -> job-list determinism is broken "
        "(or the preset changed without re-recording the baseline)"
    )

    serial = _run(consumers=1)
    parallel = _run(consumers=2)

    # Order-independent merges: same counters, same histogram mass.
    for key in MERGE_KEYS:
        assert (
            serial.metrics["counters"].get(key)
            == parallel.metrics["counters"].get(key)
        ), f"counter {key} differs between serial and parallel runs"
    assert serial.counts == parallel.counts
    serial_hist = serial.metrics["histograms"]["load.latency_seconds"]
    parallel_hist = parallel.metrics["histograms"]["load.latency_seconds"]
    assert serial_hist["count"] == parallel_hist["count"]

    # The pinned run must conclude clean: nothing trips, and the
    # sub-second memory series stays inconclusive instead of
    # extrapolating allocator warm-up into a fake leak.
    assert serial.passed and parallel.passed

    summary = {
        "scenario": "bench-pin",
        "jobs_fingerprint_digest": digest,
        "baseline_label": baseline.get("label", "baseline"),
        "serial": _summarize(serial),
        "parallel": _summarize(parallel),
        "serial_speedup_vs_baseline": round(
            baseline["serial"]["wall_seconds"]
            / serial.duration_seconds,
            3,
        ),
    }
    write_result(
        results_dir, "BENCH_load.json", json.dumps(summary, indent=2)
    )

    base_wall = baseline["serial"]["wall_seconds"]
    assert serial.duration_seconds <= base_wall * NO_WORSE_SLACK, (
        f"load harness regressed: {serial.duration_seconds:.2f}s vs "
        f"baseline {base_wall:.2f}s serial wall time"
    )


def test_resilience_machinery_is_inert_when_uninjected(results_dir):
    """Armed-but-uninjected resilience must be (nearly) free and exact.

    * **Overhead gate** — running a fixed job list through the
      supervised path (retry policy + 60s timeout, *no* chaos plan)
      must cost within :data:`RESILIENCE_SLACK` of the legacy
      ``multiprocessing.Pool`` path.  Minima of interleaved A/B
      repetitions are compared so host drift hits both sides equally.
    * **Identity gate** — both paths produce bit-identical schedule
      fingerprints, all outcomes ``ok`` in one attempt, and the armed
      run increments none of the resilience counters.
    """
    from repro import obs
    from repro.arch.presets import machine_from_spec
    from repro.batch import BatchRunner, sweep
    from repro.batch.fingerprint import fingerprint
    from repro.bench import random_circuit
    from repro.compiler.config import CompilerConfig
    from repro.resilience import RetryPolicy

    machine = machine_from_spec("linear4")
    circuits = [random_circuit(24, 140, seed=s) for s in range(12)]
    jobs = sweep(circuits, machine, CompilerConfig.optimized())

    def legacy_runner():
        return BatchRunner(n_jobs=2)

    def armed_runner():
        return BatchRunner(
            n_jobs=2,
            retry=RetryPolicy(max_attempts=3),
            timeout=60.0,
        )

    def timed_run(make_runner):
        start = time.perf_counter()
        results = make_runner().run(jobs)
        return time.perf_counter() - start, results

    # Warm-up pair (fork/page-cache effects hit both sides once).
    _, legacy_results = timed_run(legacy_runner)
    _, armed_results = timed_run(armed_runner)

    legacy_fps = [fingerprint(list(r.result.schedule)) for r in legacy_results]
    armed_fps = [fingerprint(list(r.result.schedule)) for r in armed_results]
    assert legacy_fps == armed_fps, (
        "supervised execution changed compilation output"
    )
    for result in armed_results:
        assert result.ok and result.outcome == "ok"
        assert result.attempts == 1

    legacy_times, armed_times = [], []
    for _ in range(RESILIENCE_REPEATS):
        legacy_times.append(timed_run(legacy_runner)[0])
        armed_times.append(timed_run(armed_runner)[0])
    legacy_s, armed_s = min(legacy_times), min(armed_times)

    # Counter inertness: one armed run under an observation must leave
    # every resilience/chaos counter untouched.
    with obs.observe() as observation:
        armed_runner().run(jobs)
    counters = observation.metrics.counters
    for name in (
        "batch.retries",
        "batch.timeouts",
        "batch.worker_deaths",
        "batch.quarantined",
        "batch.poisoned",
        "chaos.injected",
        "cache.corrupt",
    ):
        assert counters.get(name, 0) == 0, (
            f"uninjected supervised run incremented {name}"
        )

    write_result(
        results_dir,
        "BENCH_resilience_inertness.json",
        json.dumps(
            {
                "jobs": len(jobs),
                "legacy_wall_seconds": round(legacy_s, 4),
                "armed_wall_seconds": round(armed_s, 4),
                "overhead_ratio": round(armed_s / legacy_s, 4),
                "slack": RESILIENCE_SLACK,
            },
            indent=2,
        ),
    )

    assert armed_s <= legacy_s * RESILIENCE_SLACK, (
        f"armed-but-uninjected resilience is not inert: {armed_s:.3f}s "
        f"supervised vs {legacy_s:.3f}s legacy pool "
        f"(> {(RESILIENCE_SLACK - 1) * 100:.0f}% overhead)"
    )
