"""Pass-pipeline benchmark: shuttle and fidelity deltas on the paper suite.

Compiles every circuit of the paper suite (reduced random ensemble)
with the optimized compiler on the L6 machine, runs the default
post-compilation pass pipeline on each schedule, simulates the raw and
optimized streams, and writes per-benchmark deltas to
``benchmarks/_results/BENCH_passes.json``.

Hard guarantees asserted here (the subsystem's acceptance bar):

* the pipeline never increases a shuttle count and never decreases a
  program fidelity,
* it strictly reduces total shuttle ops on at least 3 benchmarks,
* every optimized schedule passes the op-by-op legality verifier and
  executes the identical circuit.

Run with ``pytest benchmarks/bench_passes.py``.
"""

import json
import time

from conftest import write_result


def test_pass_pipeline_on_paper_suite(results_dir, machine):
    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import compile_circuit
    from repro.passes import (
        PassManager,
        verify_equivalent,
        verify_schedule,
    )
    from repro.sim.simulator import Simulator

    manager = PassManager()  # default pipeline, fidelity guard on
    simulator = Simulator(machine)
    rows = []
    strict_reductions = 0

    for circuit in paper_suite(full=False):
        result = compile_circuit(circuit, machine)
        start = time.perf_counter()
        optimization = manager.run(
            result.schedule, machine, result.initial_chains
        )
        optimize_seconds = time.perf_counter() - start

        # Safety: legality + circuit equivalence of the shipped stream.
        verify_schedule(
            machine, optimization.schedule, result.initial_chains
        )
        verify_equivalent(result.schedule, optimization.schedule)

        raw_report = simulator.run(
            optimization.raw_schedule, result.initial_chains
        )
        opt_report = simulator.run(
            optimization.schedule, result.initial_chains
        )

        # Acceptance: never more shuttles, never less fidelity.
        assert (
            optimization.num_shuttles <= optimization.raw_num_shuttles
        ), circuit.name
        assert (
            opt_report.program_log_fidelity
            >= raw_report.program_log_fidelity - 1e-9
        ), circuit.name
        assert opt_report.duration <= raw_report.duration + 1e-12

        if optimization.shuttles_removed > 0:
            strict_reductions += 1
        rows.append(
            {
                "circuit": circuit.name,
                "raw_shuttles": optimization.raw_num_shuttles,
                "optimized_shuttles": optimization.num_shuttles,
                "shuttles_removed": optimization.shuttles_removed,
                "raw_log10_fidelity": round(
                    raw_report.log10_fidelity, 4
                ),
                "optimized_log10_fidelity": round(
                    opt_report.log10_fidelity, 4
                ),
                "raw_duration_ms": round(raw_report.duration * 1e3, 3),
                "optimized_duration_ms": round(
                    opt_report.duration * 1e3, 3
                ),
                "optimize_seconds": round(optimize_seconds, 3),
                "passes": {
                    stats.name: {
                        "rewrites": stats.rewrites,
                        "shuttles_removed": stats.shuttles_removed,
                        "ops_removed": stats.ops_removed,
                        "reverted": stats.reverted,
                    }
                    for stats in optimization.passes
                    if stats.rewrites
                },
            }
        )

    assert strict_reductions >= 3, (
        f"pipeline strictly reduced shuttles on only "
        f"{strict_reductions} benchmarks"
    )
    summary = {
        "machine": machine.name,
        "benchmarks": len(rows),
        "strict_shuttle_reductions": strict_reductions,
        "total_shuttles_removed": sum(
            r["shuttles_removed"] for r in rows
        ),
        "results": rows,
    }
    write_result(
        results_dir, "BENCH_passes.json", json.dumps(summary, indent=2)
    )

    from repro.eval.report import render_optimization_table

    write_result(
        results_dir,
        "BENCH_passes.txt",
        render_optimization_table(
            [
                (
                    r["circuit"],
                    r["raw_shuttles"],
                    r["optimized_shuttles"],
                    r["raw_log10_fidelity"],
                    r["optimized_log10_fidelity"],
                )
                for r in rows
            ]
        ),
    )
