"""Fig. 8 regeneration: program-fidelity improvement.

Simulates both compiled schedules of every suite circuit under the
calibrated heating/fidelity model and reports F_thiswork / F_[7].  The
rendered figure (table + ASCII bars) lands in
``benchmarks/_results/fig8.txt``.
"""

from conftest import write_result


def test_fig8_improvements_positive(suite_comparisons, results_dir):
    """Every NISQ benchmark must improve (the paper's bars are all > 1)."""
    from repro.eval.figure8 import build_figure8, render_figure8

    bars = build_figure8(suite_comparisons)
    text = render_figure8(suite_comparisons)
    write_result(results_dir, "fig8.txt", text)

    for bar in bars:
        assert bar.improvement > 1.0, f"{bar.benchmark} regressed"

    # Dynamic-range shape: the paper spans 1.25X .. 22.68X.
    peak = max(bar.improvement for bar in bars)
    floor = min(bar.improvement for bar in bars)
    assert peak > 2.0
    assert floor > 1.0


def test_fig8_correlates_with_shuttle_savings(suite_comparisons):
    """Section IV-C: benchmarks that save more shuttle-heating see more
    fidelity improvement.  Check rank agreement loosely (Spearman-ish:
    the top saver must beat the bottom saver)."""
    nisq = [c for c in suite_comparisons if not c.is_random]
    by_delta = sorted(nisq, key=lambda c: c.shuttle_delta)
    assert (
        by_delta[-1].fidelity_improvement
        > by_delta[0].fidelity_improvement
    )


def test_fig8_simulation_is_deterministic(machine, nisq_circuits, benchmark):
    """Simulating the same schedule twice gives identical fidelity."""
    from repro.eval.harness import compare

    circuit = nisq_circuits["Supremacy"]
    first = compare(circuit, machine, simulate=True)
    second = benchmark.pedantic(
        lambda: compare(circuit, machine, simulate=True),
        rounds=1,
        iterations=1,
    )
    assert first.fidelity_improvement == second.fidelity_improvement
