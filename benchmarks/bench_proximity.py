"""E4: the gate-proximity design-parameter study (Section III-A3).

The paper: "The distance should not be too low ... and should not be
too high ... setting the proximity parameter to 6 provides good
results."  This bench sweeps the parameter over the NISQ suite (both
distance metrics) and asserts the paper's qualitative finding: the
mid-range beats both extremes.  Output:
``benchmarks/_results/proximity_sweep.txt``.
"""

from conftest import write_result

SWEEP = (0, 2, 6, 12, None)


def test_proximity_sweep(machine, nisq_circuits, results_dir, benchmark):
    from repro.eval.ablation import proximity_sweep, render_sweep

    circuits = list(nisq_circuits.values())
    points = benchmark.pedantic(
        lambda: proximity_sweep(circuits, machine, values=SWEEP),
        rounds=1,
        iterations=1,
    )
    text = "E4: shuttles vs gate-proximity (layer metric, NISQ suite)\n"
    text += render_sweep(points, "proximity")
    write_result(results_dir, "proximity_sweep.txt", text)

    by_label = {p.label: p.mean_reduction_percent for p in points}
    # The paper's design point (6) must beat a tiny window...
    assert by_label["6"] >= by_label["0"]
    # ...and must not be dominated by unbounded look-ahead.
    assert by_label["6"] >= by_label["inf"] - 1.0


def test_metric_comparison(machine, nisq_circuits, results_dir):
    """Layer-distance vs literal gate-distance reading of Fig. 5."""
    from repro.eval.ablation import proximity_sweep, render_sweep

    circuits = list(nisq_circuits.values())
    layer_points = proximity_sweep(
        circuits, machine, values=(6,), metric="layers"
    )
    gate_points = proximity_sweep(
        circuits, machine, values=(6,), metric="gates"
    )
    text = "proximity=6, layer metric:\n"
    text += render_sweep(layer_points, "proximity")
    text += "\n\nproximity=6, gate metric:\n"
    text += render_sweep(gate_points, "proximity")
    write_result(results_dir, "proximity_metric.txt", text)
    # The layer metric is the default because it wins on this suite.
    assert (
        layer_points[0].mean_reduction_percent
        >= gate_points[0].mean_reduction_percent
    )
