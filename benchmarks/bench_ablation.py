"""E5: per-heuristic ablation of the three optimizations (+ extensions).

Each of the paper's heuristics is added to the baseline alone and
removed from the full configuration, measuring its marginal value.
Output: ``benchmarks/_results/ablation.txt``.
"""

from conftest import write_result


def test_heuristic_ablation(machine, nisq_circuits, results_dir, benchmark):
    from repro.eval.ablation import heuristic_ablation, render_sweep

    circuits = list(nisq_circuits.values())
    points = benchmark.pedantic(
        lambda: heuristic_ablation(circuits, machine),
        rounds=1,
        iterations=1,
    )
    text = "E5: per-heuristic ablation (NISQ suite means)\n"
    text += render_sweep(points, "variant")
    write_result(results_dir, "ablation.txt", text)

    by_label = {p.label: p for p in points}
    baseline = by_label["baseline [7]"].mean_shuttles
    full = by_label["full (this work)"].mean_shuttles
    # The full configuration beats the baseline on average...
    assert full < baseline
    # ...and the future-ops direction policy is the dominant heuristic.
    future_only = by_label["+future-ops"].mean_shuttles
    assert future_only < baseline


def test_topology_sweep(machine, results_dir):
    """Extension: the same comparison on ring and grid interconnects."""
    from repro.arch.presets import grid_machine, linear_machine, ring_machine
    from repro.bench.qft import qft_circuit
    from repro.bench.random_circuits import random_circuit
    from repro.eval.harness import compare
    from repro.eval.report import render_table

    circuits = [
        qft_circuit(),
        random_circuit(64, 1000, seed=17),
    ]
    rows = []
    for machine_variant in (
        linear_machine(6),
        ring_machine(6),
        grid_machine(2, 3),
    ):
        for circuit in circuits:
            comparison = compare(circuit, machine_variant, simulate=False)
            rows.append(
                [
                    machine_variant.topology.name,
                    circuit.name,
                    comparison.baseline.num_shuttles,
                    comparison.optimized.num_shuttles,
                    f"{comparison.shuttle_reduction_percent:.1f}%",
                ]
            )
    text = "Topology sweep (extension)\n" + render_table(
        ["topology", "circuit", "[7]", "this work", "reduction"], rows
    )
    write_result(results_dir, "topology_sweep.txt", text)
    assert len(rows) == 6
