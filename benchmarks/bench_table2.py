"""Table II regeneration: reduction in the number of shuttles.

Run with ``pytest benchmarks/bench_table2.py --benchmark-only``.  The
timed quantity is the optimized compiler on each NISQ benchmark; the
assertions check the paper's claims (fewer shuttles on every circuit);
the rendered table lands in ``benchmarks/_results/table2.txt``.
"""

import pytest

from conftest import write_result


@pytest.mark.parametrize(
    "name",
    ["Supremacy", "QAOA", "SquareRoot", "QFT", "QuadraticForm"],
)
def test_table2_nisq_row(benchmark, machine, nisq_circuits, name):
    """Compile one NISQ benchmark with this work's compiler (timed) and
    check the shuttle reduction against the baseline."""
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping

    circuit = nisq_circuits[name]
    chains = greedy_initial_mapping(circuit, machine)
    baseline = QCCDCompiler(machine, CompilerConfig.baseline()).compile(
        circuit, initial_chains=chains
    )

    compiler = QCCDCompiler(machine, CompilerConfig.optimized())
    result = benchmark.pedantic(
        lambda: compiler.compile(circuit, initial_chains=chains),
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["baseline_shuttles"] = baseline.num_shuttles
    benchmark.extra_info["optimized_shuttles"] = result.num_shuttles
    # The paper's stability claim: strictly fewer shuttles per circuit.
    assert result.num_shuttles < baseline.num_shuttles


def test_table2_full_table(benchmark, suite_comparisons, results_dir):
    """Render the complete Table II (NISQ + random ensemble)."""
    from repro.eval.table2 import (
        overall_reduction,
        render_table2,
        wins_everywhere,
    )

    text = benchmark.pedantic(
        lambda: render_table2(suite_comparisons), rounds=1, iterations=1
    )
    text += (
        f"\n\naverage reduction: {overall_reduction(suite_comparisons):.1f}%"
        f"\nfewer shuttles on every circuit: "
        f"{wins_everywhere(suite_comparisons)}"
    )
    write_result(results_dir, "table2.txt", text)
    assert wins_everywhere(suite_comparisons)
    assert overall_reduction(suite_comparisons) > 5.0
