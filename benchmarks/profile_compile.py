"""Profile one compile (or the whole suite) and print the hot spots.

Performance PRs should start from data, not intuition: this script runs
the compiler under :mod:`cProfile` and prints the top-N functions by
cumulative time, so "which layer is the bottleneck now?" is one command
away.  It is how the future-gate-index PR found that 92% of compile
wall time was the per-decision pending-tail rescans — and how the next
perf PR should find its target::

    python benchmarks/profile_compile.py                 # full reduced suite
    python benchmarks/profile_compile.py --circuit QFT   # one benchmark
    python benchmarks/profile_compile.py --top 40 --sort tottime
    python benchmarks/profile_compile.py --baseline      # [7]'s config
    python benchmarks/profile_compile.py --no-index      # reference scan path
    python benchmarks/profile_compile.py --phase simulate  # profile one phase
    python benchmarks/profile_compile.py --phase verify --no-vector
    python benchmarks/profile_compile.py --json profile.json

``--phase`` selects which pipeline stage runs under the profiler
(``compile`` is the default; ``optimize``/``simulate``/``verify`` run
the earlier stages unprofiled to build their input), and
``--no-vector`` pins the scalar replay loop so the vectorized kernel's
win — and any future erosion of it — is directly inspectable.

With ``repro`` installed (``pip install -e .``) no ``PYTHONPATH`` is
needed; an uninstalled source checkout falls back to ``../src``
relative to this file.  ``--json`` writes the top-N rows (by the
chosen sort key) as machine-readable records for trend tracking.

Circuit names match the paper suite (``Supremacy``, ``QAOA``,
``SquareRoot``, ``QFT``, ``QuadraticForm``, ``Random-<n>q-<i>``);
``--machine`` accepts ``l6`` (default), ``linear:<traps>``,
``ring:<traps>`` or ``grid:<rows>x<cols>``.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys

try:  # prefer the installed package; dev checkouts fall back to ../src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment-dependent
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "src")
    )


def build_machine(spec: str):
    from repro.arch.presets import (
        grid_machine,
        l6_machine,
        linear_machine,
        ring_machine,
    )

    if spec == "l6":
        return l6_machine()
    kind, _, arg = spec.partition(":")
    if kind == "linear":
        return linear_machine(int(arg))
    if kind == "ring":
        return ring_machine(int(arg))
    if kind == "grid":
        rows, _, cols = arg.partition("x")
        return grid_machine(int(rows), int(cols))
    raise SystemExit(f"unknown machine spec {spec!r}")


def top_entries(
    stats: pstats.Stats, sort: str, top: int
) -> list[dict]:
    """The top-N profile rows as JSON-able records.

    ``stats.stats`` maps ``(file, line, func)`` to
    ``(primitive_calls, calls, tottime, cumtime, callers)``; rows are
    ranked by the same key the text report would sort on.
    """
    key = {"cumulative": 3, "tottime": 2, "ncalls": 1}[sort]
    rows = sorted(
        stats.stats.items(),
        key=lambda item: item[1][key],
        reverse=True,
    )
    return [
        {
            "function": func,
            "file": filename,
            "line": line,
            "ncalls": calls,
            "primitive_calls": primitive,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        }
        for (filename, line, func), (
            primitive,
            calls,
            tottime,
            cumtime,
            _callers,
        ) in rows[:top]
    ]


def main() -> None:
    parser = argparse.ArgumentParser(
        description="cProfile the QCCD compiler's hot path"
    )
    parser.add_argument(
        "--circuit",
        default=None,
        help="paper-suite circuit name (default: every reduced-suite circuit)",
    )
    parser.add_argument("--machine", default="l6", help="l6 | linear:N | ring:N | grid:RxC")
    parser.add_argument("--top", type=int, default=25, help="rows to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="compiles per circuit"
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="profile the [7] baseline config instead of this work's",
    )
    parser.add_argument(
        "--no-index",
        action="store_true",
        help="profile the reference tail-scanning path (use_future_index=False)",
    )
    parser.add_argument(
        "--phase",
        default="compile",
        choices=["compile", "optimize", "simulate", "verify"],
        help="pipeline stage to run under the profiler (earlier stages "
        "run unprofiled to build its input)",
    )
    parser.add_argument(
        "--no-vector",
        action="store_true",
        help="replay through the scalar loop (use_vector_kernel=False) "
        "in the simulate/optimize/verify phases",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the top-N rows as JSON (use '-' for stdout)",
    )
    args = parser.parse_args()

    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping

    machine = build_machine(args.machine)
    circuits = paper_suite(full=False)
    if args.circuit is not None:
        circuits = [c for c in circuits if c.name == args.circuit]
        if not circuits:
            names = ", ".join(c.name for c in paper_suite(full=False))
            raise SystemExit(
                f"unknown circuit {args.circuit!r}; choose from: {names}"
            )
    config = (
        CompilerConfig.baseline() if args.baseline else CompilerConfig.optimized()
    )
    compiler = QCCDCompiler(
        machine, config, use_future_index=not args.no_index
    )
    jobs = [
        (circuit, greedy_initial_mapping(circuit, machine))
        for circuit in circuits
    ]
    use_vector = not args.no_vector

    profile = cProfile.Profile()
    if args.phase == "compile":
        profile.enable()
        for circuit, chains in jobs:
            for _ in range(args.repeat):
                compiler.compile(circuit, initial_chains=chains)
        profile.disable()
    else:
        # Build the profiled phase's input unprofiled.
        from repro.passes.manager import PassManager
        from repro.passes.verify import verify_schedule
        from repro.sim.simulator import Simulator

        compiled = [
            (compiler.compile(circuit, initial_chains=chains), chains)
            for circuit, chains in jobs
        ]
        if args.phase == "optimize":
            manager = PassManager(use_vector_kernel=use_vector)
            profile.enable()
            for result, _chains in compiled:
                for _ in range(args.repeat):
                    manager.run(
                        result.schedule, machine, result.initial_chains
                    )
            profile.disable()
        else:
            optimized = [
                (
                    PassManager()
                    .run(result.schedule, machine, result.initial_chains)
                    .schedule,
                    result.initial_chains,
                )
                for result, _chains in compiled
            ]
            if args.phase == "simulate":
                simulator = Simulator(machine, use_vector_kernel=use_vector)
                profile.enable()
                for schedule, chains in optimized:
                    for _ in range(args.repeat):
                        simulator.run(schedule, chains)
                profile.disable()
            else:  # verify
                profile.enable()
                for schedule, chains in optimized:
                    for _ in range(args.repeat):
                        verify_schedule(
                            machine,
                            schedule,
                            chains,
                            use_vector_kernel=use_vector,
                        )
                profile.disable()

    label = ", ".join(c.name for c in circuits[:5])
    if len(circuits) > 5:
        label += f", ... ({len(circuits)} circuits)"
    stats = pstats.Stats(profile)
    if args.json is not None:
        document = {
            "config": config.name,
            "machine": machine.name,
            "phase": args.phase,
            "use_vector_kernel": use_vector,
            "circuits": [c.name for c in circuits],
            "repeat": args.repeat,
            "sort": args.sort,
            "entries": top_entries(stats, args.sort, args.top),
        }
        if args.json == "-":
            json.dump(document, sys.stdout, indent=2)
            sys.stdout.write("\n")
            return
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.json}")
    kernel = "" if use_vector else ", scalar replay"
    print(
        f"# {config.name} on {machine.name} — {args.phase} phase{kernel} — "
        f"{label} — top {args.top} by {args.sort}\n"
    )
    stats.sort_stats(args.sort).print_stats(args.top)


if __name__ == "__main__":
    main()
