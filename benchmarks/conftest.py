"""Shared fixtures for the regeneration benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.
Results are written to ``benchmarks/_results/`` so the artefacts survive
the run; set ``REPRO_FULL=1`` to use the complete 120-circuit random
ensemble (the default uses 3 circuits per size to stay fast).
"""

import os
import sys

import pytest

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def machine():
    from repro.arch.presets import l6_machine

    return l6_machine()


@pytest.fixture(scope="session")
def nisq_circuits():
    from repro.bench.suite import nisq_suite

    return {circuit.name: circuit for circuit in nisq_suite()}


@pytest.fixture(scope="session")
def suite_comparisons(machine):
    """One shared compile+simulate pass over the whole suite.

    Dispatches through the batch engine: set ``REPRO_JOBS=N`` to
    parallelize and ``REPRO_CACHE_DIR=path`` to replay cached results
    across benchmark sessions.
    """
    from repro.eval.harness import run_suite

    return run_suite(
        machine=machine,
        simulate=True,
        full=None,
        n_jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache=os.environ.get("REPRO_CACHE_DIR") or None,
    )


def write_result(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
