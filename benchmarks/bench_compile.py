"""Compile/optimize/simulate wall-time benchmark vs the seed baseline.

Times the three phases of the full pipeline on the paper suite
(reduced random ensemble, L6 machine) and compares against the
pre-kernel recording in ``benchmarks/baselines/BENCH_compile_baseline.json``
(captured by ``record_compile_baseline.py`` immediately before the
``repro.core`` refactor landed).  Writes
``benchmarks/_results/BENCH_compile.json`` with per-circuit times and
per-phase speedup factors.

Hard guarantees asserted here (the refactor's acceptance bar):

* total compile -> optimize -> simulate wall time is no worse than the
  recorded baseline (modest slack absorbs scheduler noise),
* the replay-heavy optimize phase — the pass manager's verify-and-revert
  loop, now on the kernel's shared-replay fast path — is strictly
  faster than its baseline.

Run with ``pytest benchmarks/bench_compile.py``.
"""

import json
import os
import time

from conftest import write_result

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "BENCH_compile_baseline.json",
)

#: Repetitions per phase; the minimum is compared (least-noise statistic,
#: matching how the baseline was recorded).
REPEATS = 3

#: Multiplicative slack on the "no worse" assertions: wall-clock
#: comparisons against a recording from another process run need head
#: room for CPU scheduling noise.
NO_WORSE_SLACK = 1.25


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_compile_pipeline_speed_vs_baseline(results_dir, machine):
    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping
    from repro.passes.manager import PassManager
    from repro.sim.simulator import Simulator

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    compiler = QCCDCompiler(machine, CompilerConfig.optimized())
    simulator = Simulator(machine)
    rows = []

    for circuit in paper_suite(full=False):
        chains = greedy_initial_mapping(circuit, machine)

        compile_s = min(
            _timed(lambda: compiler.compile(circuit, initial_chains=chains))
            for _ in range(REPEATS)
        )
        result = compiler.compile(circuit, initial_chains=chains)

        optimize_s = min(
            _timed(
                lambda: PassManager().run(
                    result.schedule, machine, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )
        optimization = PassManager().run(
            result.schedule, machine, result.initial_chains
        )

        simulate_s = min(
            _timed(
                lambda: simulator.run(
                    optimization.schedule, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )

        rows.append(
            {
                "circuit": circuit.name,
                "num_ops": len(result.schedule),
                "compile_seconds": round(compile_s, 4),
                "optimize_seconds": round(optimize_s, 4),
                "simulate_seconds": round(simulate_s, 4),
            }
        )

    totals = {
        phase: round(sum(r[f"{phase}_seconds"] for r in rows), 4)
        for phase in ("compile", "optimize", "simulate")
    }
    base_totals = {
        phase: baseline[f"total_{phase}_seconds"]
        for phase in ("compile", "optimize", "simulate")
    }
    speedups = {
        phase: round(base_totals[phase] / totals[phase], 3)
        for phase in ("compile", "optimize", "simulate")
        if totals[phase]
    }
    total = sum(totals.values())
    base_total = sum(base_totals.values())

    summary = {
        "machine": machine.name,
        "repeats": REPEATS,
        "totals_seconds": totals,
        "baseline_totals_seconds": base_totals,
        "total_seconds": round(total, 4),
        "baseline_total_seconds": round(base_total, 4),
        "kernel_speedup": speedups,
        "total_speedup": round(base_total / total, 3) if total else None,
        "results": rows,
    }
    write_result(
        results_dir, "BENCH_compile.json", json.dumps(summary, indent=2)
    )

    # Acceptance: the kernel refactor must not slow the pipeline down,
    # and the replay-heavy optimize phase must be strictly faster.
    assert total <= base_total * NO_WORSE_SLACK, (
        f"pipeline regressed: {total:.2f}s vs baseline {base_total:.2f}s"
    )
    assert totals["optimize"] <= base_totals["optimize"] * NO_WORSE_SLACK, (
        f"optimize phase regressed: {totals['optimize']:.2f}s vs "
        f"baseline {base_totals['optimize']:.2f}s"
    )
    # The baseline is an absolute wall-clock recording from another
    # machine, so the strict "optimize got faster" claim is only
    # meaningful on a host at least as fast as the recording one —
    # which the total-time comparison establishes.  (Slower hosts still
    # get the slack-bounded regression gates above; re-baseline with
    # record_compile_baseline.py to re-enable the strict check.)
    if total <= base_total:
        assert totals["optimize"] < base_totals["optimize"], (
            f"optimize phase not faster: {totals['optimize']:.2f}s vs "
            f"baseline {base_totals['optimize']:.2f}s"
        )
