"""Compile/optimize/simulate/verify wall-time benchmark vs the baseline.

Times the four phases of the full pipeline on the paper suite
(reduced random ensemble, L6 machine) and compares against the
committed recording in ``benchmarks/baselines/BENCH_compile_baseline.json``
(captured by ``record_compile_baseline.py``).  Writes
``benchmarks/_results/BENCH_compile.json`` with per-circuit times,
per-phase speedups vs the baseline, and — when the baseline embeds a
``previous`` recording it superseded — the speedups vs that too (the
future-gate-index engine's compile win is pinned against the
tail-rescanning recording it retired).

Hard guarantees asserted here:

* every compiled schedule's content fingerprint equals the baseline
  recording's — a compile-phase "optimization" that changes what the
  compiler emits fails here even if it is faster,
* neither compile nor optimize regresses more than
  :data:`NO_WORSE_SLACK` vs the baseline (the CI smoke job's >25%
  regression gate; the ~0.1s simulate and verify phases are too
  noise-dominated for per-phase wall-clock gates and are covered by
  the total instead),
* total wall time is no worse than the baseline within the same slack,
* on a host at least as fast as the recording one (established by the
  total-time comparison), the compile phase must hold the
  :data:`MIN_COMPILE_SPEEDUP` × win over the superseded ``previous``
  recording — the indexed-decision speedup cannot silently erode.
  (The incremental-verification optimize win of PR 4 is now pinned by
  the slack gate against the re-recorded optimize total, which was
  measured with that engine on.)
* the vectorized replay kernel holds its :data:`MIN_REPLAY_SPEEDUP` ×
  win over the scalar loop on the replay-dominated phases
  (simulate + verify), measured as an in-process A/B on the same host
  within the same run — no cross-host noise applies — with the final
  chains and the heating/clock observer floats asserted bit-identical
  between the two kernels first.

Run with ``pytest benchmarks/bench_compile.py``.
"""

import json
import os
import time

from conftest import write_result

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "BENCH_compile_baseline.json",
)

#: Repetitions per phase; the minimum is compared (least-noise statistic,
#: matching how the baseline was recorded).
REPEATS = 3

#: Multiplicative slack on the "no worse" assertions: wall-clock
#: comparisons against a recording from another process run need head
#: room for CPU scheduling noise.  The baseline is an absolute
#: recording from one host — on substantially slower hardware (e.g.
#: shared CI runners vs the recording workstation) widen the gate via
#: ``REPRO_BENCH_SLACK`` instead of re-baselining, or re-record with
#: ``record_compile_baseline.py`` on representative hardware.
NO_WORSE_SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.25"))

#: Required compile speedup over the baseline's ``previous`` recording
#: (the pre-index compiler that rescanned the pending tail per decision).
MIN_COMPILE_SPEEDUP = 2.5

#: Multiplicative bound on the observability no-op fast path: compiling
#: with instrumentation present-but-disabled may cost at most this
#: factor over the same suite measured back to back (ISSUE: ≤5%).
#: Widen via ``REPRO_OBS_SLACK`` on noisy shared runners.
OBS_SLACK = float(os.environ.get("REPRO_OBS_SLACK", "1.05"))

#: Required simulate+verify speedup of the vectorized replay kernel
#: over the scalar loop (in-process A/B, same host, same run).
MIN_REPLAY_SPEEDUP = 2.0

PHASES = ("compile", "optimize", "simulate", "verify")


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_compile_pipeline_speed_vs_baseline(results_dir, machine):
    from repro.batch.fingerprint import fingerprint
    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping
    from repro.passes.manager import PassManager
    from repro.passes.verify import verify_schedule
    from repro.sim.simulator import Simulator

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_fingerprints = {
        row["circuit"]: row["schedule_fingerprint"]
        for row in baseline.get("results", ())
        if "schedule_fingerprint" in row
    }

    compiler = QCCDCompiler(machine, CompilerConfig.optimized())
    simulator = Simulator(machine)
    rows = []

    for circuit in paper_suite(full=False):
        chains = greedy_initial_mapping(circuit, machine)

        compile_s = min(
            _timed(lambda: compiler.compile(circuit, initial_chains=chains))
            for _ in range(REPEATS)
        )
        result = compiler.compile(circuit, initial_chains=chains)

        # Output identity: faster must not mean different.  The
        # baseline pins a content hash of every compiled schedule; any
        # drift in the emitted op stream fails before the speed gates.
        expected_fingerprint = baseline_fingerprints.get(circuit.name)
        if expected_fingerprint is not None:
            assert fingerprint(list(result.schedule)) == expected_fingerprint, (
                f"compiled schedule for {circuit.name} differs from the "
                "baseline recording (content fingerprint mismatch): the "
                "compiler's output changed, not just its speed"
            )

        optimize_s = min(
            _timed(
                lambda: PassManager().run(
                    result.schedule, machine, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )
        optimization = PassManager().run(
            result.schedule, machine, result.initial_chains
        )

        simulate_s = min(
            _timed(
                lambda: simulator.run(
                    optimization.schedule, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )

        verify_s = min(
            _timed(
                lambda: verify_schedule(
                    machine, optimization.schedule, result.initial_chains
                )
            )
            for _ in range(REPEATS)
        )

        rows.append(
            {
                "circuit": circuit.name,
                "num_ops": len(result.schedule),
                "compile_seconds": round(compile_s, 4),
                "optimize_seconds": round(optimize_s, 4),
                "simulate_seconds": round(simulate_s, 4),
                "verify_seconds": round(verify_s, 4),
            }
        )

    totals = {
        phase: round(sum(r[f"{phase}_seconds"] for r in rows), 4)
        for phase in PHASES
    }
    base_totals = {
        phase: baseline[f"total_{phase}_seconds"] for phase in PHASES
    }
    speedups = {
        phase: round(base_totals[phase] / totals[phase], 3)
        for phase in PHASES
        if totals[phase]
    }
    total = sum(totals.values())
    base_total = sum(base_totals.values())

    previous = baseline.get("previous")
    previous_speedups = None
    if previous:
        # Older recordings may predate the verify phase split.
        previous_speedups = {
            phase: round(
                previous[f"total_{phase}_seconds"] / totals[phase], 3
            )
            for phase in PHASES
            if totals[phase] and f"total_{phase}_seconds" in previous
        }

    summary = {
        "machine": machine.name,
        "repeats": REPEATS,
        "totals_seconds": totals,
        "baseline_totals_seconds": base_totals,
        "baseline_label": baseline.get("label", "baseline"),
        "total_seconds": round(total, 4),
        "baseline_total_seconds": round(base_total, 4),
        "speedup_vs_baseline": speedups,
        "total_speedup": round(base_total / total, 3) if total else None,
        "previous_label": previous.get("label") if previous else None,
        "speedup_vs_previous": previous_speedups,
        "results": rows,
    }
    write_result(
        results_dir, "BENCH_compile.json", json.dumps(summary, indent=2)
    )

    # Acceptance: neither compile nor optimize (nor the pipeline) may
    # regress beyond the slack vs the committed baseline — this is the
    # CI smoke job's >25% regression gate.
    assert total <= base_total * NO_WORSE_SLACK, (
        f"pipeline regressed: {total:.2f}s vs baseline {base_total:.2f}s"
    )
    for phase in ("compile", "optimize"):
        assert totals[phase] <= base_totals[phase] * NO_WORSE_SLACK, (
            f"{phase} phase regressed: {totals[phase]:.2f}s vs "
            f"baseline {base_totals[phase]:.2f}s"
        )
    # The baseline is an absolute wall-clock recording from another
    # process run (possibly another machine), so the strict speedup
    # claim is only meaningful on a host at least as fast as the
    # recording one — which the total-time comparison establishes.
    # (Slower hosts still get the slack-bounded regression gates above;
    # re-baseline with record_compile_baseline.py when migrating
    # hardware.)
    if previous and total <= base_total:
        assert (
            previous_speedups["compile"] >= MIN_COMPILE_SPEEDUP
        ), (
            "compile no longer holds the future-gate-index "
            f"win: {previous_speedups['compile']:.2f}x vs the "
            f"required {MIN_COMPILE_SPEEDUP:.1f}x over "
            f"{previous.get('label', 'the superseded baseline')}"
        )


def test_obs_disabled_overhead_and_enabled_inertness(machine):
    """The telemetry spine must be free when off and inert when on.

    * **Overhead gate** — compiling the suite after an
      ``obs.enable()``/``obs.disable()`` cycle ("traced-off") must cost
      within :data:`OBS_SLACK` of the same suite compiled with
      observability never enabled ("untraced"): disabling must restore
      the exact no-op fast path.  Minima of interleaved A/B repetitions
      are compared so host drift hits both sides equally.
    * **Inertness gate** — with observability (and tracing) *on*, every
      compiled schedule's content fingerprint is bit-identical to the
      obs-off compile, and still matches the committed baseline
      recording where one exists.
    """
    from repro import obs
    from repro.batch.fingerprint import fingerprint
    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_fingerprints = {
        row["circuit"]: row["schedule_fingerprint"]
        for row in baseline.get("results", ())
        if "schedule_fingerprint" in row
    }

    compiler = QCCDCompiler(machine, CompilerConfig.optimized())
    circuits = paper_suite(full=False)
    chains = {
        circuit.name: greedy_initial_mapping(circuit, machine)
        for circuit in circuits
    }

    def compile_suite() -> float:
        start = time.perf_counter()
        for circuit in circuits:
            compiler.compile(circuit, initial_chains=chains[circuit.name])
        return time.perf_counter() - start

    # Reference fingerprints, observability off (also the warm-up).
    off_fingerprints = {}
    for circuit in circuits:
        result = compiler.compile(
            circuit, initial_chains=chains[circuit.name]
        )
        off_fingerprints[circuit.name] = fingerprint(list(result.schedule))

    assert obs.active() is None
    untraced = [compile_suite() for _ in range(REPEATS)]
    obs.enable(trace=True)
    obs.disable()
    traced_off = [compile_suite() for _ in range(REPEATS)]
    # Interleave one more A/B pair to damp one-sided host drift.
    untraced.append(compile_suite())
    obs.enable(trace=True)
    obs.disable()
    traced_off.append(compile_suite())

    untraced_s, traced_off_s = min(untraced), min(traced_off)
    assert traced_off_s <= untraced_s * OBS_SLACK, (
        f"disabled observability is not free: {traced_off_s:.4f}s "
        f"traced-off vs {untraced_s:.4f}s untraced "
        f"(> {(OBS_SLACK - 1) * 100:.0f}% overhead)"
    )

    with obs.observe(trace=True):
        for circuit in circuits:
            result = compiler.compile(
                circuit, initial_chains=chains[circuit.name]
            )
            fp = fingerprint(list(result.schedule))
            assert fp == off_fingerprints[circuit.name], (
                f"observability changed the schedule of {circuit.name}"
            )
            expected = baseline_fingerprints.get(circuit.name)
            if expected is not None:
                assert fp == expected, (
                    f"traced compile of {circuit.name} drifted from "
                    "the committed baseline recording"
                )
    assert obs.active() is None


def test_replay_phase_vector_speedup(results_dir, machine):
    """The vectorized replay kernel's simulate+verify win, in-process.

    Unlike the baseline gates above, this is a same-host, same-run A/B:
    the suite's optimized schedules are replayed through the scalar
    loop and the batched numpy kernel back to back, so host speed
    cancels out and the :data:`MIN_REPLAY_SPEEDUP` bound is meaningful
    anywhere.  Semantics are asserted before speed: both kernels must
    produce identical final chains (verify) and bit-identical fidelity,
    makespan and heating floats (simulate).
    """
    from repro.core.vector import HAVE_NUMPY
    import pytest

    if not HAVE_NUMPY:
        pytest.skip("numpy unavailable: no vector kernel to benchmark")

    from repro.bench.suite import paper_suite
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping
    from repro.passes.manager import PassManager
    from repro.passes.verify import verify_schedule
    from repro.sim.simulator import Simulator

    compiler = QCCDCompiler(machine, CompilerConfig.optimized())
    jobs = []
    for circuit in paper_suite(full=False):
        chains = greedy_initial_mapping(circuit, machine)
        result = compiler.compile(circuit, initial_chains=chains)
        optimization = PassManager().run(
            result.schedule, machine, result.initial_chains
        )
        jobs.append(
            (circuit.name, optimization.schedule, result.initial_chains)
        )

    sim_vector = Simulator(machine, use_vector_kernel=True)
    sim_scalar = Simulator(machine, use_vector_kernel=False)

    # Semantics first: chains and observer-derived floats bit-identical.
    for name, schedule, chains in jobs:
        report_v = sim_vector.run(schedule, chains)
        report_s = sim_scalar.run(schedule, chains)
        for field in (
            "program_log_fidelity",
            "duration",
            "min_gate_fidelity",
            "max_nbar",
            "mean_gate_nbar",
        ):
            assert getattr(report_v, field) == getattr(report_s, field), (
                f"{name}: vector kernel drifted on {field}: "
                f"{getattr(report_v, field)!r} != {getattr(report_s, field)!r}"
            )
        final_v = verify_schedule(
            machine, schedule, chains, use_vector_kernel=True
        )
        final_s = verify_schedule(
            machine, schedule, chains, use_vector_kernel=False
        )
        assert final_v == final_s, (
            f"{name}: vector kernel produced different final chains"
        )

    def replay_suite(simulator, use_vector: bool) -> float:
        start = time.perf_counter()
        for _, schedule, chains in jobs:
            simulator.run(schedule, chains)
            verify_schedule(
                machine, schedule, chains, use_vector_kernel=use_vector
            )
        return time.perf_counter() - start

    # Interleaved repeats; minima cancel one-sided host drift.
    vector_times, scalar_times = [], []
    for _ in range(REPEATS):
        vector_times.append(replay_suite(sim_vector, True))
        scalar_times.append(replay_suite(sim_scalar, False))
    vector_s, scalar_s = min(vector_times), min(scalar_times)
    speedup = scalar_s / vector_s if vector_s else float("inf")

    write_result(
        results_dir,
        "BENCH_replay_kernel.json",
        json.dumps(
            {
                "machine": machine.name,
                "repeats": REPEATS,
                "phases": ["simulate", "verify"],
                "scalar_seconds": round(scalar_s, 4),
                "vector_seconds": round(vector_s, 4),
                "speedup": round(speedup, 3),
                "min_required_speedup": MIN_REPLAY_SPEEDUP,
            },
            indent=2,
        ),
    )

    assert speedup >= MIN_REPLAY_SPEEDUP, (
        f"vector replay kernel win eroded: {speedup:.2f}x over the "
        f"scalar loop on simulate+verify (required "
        f"{MIN_REPLAY_SPEEDUP:.1f}x; scalar {scalar_s:.3f}s, "
        f"vector {vector_s:.3f}s)"
    )
