"""Full QASM workflow: parse -> decompose -> compile -> inspect.

Demonstrates the front end on a hand-written OpenQASM 2.0 program (a
GHZ ladder plus a long-range entangler), lowers it to the trapped-ion
native set, compiles it for the paper's L6 machine, and prints the
shuttle trace and final ion placement.

Run:  python examples/qasm_workflow.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import (
    CompilerConfig,
    Simulator,
    compile_circuit,
    decompose_circuit,
    l6_machine,
    parse_qasm,
)
from repro.viz import render_chains, render_occupancy_bar, shuttle_trace

QASM_SOURCE = """
OPENQASM 2.0;
include "qelib1.inc";

// a 24-qubit GHZ ladder with a long-range phase coupling
qreg q[24];
creg c[24];

gate entangle a, b { h a; cx a, b; }

entangle q[0], q[1];
"""


def main() -> None:
    lines = [QASM_SOURCE]
    for i in range(1, 23):
        lines.append(f"cx q[{i}], q[{i + 1}];")
    # long-range couplings spanning the register
    for i in range(6):
        lines.append(f"cu1(pi/{2 ** (i + 1)}) q[{i}], q[{23 - i}];")
    lines.append("measure q -> c;")
    source = "\n".join(lines)

    circuit = parse_qasm(source, name="ghz-ladder")
    print(
        f"parsed {circuit.name!r}: {circuit.num_qubits} qubits, "
        f"{len(circuit)} gates ({circuit.num_two_qubit_gates} two-qubit)"
    )

    native = decompose_circuit(circuit, keep_one_qubit=False)
    print(
        f"native form: {native.num_two_qubit_gates} MS gates "
        f"(controlled phases lower to 2 MS each)"
    )

    machine = l6_machine()
    result = compile_circuit(native, machine, CompilerConfig.optimized())
    report = Simulator(machine).run(result.schedule, result.initial_chains)

    print(f"\nshuttles: {result.num_shuttles}")
    print(f"program duration: {report.duration * 1e3:.2f} ms")
    print(f"log10 fidelity: {report.log10_fidelity:.3f}")

    print("\nshuttle trace:")
    print(shuttle_trace(result.schedule, limit=12))

    print("\ninitial placement:")
    print(render_chains(machine, result.initial_chains))
    print("\nfinal placement:")
    print(render_occupancy_bar(machine, result.final_chains))


if __name__ == "__main__":
    main()
