"""Compare the two compilers on a paper benchmark of your choice.

Compiles the chosen NISQ benchmark (default: Supremacy-64) with both
the baseline [7] configuration and this work's optimized configuration
on the paper's L6 machine, then simulates both schedules and prints the
Table II / Fig. 8-style summary for that circuit.

Run:  python examples/compare_compilers.py [supremacy|qaoa|squareroot|qft|quadraticform]
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import PassManager, l6_machine
from repro.bench import (
    qaoa_circuit,
    qft_circuit,
    quadratic_form_circuit,
    squareroot_circuit,
    supremacy_circuit,
)
from repro.eval import compare
from repro.viz import gate_trap_histogram, schedule_summary, timeline_diff

FACTORIES = {
    "supremacy": supremacy_circuit,
    "qaoa": qaoa_circuit,
    "squareroot": squareroot_circuit,
    "qft": qft_circuit,
    "quadraticform": quadratic_form_circuit,
}


def main() -> None:
    name = sys.argv[1].lower() if len(sys.argv) > 1 else "supremacy"
    factory = FACTORIES.get(name)
    if factory is None:
        raise SystemExit(f"choose one of {sorted(FACTORIES)}")

    circuit = factory()
    machine = l6_machine()
    print(
        f"{circuit.name}: {circuit.num_qubits} qubits, "
        f"{circuit.num_two_qubit_gates} two-qubit gates, on {machine.name}"
    )

    comparison = compare(circuit, machine, simulate=True)
    for label, result, report in (
        ("baseline [7]", comparison.baseline, comparison.baseline_report),
        ("this work", comparison.optimized, comparison.optimized_report),
    ):
        print(f"\n== {label} ==")
        print(f"  {schedule_summary(result.schedule)}")
        print(f"  re-orders: {result.num_reorders}, "
              f"re-balances: {result.num_rebalances}")
        print(f"  log10 program fidelity: {report.log10_fidelity:.2f}")
        print(f"  compile time: {result.compile_time * 1e3:.1f} ms")
        print(f"  gates per trap: {gate_trap_histogram(result.schedule)}")

    print(
        f"\nshuttle reduction: {comparison.shuttle_reduction_percent:.2f}% "
        f"(paper range: 18.67% .. 51.17%)"
    )
    print(
        f"fidelity improvement: {comparison.fidelity_improvement:.2f}X "
        f"(paper range: 1.25X .. 22.68X)"
    )

    # Post-compilation optimization: run the default pass pipeline on
    # the optimized compiler's output and show what it rewrote.
    optimization = PassManager().run(
        comparison.optimized.schedule,
        machine,
        comparison.optimized.initial_chains,
    )
    print(f"\n== post-compilation passes ==\n  {optimization.summary()}")
    if optimization.total_rewrites:
        print("\nbefore/after timeline (rewritten ops: ~ elided, + added):")
        print(
            timeline_diff(
                optimization.raw_schedule, optimization.schedule, limit=30
            )
        )


if __name__ == "__main__":
    main()
