"""Noise-model sensitivity study (Fig. 8 robustness).

Sweeps the merge-heating constant — the dominant shuttle cost in the
calibrated model — and shows how the fidelity-improvement factor of the
optimized compiler responds, for a shuttle-heavy and a shuttle-light
benchmark.  The paper's Section IV-C observation ("applications with
high shuttle-to-gate ratio experience more improvement") should hold at
every noise level.

Run:  python examples/fidelity_study.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import MachineParams, l6_machine
from repro.bench import qft_circuit, supremacy_circuit
from repro.eval import compare, render_table


def main() -> None:
    machine = l6_machine()
    heavy = supremacy_circuit()  # ~0.9 shuttles per 2q gate
    light = qft_circuit()  # ~0.06 shuttles per 2q gate

    rows = []
    for merge_heating in (1.0, 3.0, 6.0, 12.0):
        params = MachineParams().with_noise(merge_heating=merge_heating)
        heavy_cmp = compare(heavy, machine, params=params, simulate=True)
        light_cmp = compare(light, machine, params=params, simulate=True)
        rows.append(
            [
                f"{merge_heating:.1f}",
                f"{heavy_cmp.fidelity_improvement:.2f}X",
                f"{light_cmp.fidelity_improvement:.2f}X",
            ]
        )
        assert (
            heavy_cmp.fidelity_improvement
            >= light_cmp.fidelity_improvement
        ), "shuttle-heavy benchmark should benefit at least as much"

    print(
        render_table(
            [
                "merge heating (quanta)",
                "Supremacy improvement",
                "QFT improvement",
            ],
            rows,
        )
    )
    print(
        "\nThe improvement of the shuttle-heavy benchmark grows with the "
        "shuttle cost;\nthe shuttle-light benchmark stays near 1X — the "
        "paper's Section IV-C narrative."
    )


if __name__ == "__main__":
    main()
