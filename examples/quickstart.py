"""Quickstart: compile a small program for a 2-trap machine.

Reproduces the paper's Fig. 4 motivating example: the excess-capacity
baseline shuttles ion 2 back and forth four times, while the future-ops
policy moves ion 1 once.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import Circuit, CompilerConfig, Simulator, compile_circuit
from repro.arch import linear_topology, uniform_machine
from repro.viz import render_chains, shuttle_trace


def main() -> None:
    # A 2-trap machine, total capacity 4 per trap (Fig. 4's setup).
    machine = uniform_machine(
        linear_topology(2), capacity=4, comm_capacity=1
    )

    # The 4-gate program of Fig. 4.
    circuit = Circuit(5, name="fig4")
    for a, b in [(1, 2), (2, 3), (1, 2), (2, 4)]:
        circuit.add("ms", a, b)

    # Ion placement: ions 0,1 in trap 0; ions 2,3,4 in trap 1.
    chains = {0: [0, 1], 1: [2, 3, 4]}
    print(render_chains(machine, chains, label="initial trap state:"))
    print()

    configs = {
        "baseline [7] (excess capacity)": CompilerConfig.baseline(),
        "this work (future ops)": CompilerConfig.optimized().variant(
            capacity_guard=0, proximity_metric="gates"
        ),
    }
    for label, config in configs.items():
        result = compile_circuit(
            circuit, machine, config, initial_chains=chains
        )
        report = Simulator(machine).run(result.schedule, result.initial_chains)
        print(f"== {label} ==")
        print(f"  shuttles: {result.num_shuttles}")
        print(f"  program fidelity: {report.program_fidelity:.4f}")
        print(shuttle_trace(result.schedule))
        print()


if __name__ == "__main__":
    main()
