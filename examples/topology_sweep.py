"""Extension study: how the trap interconnect shapes shuttle counts.

The paper evaluates the L6 line; QCCDSim also models rings and grids.
This example compiles the same workloads onto L6, a 6-ring, and a 2x3
grid and tabulates baseline-vs-optimized shuttle counts per topology.

Run:  python examples/topology_sweep.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.arch import grid_machine, linear_machine, ring_machine
from repro.bench import qft_circuit, random_circuit, supremacy_circuit
from repro.eval import compare, render_table


def main() -> None:
    machines = [linear_machine(6), ring_machine(6), grid_machine(2, 3)]
    circuits = [
        supremacy_circuit(),
        qft_circuit(),
        random_circuit(64, 1200, seed=23),
    ]

    rows = []
    for machine in machines:
        for circuit in circuits:
            comparison = compare(circuit, machine, simulate=False)
            rows.append(
                [
                    machine.topology.name,
                    circuit.name,
                    comparison.baseline.num_shuttles,
                    comparison.optimized.num_shuttles,
                    f"{comparison.shuttle_reduction_percent:.1f}%",
                ]
            )

    print(
        render_table(
            ["topology", "circuit", "[7] shuttles", "this work", "reduction"],
            rows,
        )
    )
    print(
        "\nRings/grids shorten worst-case trap distances, so absolute "
        "shuttle counts drop;\nthe optimizations keep their edge on every "
        "interconnect."
    )


if __name__ == "__main__":
    main()
