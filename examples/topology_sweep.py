"""Extension study: how the trap interconnect shapes shuttle counts.

The paper evaluates the L6 line; QCCDSim also models rings and grids.
This example is a thin declaration over the batch engine
(:mod:`repro.batch`): the circuits x machines x configs grid is
expanded by ``sweep()`` and executed by a ``BatchRunner`` — add
``n_jobs=4`` or ``cache=ResultCache(...)`` to parallelize or replay.

Run:  python examples/topology_sweep.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.arch import grid_machine, linear_machine, ring_machine
from repro.batch import BatchRunner, sweep
from repro.bench import qft_circuit, random_circuit, supremacy_circuit
from repro.compiler.config import CompilerConfig
from repro.eval import reduction_percent, render_table


def main() -> None:
    machines = [linear_machine(6), ring_machine(6), grid_machine(2, 3)]
    circuits = [
        supremacy_circuit(),
        qft_circuit(),
        random_circuit(64, 1200, seed=23),
    ]
    configs = [CompilerConfig.baseline(), CompilerConfig.optimized()]

    jobs = sweep(circuits, machines, configs)
    results = BatchRunner(n_jobs=1).run_or_raise(jobs)

    # sweep() nests circuit > machine > config, so each consecutive
    # result pair is (baseline, optimized) for one circuit/machine cell;
    # the paper's tables group by machine first, hence the sort.
    cells = sorted(
        zip(jobs[::2], results[::2], results[1::2]),
        key=lambda item: machines.index(item[0].machine),
    )
    rows = []
    for job, baseline, optimized in cells:
        assert baseline.result is not None and optimized.result is not None
        reduction = reduction_percent(
            baseline.result.num_shuttles, optimized.result.num_shuttles
        )
        rows.append(
            [
                job.machine.topology.name,
                job.circuit.name,
                baseline.result.num_shuttles,
                optimized.result.num_shuttles,
                f"{reduction:.1f}%",
            ]
        )

    print(
        render_table(
            ["topology", "circuit", "[7] shuttles", "this work", "reduction"],
            rows,
        )
    )
    print(
        "\nRings/grids shorten worst-case trap distances, so absolute "
        "shuttle counts drop;\nthe optimizations keep their edge on every "
        "interconnect."
    )


if __name__ == "__main__":
    main()
