"""The HTTP skin over :class:`CompileService` — stdlib only.

A :class:`~http.server.ThreadingHTTPServer` whose handler threads call
into the service's tiny locked critical sections; all heavy work
happens in the supervised worker processes.  Routes:

========  ==========================  ===================================
method    path                        meaning
========  ==========================  ===================================
POST      ``/v1/jobs``                submit a JobSpec body → 202 + id
GET       ``/v1/jobs/<id>``           job status document
GET       ``/v1/jobs/<id>/result``    artifacts (ok jobs only)
GET       ``/v1/config``              the live ServeConfig document
GET       ``/healthz``                liveness (green under overload)
GET       ``/readyz``                 readiness (503 when not admitting)
========  ==========================  ===================================

Every error is the frozen envelope from :mod:`repro.serve.errors`;
429/503 responses carry a ``Retry-After`` header.  Submissions are
identified by the ``X-Repro-Identity`` header when present, else the
client address — that key feeds the per-identity rate limiter.

:func:`run_server` is the CLI entry point: it blocks the main thread,
and SIGTERM/SIGINT flip the service into drain mode — stop admitting
(503 ``draining``), keep serving polls so clients can collect their
in-flight jobs, finish work, then stop; past ``drain_deadline`` the
remaining jobs are marked aborted and the exit code is non-zero.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic

from ..batch.cache import NullCache, ResultCache
from ..obs import active as _obs_active
from .config import ServeConfig
from .errors import ServeError
from .service import CompileService

#: Request bodies beyond this are refused unread (validation, not OOM).
MAX_BODY_BYTES = 64 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request; dispatch, envelope errors, always Content-Length."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""

    @property
    def service(self) -> CompileService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        """Quiet by default: per-request logging is the metrics' job."""

    def _send_json(
        self, status: int, document: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(document).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{max(retry_after, 0.0):.3f}")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up; nothing to salvage

    def _identity(self) -> str:
        header = self.headers.get("X-Repro-Identity")
        return header.strip() if header else self.client_address[0]

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServeError(
                "validation",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                "validation", f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ServeError(
                "validation",
                f"request body must be a JSON object, got "
                f"{type(document).__name__}",
            )
        return document

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def _route(self, method: str) -> None:
        started = monotonic()
        try:
            status, document, retry_after = self._dispatch(method)
        except ServeError as err:
            status, document, retry_after = (
                err.http_status,
                err.envelope(),
                err.retry_after,
            )
        except Exception as exc:  # noqa: BLE001 - the handler must answer
            err = ServeError("internal", f"{type(exc).__name__}: {exc}")
            status, document, retry_after = (
                err.http_status,
                err.envelope(),
                None,
            )
        self._send_json(status, document, retry_after)
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc("serve.http.requests")
            obs.metrics.inc(f"serve.http.status.{status}")
            obs.metrics.observe(
                "serve.http.seconds", monotonic() - started
            )

    def _dispatch(self, method: str) -> tuple[int, dict, float | None]:
        path = self.path.rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            health = self.service.health()
            return (200 if health["ok"] else 500), health, None
        if method == "GET" and path == "/readyz":
            readiness = self.service.readiness()
            return (200 if readiness["ready"] else 503), readiness, None
        if method == "GET" and path == "/v1/config":
            return 200, self.service.config.to_dict(), None
        if method == "POST" and path == "/v1/jobs":
            record = self.service.submit(self._read_body(), self._identity())
            return 202, record.status_dict(), None
        if method == "GET" and path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/result"):
                return 200, self.service.artifacts(tail[: -len("/result")]), None
            if "/" not in tail:
                return 200, self.service.status(tail), None
        raise ServeError("not_found", f"no route for {method} {self.path}")


class ServerHandle:
    """A running server: the service plus its HTTP front end.

    Construct, :meth:`start`, talk to :attr:`url`; :meth:`drain` for a
    graceful stop (returns clean/dirty), :meth:`close` for teardown.
    Context manager for tests.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ResultCache | NullCache | None = None,
    ) -> None:
        self.service = CompileService(config, cache)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.service = self.service  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._drained: bool | None = None

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ServerHandle":
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def drain(self, deadline: float | None = None) -> bool:
        """Graceful stop: drain the service *while still serving HTTP*
        (clients poll their in-flight jobs), then stop the listener.
        Returns ``True`` when nothing was aborted.  Idempotent."""
        if self._drained is None:
            self._drained = self.service.drain(deadline)
            self.httpd.shutdown()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self.httpd.server_close()
        return self._drained

    def close(self) -> None:
        self.drain()
        self.service.close()

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_server(
    config: ServeConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    cache: ResultCache | NullCache | None = None,
    stream=None,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain.  Returns the process
    exit code: 0 on a clean drain, 1 when jobs had to be aborted.

    Must run on the main thread (it installs signal handlers).  Prints
    one ``listening`` line (machine-greppable — the CI smoke job and
    subprocess tests wait for it) and one drain-summary line.
    """
    stream = stream if stream is not None else sys.stderr
    handle = ServerHandle(config, host, port, cache).start()
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        print(
            f"repro serve: listening on {handle.url} "
            f"({handle.service.config.describe()})",
            file=stream,
            flush=True,
        )
        stop.wait()
        print(
            "repro serve: signal received, draining "
            f"(deadline {handle.service.config.drain_deadline:g}s)",
            file=stream,
            flush=True,
        )
        started = monotonic()
        clean = handle.drain()
        elapsed = monotonic() - started
        if clean:
            print(
                f"repro serve: drained clean in {elapsed:.2f}s",
                file=stream,
                flush=True,
            )
        else:
            print(
                f"repro serve: hard-stopped after {elapsed:.2f}s "
                "with jobs still in flight (aborted)",
                file=stream,
                flush=True,
            )
        handle.close()
        return 0 if clean else 1
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
