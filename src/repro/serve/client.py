"""ServeClient: a minimal urllib client for the serve API.

Used by ``repro load --target`` (live-mode load generation) and the
test suite.  Design choices mirror the robustness story on the server
side:

* HTTP-level refusals (4xx/5xx) are **data, not exceptions** — a shed
  or rate-limited response is a normal outcome a load generator must
  count, so every call returns a :class:`ServeResponse` with the
  status and the parsed body (the frozen error envelope on failures).
* Only *transport* failures — connection refused, socket timeouts,
  unreachable host — raise :class:`ServeUnavailable`; those mean the
  experiment is invalid, not that the server degraded.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from time import monotonic, sleep


class ServeUnavailable(Exception):
    """The server could not be reached at the transport level."""


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange: status plus parsed JSON body."""

    status: int
    body: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def error_code(self) -> str | None:
        """The envelope code on failures (``None`` on success)."""
        error = self.body.get("error") if isinstance(self.body, dict) else None
        return error.get("code") if isinstance(error, dict) else None

    @property
    def retry_after(self) -> float | None:
        """The envelope's ``retry_after`` hint, if any."""
        error = self.body.get("error") if isinstance(self.body, dict) else None
        return error.get("retry_after") if isinstance(error, dict) else None


class ServeClient:
    """Talk to one serve endpoint.

    ``identity`` becomes the ``X-Repro-Identity`` header (the server's
    rate-limit key); ``timeout`` is the per-request socket budget.
    """

    def __init__(
        self,
        base_url: str,
        identity: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.identity = identity
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, document: dict | None = None
    ) -> ServeResponse:
        headers = {"Content-Type": "application/json"}
        if self.identity:
            headers["X-Repro-Identity"] = self.identity
        data = (
            json.dumps(document).encode("utf-8")
            if document is not None
            else None
        )
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return ServeResponse(resp.status, _parse(resp.read()))
        except urllib.error.HTTPError as err:
            # 4xx/5xx with a body: the server answered — that is data.
            return ServeResponse(err.code, _parse(err.read()))
        except (urllib.error.URLError, OSError) as exc:
            raise ServeUnavailable(
                f"{method} {self.base_url}{path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def submit(self, spec: dict) -> ServeResponse:
        """POST one JobSpec document; 202 + status body on admission,
        the error envelope (429/503/400) on refusal."""
        return self.request("POST", "/v1/jobs", spec)

    def status(self, job_id: str) -> ServeResponse:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def artifacts(self, job_id: str) -> ServeResponse:
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def health(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def readiness(self) -> ServeResponse:
        return self.request("GET", "/readyz")

    def server_config(self) -> ServeResponse:
        return self.request("GET", "/v1/config")

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> ServeResponse:
        """Poll status until the job is ``done`` (or ``timeout``
        seconds pass — then the last status response is returned)."""
        deadline = monotonic() + timeout
        while True:
            response = self.status(job_id)
            body = response.body
            if not response.ok or body.get("state") == "done":
                return response
            if monotonic() >= deadline:
                return response
            sleep(poll_interval)

    def wait_until_up(self, timeout: float = 15.0) -> bool:
        """Poll ``/healthz`` until the server answers (subprocess
        startup); ``True`` once reachable within ``timeout``."""
        deadline = monotonic() + timeout
        while monotonic() < deadline:
            try:
                if self.health().ok:
                    return True
            except ServeUnavailable:
                sleep(0.05)
        return False


def _parse(raw: bytes) -> dict:
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {"raw": raw.decode("utf-8", "replace")}
    return document if isinstance(document, dict) else {"value": document}
