"""The frozen error envelope: stable codes for every failure class.

Every error the service emits — over HTTP or embedded in a failed
job's status — is one JSON envelope::

    {"error": {"code": "<stable code>", "message": "<human text>",
               "retry_after": <seconds|null>, "detail": {...}|null}}

The code set and its HTTP status mapping (:data:`ERROR_STATUS`) are
**frozen**: clients may dispatch on ``code`` and the table only ever
grows.  ``message`` is for humans and carries no contract;
machine-relevant context goes in ``detail``.

Codes by failure class:

======================  ======  ==========================================
code                    status  meaning
======================  ======  ==========================================
``validation``          400     malformed/out-of-bounds job spec or body
``not_found``           404     unknown (or expired) job id / route
``not_ready``           409     artifacts requested before completion
``rate_limited``        429     identity exceeded its sliding window
``shed``                429     admission queue full — load shed
``draining``            503     server in drain mode, not admitting
``timeout``             504     job exceeded its deadline (both guards)
``quarantined``         500     job poisoned (repeated worker deaths)
``crashed``             500     worker died holding the job
``internal``            500     any other failure
======================  ======  ==========================================

429 responses carry ``retry_after`` (also the HTTP ``Retry-After``
header): for ``rate_limited`` it is exact window math (when the oldest
in-window arrival expires), for ``shed`` it is an estimate from
observed service times (queue depth / workers x mean service seconds).
"""

from __future__ import annotations

#: Frozen code -> HTTP status table (see module docstring).
ERROR_STATUS: dict[str, int] = {
    "validation": 400,
    "not_found": 404,
    "not_ready": 409,
    "rate_limited": 429,
    "shed": 429,
    "draining": 503,
    "timeout": 504,
    "quarantined": 500,
    "crashed": 500,
    "internal": 500,
}

#: Terminal :attr:`JobResult.outcome` -> envelope code (``ok`` has no
#: error; ``interrupted`` only arises client-side under SIGINT).
_OUTCOME_CODES = {
    "failed": "internal",
    "timeout": "timeout",
    "crashed": "crashed",
    "poisoned": "quarantined",
}


def outcome_to_code(outcome: str) -> str:
    """The envelope code for a failed job's terminal outcome."""
    return _OUTCOME_CODES.get(outcome, "internal")


def error_envelope(
    code: str,
    message: str,
    retry_after: float | None = None,
    detail: dict | None = None,
) -> dict:
    """The frozen envelope document for one error."""
    if code not in ERROR_STATUS:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "error": {
            "code": code,
            "message": message,
            "retry_after": retry_after,
            "detail": detail,
        }
    }


class ServeError(Exception):
    """One service failure, carrying its envelope.

    The HTTP layer turns any raised ``ServeError`` into the mapped
    status plus the envelope body (and a ``Retry-After`` header when
    ``retry_after`` is set); the service layer raises them from
    admission, lookup and artifact paths.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: float | None = None,
        detail: dict | None = None,
    ) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.detail = detail

    @property
    def http_status(self) -> int:
        return ERROR_STATUS[self.code]

    def envelope(self) -> dict:
        """This error as the frozen envelope document."""
        return error_envelope(
            self.code, self.message, self.retry_after, self.detail
        )
