"""CompileService: the job queue behind the HTTP layer.

Robustness architecture (DESIGN.md §13):

* **Bounded admission.**  :meth:`CompileService.submit` is the only
  producer; it refuses work *before* queuing it — drain mode (503),
  rate limit (429 ``rate_limited``), queue depth (429 ``shed``) —
  so the set of admitted-but-unfinished jobs can never exceed
  ``max_queue_depth``.  A shed response carries a ``Retry-After``
  derived from an EWMA of observed service times (how long until the
  backlog plausibly has room), falling back to
  ``default_retry_after`` before anything has been observed.

* **Single-threaded supervision.**  The PR-9
  :class:`~repro.resilience.supervisor.Supervisor` is not thread-safe,
  so a dedicated *collector* thread constructs and exclusively owns
  it; HTTP handler threads hand admitted records over through a
  :class:`queue.SimpleQueue`.  The shared job table is guarded by one
  lock with tiny critical sections (dict reads/writes and pure window
  math only — never compilation, never blocking waits).

* **Idempotent resubmits.**  Submissions are deduplicated twice by
  content fingerprint: against the :class:`ResultCache` (an already
  compiled spec completes instantly, ``cache_hit``) and against
  in-flight records (a resubmit of a queued spec returns the existing
  job id, ``deduped`` — a retrying client cannot amplify load).

* **Lifecycle + housekeeping.**  Admitted jobs move ``pending`` →
  ``done`` (terminal outcomes from the supervisor: ok / failed /
  timeout / crashed / poisoned, plus ``aborted`` on hard-stop); a
  housekeeper thread expires finished records after ``job_ttl`` and
  prunes idle rate-limit windows, so a long-lived server's memory is
  bounded by (queue depth + finished-jobs-per-TTL), not uptime.

* **Drain.**  :meth:`drain` flips the admission gate (new submissions
  get 503 ``draining``), waits for in-flight jobs to finish, and past
  ``drain_deadline`` hard-stops: remaining records are marked
  ``aborted`` so no admitted job is ever silently lost.

Metrics (``serve.*``, recorded into the active observation): counters
``serve.requests`` / ``serve.admitted`` / ``serve.shed`` /
``serve.rate_limited`` / ``serve.deduped`` / ``serve.cache_hits`` /
``serve.rejected`` / ``serve.completed.<outcome>`` /
``serve.expired`` / ``serve.aborted``; histogram
``serve.service_seconds``; gauges ``serve.queue_depth`` (and its
high-water mark ``serve.queue_depth_max``) / ``serve.identities``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field, replace
from time import monotonic, time

from ..batch.cache import NullCache, ResultCache
from ..batch.runner import JobResult
from ..batch.spec import JobSpec
from ..obs import active as _obs_active
from ..resilience.policy import RetryPolicy
from ..resilience.supervisor import Supervisor
from .config import ServeConfig
from .errors import ServeError, outcome_to_code

#: EWMA weight for observed service times (Retry-After estimation).
_EWMA_ALPHA = 0.3


def result_payload(job_result: JobResult) -> dict:
    """The JSON artifact document for a finished-ok job."""
    result = job_result.result
    payload = {
        "circuit": result.circuit_name,
        "config": result.config_name,
        "num_gates": result.num_gates,
        "num_shuttles": result.num_shuttles,
        "gate_routing_shuttles": result.gate_routing_shuttles,
        "rebalance_shuttles": result.rebalance_shuttles,
        "num_reorders": result.num_reorders,
        "num_rebalances": result.num_rebalances,
        "compile_time": result.compile_time,
    }
    if result.optimized:
        payload["raw_num_shuttles"] = result.raw_num_shuttles
        payload["shuttles_removed_by_passes"] = (
            result.shuttles_removed_by_passes
        )
    if job_result.report is not None:
        report = job_result.report
        payload["simulation"] = {
            "log10_fidelity": report.log10_fidelity,
            "duration": report.duration,
            "max_nbar": report.max_nbar,
        }
    return payload


@dataclass
class JobRecord:
    """One admitted (or instantly completed) job in the table."""

    job_id: str
    spec: JobSpec
    fingerprint: str
    identity: str
    #: ``pending`` (admitted, not terminal) or ``done``.
    state: str = "pending"
    #: Terminal outcome once done: ok / failed / timeout / crashed /
    #: poisoned / aborted.
    outcome: str | None = None
    cache_hit: bool = False
    #: Resubmits of this fingerprint that were folded into this record.
    deduped: int = 0
    submitted_at: float = field(default_factory=time)
    finished_at: float | None = None
    #: Monotonic clocks for TTL/latency math (wall time is for humans).
    _admitted_mono: float = field(default_factory=monotonic, repr=False)
    _finished_mono: float | None = field(default=None, repr=False)
    seconds: float | None = None
    attempts: int = 0
    #: Artifact document (outcome ``ok`` only).
    result: dict | None = None
    #: Frozen error envelope (failed outcomes only).
    error: dict | None = None

    def status_dict(self) -> dict:
        """The ``GET /v1/jobs/<id>`` body."""
        return {
            "id": self.job_id,
            "state": self.state,
            "outcome": self.outcome,
            "label": self.spec.label,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "deduped": self.deduped,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "error": self.error,
        }


class CompileService:
    """The job queue: admission, supervision, lifecycle, drain."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        cache: ResultCache | NullCache | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.cache = cache if cache is not None else NullCache()
        self._lock = threading.RLock()
        self._records: dict[str, JobRecord] = {}
        #: Non-terminal records by fingerprint (in-flight dedup).
        self._inflight: dict[str, JobRecord] = {}
        #: Supervisor job index -> record, collector thread only.
        self._running: dict[int, JobRecord] = {}
        self._limiter = (
            self.config.rate_limit.limiter()
            if self.config.rate_limit
            else None
        )
        self._inbox: queue.SimpleQueue[JobRecord | None] = queue.SimpleQueue()
        self._next_id = 0
        self._next_index = 0
        self._pending = 0
        self._service_ewma: float | None = None
        self._draining = False
        self._stop = threading.Event()
        self._abort = threading.Event()
        self._idle = threading.Condition(self._lock)
        self._started = threading.Event()
        self._collector = threading.Thread(
            target=self._collector_main, name="serve-collector", daemon=True
        )
        self._housekeeper = threading.Thread(
            target=self._housekeeper_main,
            name="serve-housekeeper",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CompileService":
        self._collector.start()
        self._housekeeper.start()
        # Wait for the worker pool so the first request never races
        # process spawn.
        self._started.wait(timeout=30.0)
        return self

    def __enter__(self) -> "CompileService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admission (HTTP handler threads)
    # ------------------------------------------------------------------
    def submit(self, payload: dict, identity: str) -> JobRecord:
        """Admit one job (or refuse loudly).  Raises :class:`ServeError`
        with code ``validation`` / ``draining`` / ``rate_limited`` /
        ``shed``; returns the (possibly pre-existing) record.

        The expensive steps — spec validation + content fingerprinting
        (circuit construction and hashing) and the content-addressed
        disk lookup — run *before* the lock; inside it are only dict
        operations and pure window math, so handler threads never hold
        the lock across IO or compilation-sized work.  Consequences,
        both deliberate: validation failures never consume a rate-limit
        slot, and cache hits are served even when the queue is
        saturated (they consume no queue capacity).
        """
        try:
            spec = JobSpec.from_dict(payload)
            fingerprint = spec.fingerprint()
        except (ValueError, TypeError) as exc:
            with self._lock:
                self._count("serve.requests")
                self._count("serve.rejected")
            raise ServeError("validation", str(exc)) from exc
        # Entries are content-addressed and immutable, so the read
        # needs no coordination with the job table.
        cached = self.cache.get(fingerprint)
        with self._lock:
            self._count("serve.requests")
            if self._draining or self._stop.is_set():
                self._count("serve.rejected")
                raise ServeError(
                    "draining", "server is draining; not admitting jobs"
                )
            if self._limiter is not None:
                admitted, retry_after = self._limiter.check(
                    identity, monotonic()
                )
                self._gauge("serve.identities", len(self._limiter))
                if not admitted:
                    self._count("serve.rate_limited")
                    raise ServeError(
                        "rate_limited",
                        f"identity {identity!r} exceeded "
                        f"{self.config.rate_limit}",
                        retry_after=retry_after,
                    )
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                inflight.deduped += 1
                self._count("serve.deduped")
                return inflight
            if cached is not None:
                record = JobRecord(
                    job_id=f"j{self._next_id:06d}",
                    spec=spec,
                    fingerprint=fingerprint,
                    identity=identity,
                )
                self._next_id += 1
                self._records[record.job_id] = record
                self._count("serve.admitted")
                self._count("serve.cache_hits")
                self._complete(
                    record, replace_cached(cached), cache_hit=True
                )
                return record
            if self._pending >= self.config.max_queue_depth:
                self._count("serve.shed")
                raise ServeError(
                    "shed",
                    f"admission queue full "
                    f"({self._pending}/{self.config.max_queue_depth} jobs)",
                    retry_after=self._shed_retry_after(),
                    detail={"queue_depth": self._pending},
                )
            record = JobRecord(
                job_id=f"j{self._next_id:06d}",
                spec=spec,
                fingerprint=fingerprint,
                identity=identity,
            )
            self._next_id += 1
            self._records[record.job_id] = record
            self._inflight[fingerprint] = record
            self._pending += 1
            self._count("serve.admitted")
            self._gauge("serve.queue_depth", self._pending)
        self._inbox.put(record)
        return record

    def _shed_retry_after(self) -> float:
        """Expected seconds until the backlog has room: (queue depth /
        workers) x EWMA service time.  Held-lock caller."""
        if self._service_ewma is None:
            return self.config.default_retry_after
        estimate = (
            self._pending / self.config.workers
        ) * self._service_ewma
        return round(max(estimate, self.config.default_retry_after), 3)

    # ------------------------------------------------------------------
    # Lookup (HTTP handler threads)
    # ------------------------------------------------------------------
    def status(self, job_id: str) -> dict:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise ServeError(
                    "not_found", f"unknown (or expired) job {job_id!r}"
                )
            return record.status_dict()

    def artifacts(self, job_id: str) -> dict:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise ServeError(
                    "not_found", f"unknown (or expired) job {job_id!r}"
                )
            if record.state != "done":
                raise ServeError(
                    "not_ready",
                    f"job {job_id} is still {record.state}; poll "
                    f"status until done",
                )
            if record.outcome != "ok":
                error = record.error or {}
                inner = error.get("error", {})
                raise ServeError(
                    inner.get("code", "internal"),
                    inner.get(
                        "message", f"job {job_id} ended {record.outcome}"
                    ),
                    detail=inner.get("detail"),
                )
            return {
                "id": record.job_id,
                "fingerprint": record.fingerprint,
                "cache_hit": record.cache_hit,
                "seconds": record.seconds,
                "result": record.result,
            }

    # ------------------------------------------------------------------
    # Health (HTTP handler threads)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness: green as long as the service threads run — an
        overloaded server is alive, that is the point of shedding."""
        return {
            "ok": self._collector.is_alive(),
            "pending": self._pending,
        }

    def readiness(self) -> dict:
        """Readiness: willing to admit right now?"""
        with self._lock:
            saturated = self._pending >= self.config.max_queue_depth
            ready = (
                self._collector.is_alive()
                and not self._draining
                and not self._stop.is_set()
                and not saturated
            )
            return {
                "ready": ready,
                "draining": self._draining,
                "saturated": saturated,
                "pending": self._pending,
                "max_queue_depth": self.config.max_queue_depth,
            }

    @property
    def pending(self) -> int:
        return self._pending

    # ------------------------------------------------------------------
    # Collector thread: owns the Supervisor
    # ------------------------------------------------------------------
    def _collector_main(self) -> None:
        observed = _obs_active() is not None
        retry = RetryPolicy(max_attempts=self.config.max_attempts)
        with Supervisor(
            self.config.workers,
            retry=retry,
            timeout=self.config.job_timeout,
        ) as supervisor:
            self._started.set()
            while True:
                self._pull_inbox(supervisor, observed)
                if self._abort.is_set():
                    self._hard_stop()
                    return
                if self._stop.is_set() and supervisor.pending == 0:
                    return
                if supervisor.pending == 0:
                    # Nothing in flight: block on the inbox instead of
                    # spinning (None is the stop nudge).
                    try:
                        record = self._inbox.get(timeout=0.1)
                    except queue.Empty:
                        continue
                    if record is not None:
                        self._dispatch(supervisor, record, observed)
                    continue
                for job_result in supervisor.poll(0.05):
                    self._on_terminal(job_result)

    def _pull_inbox(self, supervisor: Supervisor, observed: bool) -> None:
        while True:
            try:
                record = self._inbox.get_nowait()
            except queue.Empty:
                return
            if record is not None:
                self._dispatch(supervisor, record, observed)

    def _dispatch(
        self, supervisor: Supervisor, record: JobRecord, observed: bool
    ) -> None:
        index = self._next_index
        self._next_index += 1
        self._running[index] = record
        supervisor.submit(
            index, record.spec.resolve(), record.fingerprint, observed
        )

    def _on_terminal(self, job_result: JobResult) -> None:
        record = self._running.pop(job_result.job_index)
        if job_result.ok:
            # Atomic content-addressed write (collector thread only) —
            # kept outside the lock like the read side.
            self.cache.put(
                job_result.fingerprint, strip_for_cache(job_result)
            )
        with self._lock:
            self._complete(record, job_result, cache_hit=False)

    def _complete(
        self, record: JobRecord, job_result: JobResult, cache_hit: bool
    ) -> None:
        """Mark a record terminal.  Held-lock caller."""
        record.state = "done"
        record.outcome = job_result.outcome
        record.cache_hit = cache_hit
        record.finished_at = time()
        record._finished_mono = monotonic()
        record.seconds = job_result.seconds
        record.attempts = job_result.attempts
        if job_result.ok:
            record.result = result_payload(job_result)
        else:
            code = outcome_to_code(job_result.outcome)
            record.error = ServeError(
                code,
                job_result.error or f"job ended {job_result.outcome}",
                detail={"outcome": job_result.outcome},
            ).envelope()
        self._count(f"serve.completed.{record.outcome}")
        if not cache_hit:
            self._inflight.pop(record.fingerprint, None)
            self._pending -= 1
            self._gauge("serve.queue_depth", self._pending)
            if job_result.seconds is not None:
                self._observe("serve.service_seconds", job_result.seconds)
                prev = self._service_ewma
                self._service_ewma = (
                    job_result.seconds
                    if prev is None
                    else (1 - _EWMA_ALPHA) * prev
                    + _EWMA_ALPHA * job_result.seconds
                )
            self._idle.notify_all()

    def _hard_stop(self) -> None:
        """Drain deadline passed: mark everything still in flight
        aborted so no admitted job is silently lost."""
        with self._lock:
            for record in list(self._running.values()):
                record.state = "done"
                record.outcome = "aborted"
                record.finished_at = time()
                record._finished_mono = monotonic()
                record.error = ServeError(
                    "internal",
                    "server hard-stopped past its drain deadline with "
                    "this job still in flight",
                    detail={"outcome": "aborted"},
                ).envelope()
                self._inflight.pop(record.fingerprint, None)
                self._pending -= 1
                self._count("serve.aborted")
            self._running.clear()
            self._gauge("serve.queue_depth", self._pending)
            self._idle.notify_all()

    # ------------------------------------------------------------------
    # Housekeeper thread
    # ------------------------------------------------------------------
    def _housekeeper_main(self) -> None:
        interval = self.config.housekeeping_interval
        while not self._stop.wait(timeout=interval):
            self.sweep()

    def sweep(self, now: float | None = None) -> int:
        """One housekeeping pass: expire finished records past their
        TTL, prune idle rate-limit windows.  Returns expirations."""
        now = monotonic() if now is None else now
        cutoff = now - self.config.job_ttl
        with self._lock:
            expired = [
                job_id
                for job_id, record in self._records.items()
                if record.state == "done"
                and record._finished_mono is not None
                and record._finished_mono <= cutoff
            ]
            for job_id in expired:
                del self._records[job_id]
            if expired:
                self._count("serve.expired", len(expired))
            if self._limiter is not None:
                self._limiter.prune_idle(now)
                self._gauge("serve.identities", len(self._limiter))
        return len(expired)

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------
    def drain(self, deadline: float | None = None) -> bool:
        """Stop admitting, wait for in-flight jobs, hard-stop past the
        deadline.  Returns ``True`` on a clean drain (nothing aborted).
        Idempotent; safe from any thread (signal handlers call it)."""
        if deadline is None:
            deadline = self.config.drain_deadline
        due = monotonic() + deadline
        with self._idle:
            self._draining = True
            while self._pending > 0:
                remaining = due - monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=min(remaining, 0.25))
            clean = self._pending == 0
        self._stop.set()
        if not clean:
            self._abort.set()
        self._inbox.put(None)  # nudge a blocked collector
        self._collector.join(timeout=deadline + 10.0)
        with self._lock:
            clean = clean and all(
                record.outcome != "aborted"
                for record in self._records.values()
            )
        return clean

    def close(self) -> None:
        """Immediate shutdown (tests, ``finally`` blocks): no grace
        beyond the configured drain deadline."""
        if not self._stop.is_set():
            self.drain()
        self._housekeeper.join(
            timeout=self.config.housekeeping_interval + 5.0
        )

    # ------------------------------------------------------------------
    # Metrics plumbing — service-side writes happen under self._lock;
    # the Supervisor's batch.* writes come from the collector thread
    # only, and the key sets are disjoint, so the two writers never
    # race on one metric.
    # ------------------------------------------------------------------
    @staticmethod
    def _count(name: str, value: float = 1) -> None:
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc(name, value)

    @staticmethod
    def _gauge(name: str, value: float) -> None:
        obs = _obs_active()
        if obs is not None:
            obs.metrics.set_gauge(name, value)
            high = f"{name}_max"
            if value > obs.metrics.gauges.get(high, float("-inf")):
                obs.metrics.set_gauge(high, value)

    @staticmethod
    def _observe(name: str, value: float) -> None:
        obs = _obs_active()
        if obs is not None:
            obs.metrics.observe(name, value)


def strip_for_cache(job_result: JobResult) -> JobResult:
    """A cacheable copy: execution circumstance (index, timing,
    attempts) stripped, matching the batch runner's convention."""
    return replace(
        job_result,
        job_index=-1,
        seconds=None,
        attempts=0,
        attempt_seconds=(),
        metrics=None,
    )


def replace_cached(cached: JobResult) -> JobResult:
    """A cached value as a fresh terminal result (cache hits carry no
    timing; the record's ``seconds`` stays ``None``)."""
    return replace(cached, cache_hit=True)
