"""ServeConfig: the service's knobs, JSON round-trippable, with presets.

Every robustness bound the service enforces is declared here — queue
depth, rate limits, deadlines, TTLs — so a deployment is one document,
not scattered flags.  ``repro serve --preset <name>`` starts from a
bundled preset (:data:`SERVE_PRESETS`, also listed by ``repro info``)
and individual CLI flags override fields.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace

from .ratelimit import SlidingWindowLimiter


@dataclass(frozen=True)
class RateLimit:
    """Per-identity sliding-window budget: ``limit`` admissions per
    ``window_seconds`` (see :mod:`repro.serve.ratelimit`)."""

    limit: int
    window_seconds: float

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError(f"rate limit must be > 0, got {self.limit}")
        if self.window_seconds <= 0:
            raise ValueError(
                f"rate-limit window must be > 0 seconds, "
                f"got {self.window_seconds}"
            )

    def limiter(self) -> SlidingWindowLimiter:
        return SlidingWindowLimiter(self.limit, self.window_seconds)

    def to_dict(self) -> dict:
        return asdict(self)

    def __str__(self) -> str:
        return f"{self.limit}/{self.window_seconds:g}s per identity"


@dataclass(frozen=True)
class ServeConfig:
    """One service deployment (see the module docstring)."""

    #: Supervised worker processes compiling jobs.
    workers: int = 2
    #: Admitted-but-unfinished jobs beyond which submissions shed (429).
    max_queue_depth: int = 16
    #: Per-identity sliding window; ``None`` disables rate limiting.
    rate_limit: RateLimit | None = None
    #: Default per-job wall-clock budget, seconds (a spec's own
    #: ``deadline`` overrides it); ``None`` = unbounded.
    job_timeout: float | None = None
    #: Attempt budget per job (1 = no retries).
    max_attempts: int = 1
    #: Seconds a finished job's record (and artifacts) stays fetchable
    #: before the housekeeper expires it.
    job_ttl: float = 600.0
    #: Housekeeper wake-up period, seconds.
    housekeeping_interval: float = 0.5
    #: Seconds drain mode waits for in-flight jobs before hard-stop.
    drain_deadline: float = 10.0
    #: Retry-After fallback before any service time has been observed.
    default_retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be > 0, got {self.job_timeout}"
            )
        for name in ("job_ttl", "housekeeping_interval", "drain_deadline",
                     "default_retry_after"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)  # recurses the rate limit into a plain dict
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        payload = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown serve config field(s): {', '.join(sorted(unknown))}"
            )
        if isinstance(payload.get("rate_limit"), dict):
            payload["rate_limit"] = RateLimit(**payload["rate_limit"])
        return cls(**payload)

    def override(self, **changes) -> "ServeConfig":
        """A copy with non-``None`` ``changes`` applied (CLI flags)."""
        effective = {
            key: value for key, value in changes.items() if value is not None
        }
        return replace(self, **effective) if effective else self

    def describe(self) -> str:
        """One ``repro info`` line."""
        limit = str(self.rate_limit) if self.rate_limit else "no rate limit"
        timeout = (
            f"{self.job_timeout:g}s timeout"
            if self.job_timeout
            else "no timeout"
        )
        return (
            f"{self.workers} workers, queue depth {self.max_queue_depth}, "
            f"{limit}, {timeout}, {self.max_attempts} attempt(s), "
            f"drain {self.drain_deadline:g}s"
        )


#: Bundled deployment presets (``repro serve --preset <name>``).
SERVE_PRESETS: dict[str, ServeConfig] = {
    # Local development: small everything, fail fast, no limits.
    "dev": ServeConfig(
        workers=2,
        max_queue_depth=8,
        job_ttl=300.0,
        drain_deadline=5.0,
    ),
    # A steady multi-user front end: rate-limited identities, retries
    # for transient worker faults, bounded job runtimes.
    "steady": ServeConfig(
        workers=4,
        max_queue_depth=32,
        rate_limit=RateLimit(limit=30, window_seconds=10.0),
        job_timeout=60.0,
        max_attempts=2,
    ),
    # Bulk ingestion: deep queue, generous deadlines, coarse limits.
    "bulk": ServeConfig(
        workers=8,
        max_queue_depth=128,
        rate_limit=RateLimit(limit=200, window_seconds=10.0),
        job_timeout=300.0,
        max_attempts=2,
        job_ttl=1800.0,
        drain_deadline=30.0,
    ),
}


def load_serve_config(spec: str) -> ServeConfig:
    """Resolve a config argument: a preset name or a JSON file path."""
    preset = SERVE_PRESETS.get(spec)
    if preset is not None:
        return preset
    if spec.endswith(".json"):
        with open(spec, encoding="utf-8") as handle:
            return ServeConfig.from_dict(json.load(handle))
    raise ValueError(
        f"unknown serve config {spec!r}; choose a preset "
        f"({', '.join(sorted(SERVE_PRESETS))}) or a .json config file"
    )
