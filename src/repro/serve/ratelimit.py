"""Per-identity sliding-window rate limiting.

The window math lives in two pure functions — :func:`prune_window` and
:func:`window_decision` — over an immutable arrival tuple, a clock
reading, a window width and a limit; the property suite in
``tests/test_serve_ratelimit.py`` drives them with arbitrary arrival
sequences and window sizes.  :class:`SlidingWindowLimiter` is the thin
stateful wrapper the service uses: one arrival tuple per identity,
mutated only through the pure decision function.

Window semantics (the contract the property suite pins):

* the window is **half-open looking back**: an arrival at time ``t``
  counts against a decision at time ``now`` iff ``t > now - window``
  — an arrival exactly ``window`` seconds old has expired;
* a request is admitted iff strictly fewer than ``limit`` admitted
  arrivals are inside its window — so no window of width ``window``
  ever contains more than ``limit`` admissions;
* a denied request is **not** recorded: rejected traffic cannot starve
  an identity forever;
* the returned ``retry_after`` is exact: the time until enough
  in-window arrivals expire for one admission, so retrying at
  ``now + retry_after`` (plus epsilon) is guaranteed to be admitted
  if no other request lands in between.
"""

from __future__ import annotations

from collections.abc import Sequence


def prune_window(
    arrivals: Sequence[float], now: float, window: float
) -> tuple[float, ...]:
    """Arrivals still inside the look-back window ``(now - window, now]``.

    Pure; preserves order (arrival tuples are kept sorted by
    construction, since admissions happen at monotonically increasing
    ``now`` values).
    """
    cutoff = now - window
    return tuple(t for t in arrivals if t > cutoff)


def window_decision(
    arrivals: Sequence[float],
    now: float,
    window: float,
    limit: int,
) -> tuple[bool, float, tuple[float, ...]]:
    """Decide one request against a sliding window.  Pure.

    Returns ``(admitted, retry_after, new_arrivals)``:
    ``new_arrivals`` is the pruned window including ``now`` when
    admitted (unchanged but pruned when denied), ``retry_after`` is 0.0
    on admission and the exact wait until a slot frees on denial.
    """
    if limit <= 0:
        raise ValueError(f"limit must be > 0, got {limit}")
    if window <= 0:
        raise ValueError(f"window must be > 0 seconds, got {window}")
    kept = prune_window(arrivals, now, window)
    if len(kept) < limit:
        return True, 0.0, kept + (now,)
    # Denied: len(kept) >= limit.  A retry at time T is admitted when
    # fewer than `limit` of `kept` remain inside (T - window, T]; the
    # first such instant is when the (len(kept) - limit + 1)-th oldest
    # arrival turns exactly `window` old.
    frees_at = kept[len(kept) - limit] + window
    return False, max(frees_at - now, 0.0), kept


class SlidingWindowLimiter:
    """Sliding windows keyed by identity (token key or client address).

    Not internally locked — the service calls it under its own lock
    (one decision is one dict read + one pure function + one dict
    write, so the critical section stays tiny).
    """

    def __init__(self, limit: int, window_seconds: float) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be > 0, got {limit}")
        if window_seconds <= 0:
            raise ValueError(
                f"window must be > 0 seconds, got {window_seconds}"
            )
        self.limit = limit
        self.window_seconds = window_seconds
        self._windows: dict[str, tuple[float, ...]] = {}

    def check(self, identity: str, now: float) -> tuple[bool, float]:
        """Decide (and record, if admitted) one request for ``identity``.

        Returns ``(admitted, retry_after)``.
        """
        admitted, retry_after, window = window_decision(
            self._windows.get(identity, ()),
            now,
            self.window_seconds,
            self.limit,
        )
        if window:
            self._windows[identity] = window
        else:
            self._windows.pop(identity, None)
        return admitted, retry_after

    def prune_idle(self, now: float) -> int:
        """Drop identities whose windows have fully expired (the
        housekeeper's session-expiry pass); returns how many."""
        stale = [
            identity
            for identity, arrivals in self._windows.items()
            if not prune_window(arrivals, now, self.window_seconds)
        ]
        for identity in stale:
            del self._windows[identity]
        return len(stale)

    def __len__(self) -> int:
        """Identities currently holding a non-empty window."""
        return len(self._windows)
