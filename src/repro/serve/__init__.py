"""repro.serve — the hardened compilation service.

A stdlib-only HTTP + job-queue layer over the batch engine, designed
robustness-first:

* **bounded admission** — :class:`CompileService` never queues more
  than ``max_queue_depth`` jobs; beyond that, submissions are shed
  with a 429 and a Retry-After derived from observed service times
  (the server degrades, it never OOMs or blocks accept);
* **per-identity rate limiting** — a sliding window per token key
  (``X-Repro-Identity`` header or client address), pure-function
  window math in :mod:`repro.serve.ratelimit`;
* **job lifecycle** — submit (202 + job id) → poll status → fetch
  artifacts; per-job deadlines propagate into
  :attr:`CompileJob.deadline` so the PR-9 supervised pool enforces
  them, idempotent resubmits dedup through the content-addressed
  cache, and a housekeeper expires finished jobs;
* **structured errors** — every failure class maps to the frozen JSON
  envelope in :mod:`repro.serve.errors` with stable codes;
* **graceful degradation** — ``/healthz`` (liveness) stays green under
  overload, ``/readyz`` (readiness) reports saturation and drain;
  SIGTERM triggers drain mode: stop admitting, finish in-flight,
  flush metrics, bounded by a drain deadline then hard-stop.

The wire format for jobs is :class:`repro.batch.spec.JobSpec` — the
same documents :meth:`repro.loadgen.Scenario.spec_stream` draws, which
is what lets ``repro load <scenario> --target http://…`` replay a
deterministic scenario against a live server and stay comparable to an
in-process run.

CLI: ``repro serve`` (see ``repro serve --help``); the bundled queue /
rate-limit presets are in :data:`repro.serve.config.SERVE_PRESETS` and
listed by ``repro info``.
"""

from __future__ import annotations

from .client import ServeClient, ServeUnavailable
from .config import SERVE_PRESETS, RateLimit, ServeConfig, load_serve_config
from .errors import ERROR_STATUS, ServeError, error_envelope, outcome_to_code
from .http import ServerHandle, run_server
from .ratelimit import SlidingWindowLimiter, window_decision
from .service import CompileService, JobRecord

__all__ = [
    "ERROR_STATUS",
    "SERVE_PRESETS",
    "CompileService",
    "JobRecord",
    "RateLimit",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeUnavailable",
    "ServerHandle",
    "SlidingWindowLimiter",
    "error_envelope",
    "load_serve_config",
    "outcome_to_code",
    "run_server",
    "window_decision",
]
