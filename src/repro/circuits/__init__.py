"""Circuit intermediate representation and front ends.

Public surface:

* :class:`~repro.circuits.gate.Gate` and gate constructors (``ms``,
  ``cx``, ...),
* :class:`~repro.circuits.circuit.Circuit`,
* :class:`~repro.circuits.dag.DependencyDAG` (Section II-A of the paper),
* :func:`~repro.circuits.qasm.parse_qasm` / ``load_qasm`` and
  :func:`~repro.circuits.qasm_writer.circuit_to_qasm`,
* :func:`~repro.circuits.decompose.decompose_circuit` into the
  trapped-ion native set.
"""

from .circuit import Circuit
from .dag import DependencyDAG
from .decompose import NATIVE_GATES, decompose_circuit, decompose_gate, is_native
from .gate import (
    ONE_QUBIT_GATES,
    THREE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
    GateError,
    cp,
    cx,
    cz,
    h,
    ms,
    rx,
    ry,
    rz,
    rzz,
    swap,
    x,
)
from .qasm import QasmError, load_qasm, parse_qasm
from .qasm_writer import circuit_to_qasm, dump_qasm

__all__ = [
    "Circuit",
    "DependencyDAG",
    "Gate",
    "GateError",
    "QasmError",
    "NATIVE_GATES",
    "ONE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "THREE_QUBIT_GATES",
    "circuit_to_qasm",
    "cp",
    "cx",
    "cz",
    "decompose_circuit",
    "decompose_gate",
    "dump_qasm",
    "h",
    "is_native",
    "load_qasm",
    "ms",
    "parse_qasm",
    "rx",
    "ry",
    "rz",
    "rzz",
    "swap",
    "x",
]
