"""Unitary matrices for the supported gate set.

These are used to *verify* the trapped-ion native-set decompositions in
:mod:`repro.circuits.decompose` — the compiler itself never multiplies
matrices.  Matrices follow the little-endian qubit convention used by
OpenQASM/Qiskit: for a gate on ``(q0, q1)``, ``q0`` is the least
significant bit of the basis-state index.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from .gate import Gate

_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)


def _rotation(axis: np.ndarray, theta: float) -> np.ndarray:
    """exp(-i theta/2 * axis) for a Pauli axis."""
    return (
        math.cos(theta / 2) * np.eye(axis.shape[0], dtype=complex)
        - 1j * math.sin(theta / 2) * axis
    )


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    return np.array(
        [
            [math.cos(theta / 2), -cmath.exp(1j * lam) * math.sin(theta / 2)],
            [
                cmath.exp(1j * phi) * math.sin(theta / 2),
                cmath.exp(1j * (phi + lam)) * math.cos(theta / 2),
            ],
        ],
        dtype=complex,
    )


def _controlled(u: np.ndarray) -> np.ndarray:
    """Controlled-U with control = qubit 0 (little-endian convention).

    Basis order |q1 q0>: the control bit is the least significant index,
    so rows/columns 1 and 3 (q0 = 1) carry U.
    """
    out = np.eye(4, dtype=complex)
    out[1, 1] = u[0, 0]
    out[1, 3] = u[0, 1]
    out[3, 1] = u[1, 0]
    out[3, 3] = u[1, 1]
    return out


_XX = np.kron(_X, _X)
_ZZ_OP = np.kron(_Z, _Z)

_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def gate_matrix(gate: Gate) -> np.ndarray:
    """Return the unitary matrix of a one- or two-qubit gate.

    The matrix is expressed on the gate's own qubits in the order they
    appear in ``gate.qubits`` (first qubit = least significant bit).
    """
    name = gate.name
    p = gate.params
    if name == "id":
        return _I2.copy()
    if name == "x":
        return _X.copy()
    if name == "y":
        return _Y.copy()
    if name == "z":
        return _Z.copy()
    if name == "h":
        return _H.copy()
    if name == "s":
        return np.diag([1, 1j]).astype(complex)
    if name == "sdg":
        return np.diag([1, -1j]).astype(complex)
    if name == "t":
        return np.diag([1, cmath.exp(1j * math.pi / 4)])
    if name == "tdg":
        return np.diag([1, cmath.exp(-1j * math.pi / 4)])
    if name == "sx":
        return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
    if name == "sxdg":
        return 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)
    if name == "rx":
        return _rotation(_X, p[0])
    if name == "ry":
        return _rotation(_Y, p[0])
    if name == "rz":
        return _rotation(_Z, p[0])
    if name in ("p", "u1"):
        return np.diag([1, cmath.exp(1j * p[0])])
    if name == "u2":
        return _u3(math.pi / 2, p[0], p[1])
    if name in ("u3", "u"):
        return _u3(p[0], p[1], p[2])
    if name == "gpi":
        # IonQ GPi(phi): X-like rotation, |0><1|e^{-i phi} + |1><0|e^{i phi}
        return np.array(
            [[0, cmath.exp(-1j * p[0])], [cmath.exp(1j * p[0]), 0]], dtype=complex
        )
    if name == "gpi2":
        phi = p[0]
        return (
            1
            / math.sqrt(2)
            * np.array(
                [[1, -1j * cmath.exp(-1j * phi)], [-1j * cmath.exp(1j * phi), 1]],
                dtype=complex,
            )
        )
    if name in ("ms", "xx"):
        # Native Molmer-Sorensen gate: XX(pi/4) = exp(-i pi/4 X.X)
        return _rotation(_XX, math.pi / 2)
    if name == "rxx":
        return _rotation(_XX, p[0])
    if name in ("rzz", "zz"):
        return _rotation(_ZZ_OP, p[0])
    if name in ("cx", "cnot"):
        return _controlled(_X)
    if name == "cy":
        return _controlled(_Y)
    if name == "cz":
        return _controlled(_Z)
    if name == "ch":
        return _controlled(_H)
    if name in ("cp", "cu1"):
        return _controlled(np.diag([1, cmath.exp(1j * p[0])]))
    if name == "crx":
        return _controlled(_rotation(_X, p[0]))
    if name == "cry":
        return _controlled(_rotation(_Y, p[0]))
    if name == "crz":
        return _controlled(_rotation(_Z, p[0]))
    if name == "swap":
        return _SWAP.copy()
    if name in ("ccx", "toffoli"):
        return _permutation_matrix(
            3, lambda b: b ^ 0b100 if (b & 0b011) == 0b011 else b
        )
    if name == "ccz":
        out = np.eye(8, dtype=complex)
        out[7, 7] = -1.0
        return out
    if name == "cswap":
        # control = qubit 0; swap qubits 1 and 2 (little-endian bits).
        def _cswap_rule(b: int) -> int:
            if b & 0b001:
                bit1 = (b >> 1) & 1
                bit2 = (b >> 2) & 1
                return (b & 0b001) | (bit2 << 1) | (bit1 << 2)
            return b

        return _permutation_matrix(3, _cswap_rule)
    raise ValueError(f"no matrix known for gate {name!r}")


def _permutation_matrix(num_qubits: int, rule) -> np.ndarray:
    """Matrix of a classical reversible function on basis states."""
    dim = 1 << num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        out[rule(col), col] = 1.0
    return out


def circuit_unitary(gates, num_qubits: int) -> np.ndarray:
    """Multiply out a gate sequence into a full 2^n x 2^n unitary.

    Intended for small verification circuits (n <= ~10).
    """
    dim = 1 << num_qubits
    unitary = np.eye(dim, dtype=complex)
    for gate in gates:
        unitary = _embed(gate, num_qubits) @ unitary
    return unitary


def _embed(gate: Gate, num_qubits: int) -> np.ndarray:
    """Embed a gate's matrix into the full register space."""
    small = gate_matrix(gate)
    k = gate.num_qubits
    dim = 1 << num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    qubits = gate.qubits
    rest = [q for q in range(num_qubits) if q not in qubits]
    for col in range(dim):
        sub_col = 0
        for bit, q in enumerate(qubits):
            sub_col |= ((col >> q) & 1) << bit
        base = col
        for q in qubits:
            base &= ~(1 << q)
        for sub_row in range(1 << k):
            amp = small[sub_row, sub_col]
            if amp == 0:
                continue
            row = base
            for bit, q in enumerate(qubits):
                row |= ((sub_row >> bit) & 1) << q
            full[row, col] += amp
    # rest is unused but documents the embedding intent
    del rest
    return full


def allclose_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    """True when a == e^{i phi} b for some global phase phi."""
    if a.shape != b.shape:
        return False
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[index]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[index] / b[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))
