"""Decomposition into the trapped-ion native gate set.

The modeled hardware executes:

* single-qubit rotations ``rx``, ``ry``, ``rz`` (and anything expressible
  as them), and
* the two-qubit Molmer-Sorensen gate ``ms`` = XX(pi/4) = exp(-i pi/4 XX).

The paper counts "2Q gates" *after* decomposition (e.g. QFT-64 reports
4032 two-qubit gates = 2016 controlled-phases x 2 MS each), so the
benchmark generators in :mod:`repro.bench` run their circuits through
:func:`decompose_circuit` before compilation.

Every rule below is verified against exact unitaries (up to global phase)
in ``tests/test_decompose.py``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from .circuit import Circuit
from .gate import Gate

#: Gate names executable directly by the modeled trapped-ion hardware.
#: ``rxx`` (arbitrary-angle XX interaction) is native: trapped-ion
#: hardware realizes it as a single retuned Molmer-Sorensen pulse, and
#: QCCDSim likewise charges one two-qubit operation for it.
NATIVE_GATES = frozenset(
    {"ms", "rxx", "rx", "ry", "rz", "id", "x", "y", "z", "h", "s", "sdg",
     "t", "tdg", "sx", "sxdg", "p", "u1", "u2", "u3", "u", "gpi", "gpi2"}
)


def is_native(gate: Gate) -> bool:
    """True if the gate runs directly on the modeled hardware."""
    return gate.name in NATIVE_GATES


def decompose_gate(gate: Gate) -> Iterator[Gate]:
    """Yield an equivalent native-gate sequence for one gate.

    Native gates pass through unchanged.  Unknown gate names raise
    ``ValueError`` so silent mis-compilation is impossible.
    """
    name = gate.name
    if name == "rxx":
        # rxx is native, but the native MS angle gets its proper name.
        yield from _rxx(gate.params[0], gate.qubits[0], gate.qubits[1])
        return
    if is_native(gate):
        yield gate
        return
    if name in ("cx", "cnot"):
        yield from _cx(gate.qubits[0], gate.qubits[1])
    elif name == "cz":
        yield from _cz(gate.qubits[0], gate.qubits[1])
    elif name == "cy":
        control, target = gate.qubits
        # CY = (S on target) CX (Sdg on target)
        yield Gate("sdg", (target,))
        yield from _cx(control, target)
        yield Gate("s", (target,))
    elif name == "ch":
        control, target = gate.qubits
        # CH = (Ry(pi/4) on t) CZ (Ry(-pi/4) on t) in operator order,
        # i.e. Ry(-pi/4) applied first; verified numerically in tests.
        yield Gate("ry", (target,), (-math.pi / 4,))
        yield from _cz(control, target)
        yield Gate("ry", (target,), (math.pi / 4,))
    elif name in ("cp", "cu1"):
        yield from _cp(gate.params[0], gate.qubits[0], gate.qubits[1])
    elif name == "crz":
        control, target = gate.qubits
        theta = gate.params[0]
        yield Gate("rz", (target,), (theta / 2,))
        yield from _cx(control, target)
        yield Gate("rz", (target,), (-theta / 2,))
        yield from _cx(control, target)
    elif name == "crx":
        control, target = gate.qubits
        theta = gate.params[0]
        # Rx = H Rz H, so CRX(theta) = (H on t) CRZ(theta) (H on t).
        yield Gate("h", (target,))
        yield Gate("rz", (target,), (theta / 2,))
        yield from _cx(control, target)
        yield Gate("rz", (target,), (-theta / 2,))
        yield from _cx(control, target)
        yield Gate("h", (target,))
    elif name == "cry":
        control, target = gate.qubits
        theta = gate.params[0]
        yield Gate("ry", (target,), (theta / 2,))
        yield from _cx(control, target)
        yield Gate("ry", (target,), (-theta / 2,))
        yield from _cx(control, target)
    elif name == "swap":
        a, b = gate.qubits
        yield from _cx(a, b)
        yield from _cx(b, a)
        yield from _cx(a, b)
    elif name in ("rzz", "zz"):
        a, b = gate.qubits
        theta = gate.params[0]
        # exp(-i theta/2 ZZ) = (H (x) H) exp(-i theta/2 XX) (H (x) H)
        yield Gate("h", (a,))
        yield Gate("h", (b,))
        yield from _rxx(theta, a, b)
        yield Gate("h", (a,))
        yield Gate("h", (b,))
    elif name in ("ccx", "toffoli"):
        yield from _ccx(*gate.qubits)
    elif name == "ccz":
        a, b, c = gate.qubits
        yield Gate("h", (c,))
        yield from _ccx(a, b, c)
        yield Gate("h", (c,))
    elif name == "cswap":
        control, a, b = gate.qubits
        yield from _cx(b, a)
        yield from _ccx(control, a, b)
        yield from _cx(b, a)
    else:
        raise ValueError(f"no native decomposition for gate {name!r}")


def decompose_circuit(circuit: Circuit, keep_one_qubit: bool = True) -> Circuit:
    """Decompose every gate of a circuit into the native set.

    With ``keep_one_qubit=False`` the single-qubit gates are dropped from
    the output — shuttle scheduling depends only on two-qubit structure
    and this keeps compiler inputs small.
    """
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        for native in decompose_gate(gate):
            if keep_one_qubit or not native.is_one_qubit:
                out.append(native)
    return out


def count_native_two_qubit(gates: Iterable[Gate]) -> int:
    """Number of MS gates after native decomposition."""
    total = 0
    for gate in gates:
        total += sum(1 for g in decompose_gate(gate) if g.is_two_qubit)
    return total


# ----------------------------------------------------------------------
# Decomposition primitives (verified in tests/test_decompose.py)
# ----------------------------------------------------------------------
def _cx(control: int, target: int) -> Iterator[Gate]:
    """CNOT via one MS gate (Maslov, NJP 2017, eq. 8), up to global phase.

    CX(c,t) = Ry(pi/2)_c . XX(pi/4)_{c,t} . Rx(-pi/2)_c . Rx(-pi/2)_t
              . Ry(-pi/2)_c
    applied right-to-left.
    """
    yield Gate("ry", (control,), (math.pi / 2,))
    yield Gate("ms", (control, target))
    yield Gate("rx", (control,), (-math.pi / 2,))
    yield Gate("rx", (target,), (-math.pi / 2,))
    yield Gate("ry", (control,), (-math.pi / 2,))


def _cz(a: int, b: int) -> Iterator[Gate]:
    """CZ = (H on b) CX(a,b) (H on b)."""
    yield Gate("h", (b,))
    yield from _cx(a, b)
    yield Gate("h", (b,))


def _cp(theta: float, a: int, b: int) -> Iterator[Gate]:
    """Controlled-phase via two CX (hence two MS gates).

    cp(theta) = rz(theta/2)_a . rz(theta/2)_b . cx(a,b) . rz(-theta/2)_b
                . cx(a,b)  (up to global phase)
    """
    yield Gate("rz", (a,), (theta / 2,))
    yield from _cx(a, b)
    yield Gate("rz", (b,), (-theta / 2,))
    yield from _cx(a, b)
    yield Gate("rz", (b,), (theta / 2,))


def _rxx(theta: float, a: int, b: int) -> Iterator[Gate]:
    """XX(theta) as a single native two-qubit pulse.

    The native angle theta = pi/2 *is* the MS gate; other angles stay as
    a parametrized ``rxx`` (one retuned Molmer-Sorensen pulse — one
    two-qubit operation, matching the QCCDSim cost model).
    """
    if abs((theta % (2 * math.pi)) - math.pi / 2) < 1e-12:
        yield Gate("ms", (a, b))
    else:
        yield Gate("rxx", (a, b), (theta,))


def _ccx(a: int, b: int, c: int) -> Iterator[Gate]:
    """Toffoli via the standard 6-CNOT network (Nielsen & Chuang 4.3)."""
    yield Gate("h", (c,))
    yield from _cx(b, c)
    yield Gate("tdg", (c,))
    yield from _cx(a, c)
    yield Gate("t", (c,))
    yield from _cx(b, c)
    yield Gate("tdg", (c,))
    yield from _cx(a, c)
    yield Gate("t", (b,))
    yield Gate("t", (c,))
    yield Gate("h", (c,))
    yield from _cx(a, b)
    yield Gate("t", (a,))
    yield Gate("tdg", (b,))
    yield from _cx(a, b)
