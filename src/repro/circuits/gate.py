"""Gate representation for trapped-ion quantum programs.

The compiler in this package treats gates abstractly: all that matters for
shuttle scheduling is *which qubits* a gate touches.  The gate name and
parameters are preserved so circuits can be decomposed to the trapped-ion
native set and exported back to OpenQASM.

The native two-qubit gate of the modeled hardware is the Molmer-Sorensen
gate ``ms`` (an XX(pi/4) interaction), matching the paper's sample
programs (``MS q[0], q[1];``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Names of supported single-qubit gates.
ONE_QUBIT_GATES = frozenset(
    {
        "id",
        "x",
        "y",
        "z",
        "h",
        "s",
        "sdg",
        "t",
        "tdg",
        "sx",
        "sxdg",
        "rx",
        "ry",
        "rz",
        "p",
        "u1",
        "u2",
        "u3",
        "u",
        "gpi",
        "gpi2",
    }
)

#: Names of supported two-qubit gates.
TWO_QUBIT_GATES = frozenset(
    {
        "ms",
        "xx",
        "rxx",
        "rzz",
        "zz",
        "cx",
        "cnot",
        "cz",
        "cy",
        "ch",
        "cp",
        "cu1",
        "crz",
        "crx",
        "cry",
        "swap",
    }
)

#: Names of three-qubit gates that the decomposer can lower.
THREE_QUBIT_GATES = frozenset({"ccx", "toffoli", "cswap", "ccz"})

#: Gates that take no parameters.
_PARAMETER_COUNTS = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u1": 1,
    "cu1": 1,
    "cp": 1,
    "crz": 1,
    "crx": 1,
    "cry": 1,
    "rxx": 1,
    "rzz": 1,
    "zz": 1,
    "gpi": 1,
    "gpi2": 1,
    "u2": 2,
    "u3": 3,
    "u": 3,
}


class GateError(ValueError):
    """Raised for malformed gates (bad arity, duplicate qubits, ...)."""


@dataclass(frozen=True)
class Gate:
    """A single quantum gate application.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic, e.g. ``"ms"`` or ``"rz"``.
    qubits:
        Tuple of distinct qubit indices the gate acts on.
    params:
        Tuple of float parameters (rotation angles in radians).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if not self.qubits:
            raise GateError(f"gate {self.name!r} applied to no qubits")
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(
                f"gate {self.name!r} applied to duplicate qubits {self.qubits}"
            )
        if any(q < 0 for q in self.qubits):
            raise GateError(f"gate {self.name!r} has negative qubit index")
        expected = self.expected_arity(self.name)
        if expected is not None and len(self.qubits) != expected:
            raise GateError(
                f"gate {self.name!r} expects {expected} qubits, "
                f"got {len(self.qubits)}"
            )
        expected_params = _PARAMETER_COUNTS.get(self.name)
        if expected_params is not None and len(self.params) != expected_params:
            raise GateError(
                f"gate {self.name!r} expects {expected_params} parameters, "
                f"got {len(self.params)}"
            )

    @staticmethod
    def expected_arity(name: str) -> int | None:
        """Return the qubit arity of a known gate name, or None if unknown."""
        if name in ONE_QUBIT_GATES:
            return 1
        if name in TWO_QUBIT_GATES:
            return 2
        if name in THREE_QUBIT_GATES:
            return 3
        return None

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return len(self.qubits)

    @property
    def is_one_qubit(self) -> bool:
        """True for single-qubit gates."""
        return len(self.qubits) == 1

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit gates (the ones that may require shuttles)."""
        return len(self.qubits) == 2

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate applied to different qubits."""
        return Gate(self.name, tuple(qubits), self.params)

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy with qubit indices translated through ``mapping``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:
        args = ", ".join(f"q[{q}]" for q in self.qubits)
        if self.params:
            angles = ", ".join(_format_angle(p) for p in self.params)
            return f"{self.name}({angles}) {args};"
        return f"{self.name} {args};"


def _format_angle(value: float) -> str:
    """Render an angle compactly, using multiples of pi when exact."""
    if value == 0.0:
        return "0"
    ratio = value / math.pi
    for denom in (1, 2, 3, 4, 6, 8):
        scaled = ratio * denom
        if abs(scaled - round(scaled)) < 1e-12:
            num = int(round(scaled))
            if denom == 1:
                return "pi" if num == 1 else ("-pi" if num == -1 else f"{num}*pi")
            if num == 1:
                return f"pi/{denom}"
            if num == -1:
                return f"-pi/{denom}"
            return f"{num}*pi/{denom}"
    return repr(value)


def ms(a: int, b: int) -> Gate:
    """The native Molmer-Sorensen two-qubit gate, XX(pi/4)."""
    return Gate("ms", (a, b))


def cx(control: int, target: int) -> Gate:
    """Controlled-NOT gate."""
    return Gate("cx", (control, target))


def cz(a: int, b: int) -> Gate:
    """Controlled-Z gate (symmetric)."""
    return Gate("cz", (a, b))


def cp(theta: float, a: int, b: int) -> Gate:
    """Controlled-phase gate (symmetric)."""
    return Gate("cp", (a, b), (theta,))


def swap(a: int, b: int) -> Gate:
    """SWAP gate."""
    return Gate("swap", (a, b))


def h(q: int) -> Gate:
    """Hadamard gate."""
    return Gate("h", (q,))


def x(q: int) -> Gate:
    """Pauli-X gate."""
    return Gate("x", (q,))


def rx(theta: float, q: int) -> Gate:
    """X-rotation."""
    return Gate("rx", (q,), (theta,))


def ry(theta: float, q: int) -> Gate:
    """Y-rotation."""
    return Gate("ry", (q,), (theta,))


def rz(theta: float, q: int) -> Gate:
    """Z-rotation."""
    return Gate("rz", (q,), (theta,))


def rzz(theta: float, a: int, b: int) -> Gate:
    """ZZ interaction exp(-i theta/2 Z.Z), used by QAOA layers."""
    return Gate("rzz", (a, b), (theta,))
