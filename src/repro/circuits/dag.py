"""Gate dependency graph (Section II-A of the paper).

A quantum program is converted into a directed acyclic graph whose nodes
are gate indices.  Gate *g* depends on gate *p* when they share a qubit
and *p* appears earlier in the program; only the most recent predecessor
per qubit produces an edge (earlier conflicts are implied transitively).

Gates are organized into *layers*: a gate's layer is one more than the
maximum layer among its predecessors (layer 0 for gates with no
predecessor).  Gates in the same layer are mutually independent.  The
paper's Algorithm 1 uses layers to enumerate re-ordering candidates, and
the baseline gate execution order is an earliest-ready-first topological
sort of this DAG.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from .circuit import Circuit
from .gate import Gate


class DependencyDAG:
    """Layered gate dependency DAG for a circuit.

    Node identifiers are gate positions in the original circuit
    (``0 .. len(circuit)-1``).
    """

    def __init__(self, circuit: Circuit) -> None:
        self._gates: tuple[Gate, ...] = circuit.gates
        n = len(self._gates)
        self._preds: list[list[int]] = [[] for _ in range(n)]
        self._succs: list[list[int]] = [[] for _ in range(n)]
        self._layer: list[int] = [0] * n

        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(self._gates):
            depth = 0
            preds: set[int] = set()
            for qubit in gate.qubits:
                prev = last_on_qubit.get(qubit)
                if prev is not None:
                    preds.add(prev)
                    depth = max(depth, self._layer[prev] + 1)
                last_on_qubit[qubit] = index
            self._layer[index] = depth
            for pred in sorted(preds):
                self._preds[index].append(pred)
                self._succs[pred].append(index)

        grouped: list[list[int]] = []
        for index, layer in enumerate(self._layer):
            while len(grouped) <= layer:
                grouped.append([])
            grouped[layer].append(index)
        # Frozen once: layers() and layer() hand these out directly
        # (the compiler's hot path queries them per decision), so the
        # groups are tuples rather than per-call defensive list copies.
        self._layers: tuple[tuple[int, ...], ...] = tuple(
            tuple(group) for group in grouped
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, index: int) -> Gate:
        """The gate at DAG node ``index``."""
        return self._gates[index]

    def predecessors(self, index: int) -> tuple[int, ...]:
        """Direct dependency predecessors of a gate."""
        return tuple(self._preds[index])

    def successors(self, index: int) -> tuple[int, ...]:
        """Direct dependents of a gate."""
        return tuple(self._succs[index])

    def layer_of(self, index: int) -> int:
        """Layer number (0-based) of a gate, as defined in Section II-A."""
        return self._layer[index]

    @property
    def num_layers(self) -> int:
        """Number of layers (equals circuit depth)."""
        return len(self._layers)

    def layers(self) -> tuple[tuple[int, ...], ...]:
        """Gates grouped by layer, each layer in program order.

        The returned tuples are the DAG's own immutable groups (no
        per-call copy); callers can neither corrupt the DAG through
        them nor observe them change.
        """
        return self._layers

    def layer(self, number: int) -> tuple[int, ...]:
        """Gate indices in one layer (immutable; see :meth:`layers`)."""
        return self._layers[number]

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Earliest-ready-gate-first order (the baseline order of [7]).

        Kahn's algorithm with a FIFO queue seeded in program order: a
        gate enters the ready queue as soon as all predecessors have
        been emitted.  The result is the layered order the paper's
        Fig. 2c illustrates — gates of earlier layers run first, with
        program order inside each ready set.
        """
        n = len(self._gates)
        pending = [len(p) for p in self._preds]
        ready = deque(i for i in range(n) if pending[i] == 0)
        order: list[int] = []
        while ready:
            index = ready.popleft()
            order.append(index)
            for succ in self._succs[index]:
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready.append(succ)
        if len(order) != n:  # pragma: no cover - DAG by construction
            raise RuntimeError("dependency graph has a cycle")
        return order

    def is_valid_order(self, order: Sequence[int]) -> bool:
        """Check that ``order`` is a permutation respecting all edges."""
        if sorted(order) != list(range(len(self._gates))):
            return False
        position = {gate: pos for pos, gate in enumerate(order)}
        return all(
            position[pred] < position[index]
            for index in range(len(self._gates))
            for pred in self._preds[index]
        )

    def ready_after(self, executed: Iterable[int]) -> set[int]:
        """Gates whose predecessors are all in ``executed`` and that are
        not themselves executed (the dependency-safe candidate set used by
        the re-ordering optimization)."""
        done = set(executed)
        return {
            index
            for index in range(len(self._gates))
            if index not in done
            and all(pred in done for pred in self._preds[index])
        }
