"""OpenQASM 2.0 emission.

Round-trips circuits produced by the generators or the parser back to
QASM text.  Gate names already follow qelib1 conventions except for the
native ``ms``/``rxx`` gates, which are emitted as ``rxx`` applications
(declared via a small preamble macro so standard tools can re-read the
file).
"""

from __future__ import annotations

import math

from .circuit import Circuit
from .gate import Gate

_RXX_PREAMBLE = """gate rxx(theta) a, b
{
  h a; h b;
  cx a, b;
  rz(theta) b;
  cx a, b;
  h a; h b;
}
"""


def gate_to_qasm(gate: Gate, register: str = "q") -> str:
    """Render one gate as an OpenQASM statement."""
    name = gate.name
    params = gate.params
    if name == "ms":
        name = "rxx"
        params = (math.pi / 2,)
    args = ", ".join(f"{register}[{q}]" for q in gate.qubits)
    if params:
        rendered = ", ".join(_render_param(p) for p in params)
        return f"{name}({rendered}) {args};"
    return f"{name} {args};"


def _render_param(value: float) -> str:
    ratio = value / math.pi
    for denom in (1, 2, 3, 4, 6, 8, 16, 32, 64):
        scaled = ratio * denom
        if abs(scaled - round(scaled)) < 1e-12 and round(scaled) != 0:
            num = int(round(scaled))
            prefix = "-" if num < 0 else ""
            num = abs(num)
            head = "pi" if num == 1 else f"{num}*pi"
            return f"{prefix}{head}/{denom}" if denom > 1 else f"{prefix}{head}"
    return repr(value)


def circuit_to_qasm(circuit: Circuit, register: str = "q") -> str:
    """Render a circuit as a complete OpenQASM 2.0 program."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
    ]
    needs_rxx = any(g.name in ("ms", "rxx") for g in circuit)
    if needs_rxx:
        lines.append(_RXX_PREAMBLE.rstrip())
    lines.append(f"qreg {register}[{circuit.num_qubits}];")
    for gate in circuit:
        lines.append(gate_to_qasm(gate, register))
    return "\n".join(lines) + "\n"


def dump_qasm(circuit: Circuit, path: str, register: str = "q") -> None:
    """Write a circuit to a ``.qasm`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(circuit_to_qasm(circuit, register))
