"""Quantum circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gate.Gate`
applications over ``num_qubits`` qubits.  It is the input format of the
QCCD compiler: the compiler consumes the gate sequence, builds the gate
dependency DAG, and emits a machine-level schedule.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from .gate import Gate, GateError


class Circuit:
    """An ordered sequence of gates over a fixed-size qubit register.

    Parameters
    ----------
    num_qubits:
        Size of the qubit register.
    gates:
        Optional initial gate sequence.
    name:
        Optional human-readable circuit name (used in reports).
    """

    def __init__(
        self,
        num_qubits: int,
        gates: Iterable[Gate] = (),
        name: str = "circuit",
    ) -> None:
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating its qubit indices; returns self."""
        if not isinstance(gate, Gate):
            raise TypeError(f"expected Gate, got {type(gate).__name__}")
        if max(gate.qubits) >= self.num_qubits:
            raise GateError(
                f"gate {gate} uses qubit {max(gate.qubits)} but circuit has "
                f"only {self.num_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append several gates; returns self."""
        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Iterable[float] = ()) -> "Circuit":
        """Convenience constructor: ``circ.add("ms", 0, 1)``."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def compose(self, other: "Circuit") -> "Circuit":
        """Append all gates of ``other`` (must not exceed this register)."""
        if other.num_qubits > self.num_qubits:
            raise GateError(
                f"cannot compose a {other.num_qubits}-qubit circuit onto a "
                f"{self.num_qubits}-qubit circuit"
            )
        return self.extend(other.gates)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits and self._gates == other._gates
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"gates={len(self._gates)})"
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(gate.name for gate in self._gates)

    @property
    def num_one_qubit_gates(self) -> int:
        """Number of single-qubit gates."""
        return sum(1 for g in self._gates if g.is_one_qubit)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (the paper's ``2Q gates`` column)."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def two_qubit_gates(self) -> list[Gate]:
        """The two-qubit gates, in program order."""
        return [g for g in self._gates if g.is_two_qubit]

    def used_qubits(self) -> set[int]:
        """Set of qubit indices touched by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def depth(self) -> int:
        """Circuit depth (longest path in the dependency DAG)."""
        level = [0] * self.num_qubits
        for gate in self._gates:
            layer = 1 + max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = layer
        return max(level, default=0)

    def interaction_pairs(self) -> Counter:
        """Histogram of unordered qubit pairs coupled by two-qubit gates."""
        pairs: Counter = Counter()
        for gate in self._gates:
            if gate.is_two_qubit:
                a, b = gate.qubits
                pairs[(min(a, b), max(a, b))] += 1
        return pairs

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def remap(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Return a new circuit with qubits renamed through ``mapping``."""
        size = num_qubits if num_qubits is not None else self.num_qubits
        remapped = Circuit(size, name=self.name)
        for gate in self._gates:
            remapped.append(gate.remap(mapping))
        return remapped

    def without_one_qubit_gates(self) -> "Circuit":
        """Return a copy containing only multi-qubit gates.

        Shuttle scheduling is driven entirely by two-qubit gates; this
        projection is useful for compiler-focused analyses.
        """
        pruned = Circuit(self.num_qubits, name=self.name)
        for gate in self._gates:
            if not gate.is_one_qubit:
                pruned.append(gate)
        return pruned

    def copy(self, name: str | None = None) -> "Circuit":
        """Shallow copy (gates are immutable)."""
        return Circuit(
            self.num_qubits, self._gates, name=name if name is not None else self.name
        )
