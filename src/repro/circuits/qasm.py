"""OpenQASM 2.0 front end.

The paper's benchmark suite is distributed as OpenQASM (QCCDSim ships
``.qasm`` files; the QuadraticForm benchmark comes from the Qiskit circuit
library).  No quantum SDK is available in this environment, so this module
implements a self-contained OpenQASM 2.0 reader:

* lexer with comment handling,
* constant-expression evaluator (``pi``, ``+ - * / ^``, unary minus,
  parentheses, and the qelib functions ``sin cos tan exp ln sqrt``),
* recursive-descent parser covering ``OPENQASM``/``include``/``qreg``/
  ``creg``/gate applications/``gate`` macro definitions/``barrier``/
  ``measure``/``reset``,
* macro expansion of user-defined gates down to the built-in set, and
* register flattening into a single 0-based qubit index space (multiple
  ``qreg`` declarations are concatenated in declaration order).

``include "qelib1.inc"`` is recognized and satisfied by built-in gate
definitions — no file system access is needed.

Unsupported OpenQASM features (``if``, ``opaque`` applications) raise
:class:`QasmError` with a line number instead of mis-parsing.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from .circuit import Circuit
from .gate import ONE_QUBIT_GATES, THREE_QUBIT_GATES, TWO_QUBIT_GATES, Gate


class QasmError(ValueError):
    """Raised on malformed or unsupported OpenQASM input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
_SYMBOLS = ("->", "==", "(", ")", "[", "]", "{", "}", ",", ";", "+", "-",
            "*", "/", "^")


@dataclass(frozen=True)
class _Token:
    kind: str  # "id" | "int" | "real" | "string" | "sym"
    text: str
    line: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end == -1:
                raise QasmError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end == -1:
                raise QasmError("unterminated string literal", line)
            tokens.append(_Token("string", source[i + 1 : end], line))
            i = end + 1
            continue
        matched_symbol = False
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(_Token("sym", sym, line))
                i += len(sym)
                matched_symbol = True
                break
        if matched_symbol:
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    nxt = source[j + 1] if j + 1 < n else ""
                    nxt2 = source[j + 2] if j + 2 < n else ""
                    if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                        seen_exp = True
                        seen_dot = True  # exponent implies real
                        j += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            text = source[i:j]
            kind = "real" if (seen_dot or seen_exp) else "int"
            tokens.append(_Token(kind, text, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(_Token("id", source[i:j], line))
            i = j
            continue
        raise QasmError(f"unexpected character {ch!r}", line)
    return tokens


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


class _ExprParser:
    """Pratt-style parser for OpenQASM constant expressions."""

    def __init__(self, tokens: Sequence[_Token], pos: int, env: dict[str, float]):
        self._tokens = tokens
        self.pos = pos
        self._env = env

    def _peek(self) -> _Token | None:
        return self._tokens[self.pos] if self.pos < len(self._tokens) else None

    def parse(self) -> float:
        return self._additive()

    def _additive(self) -> float:
        value = self._multiplicative()
        while True:
            tok = self._peek()
            if tok is not None and tok.kind == "sym" and tok.text in ("+", "-"):
                self.pos += 1
                rhs = self._multiplicative()
                value = value + rhs if tok.text == "+" else value - rhs
            else:
                return value

    def _multiplicative(self) -> float:
        value = self._unary()
        while True:
            tok = self._peek()
            if tok is not None and tok.kind == "sym" and tok.text in ("*", "/"):
                self.pos += 1
                rhs = self._unary()
                if tok.text == "*":
                    value *= rhs
                else:
                    if rhs == 0:
                        raise QasmError("division by zero in expression", tok.line)
                    value /= rhs
            else:
                return value

    def _unary(self) -> float:
        tok = self._peek()
        if tok is None:
            raise QasmError("unexpected end of expression")
        if tok.kind == "sym" and tok.text == "-":
            self.pos += 1
            return -self._unary()
        if tok.kind == "sym" and tok.text == "+":
            self.pos += 1
            return self._unary()
        return self._power()

    def _power(self) -> float:
        base = self._atom()
        tok = self._peek()
        if tok is not None and tok.kind == "sym" and tok.text == "^":
            self.pos += 1
            exponent = self._unary()
            return base**exponent
        return base

    def _atom(self) -> float:
        tok = self._peek()
        if tok is None:
            raise QasmError("unexpected end of expression")
        if tok.kind in ("int", "real"):
            self.pos += 1
            return float(tok.text)
        if tok.kind == "id":
            name = tok.text
            if name == "pi":
                self.pos += 1
                return math.pi
            if name in _FUNCTIONS:
                self.pos += 1
                self._expect_sym("(")
                value = self._additive()
                self._expect_sym(")")
                return _FUNCTIONS[name](value)
            if name in self._env:
                self.pos += 1
                return self._env[name]
            raise QasmError(f"unknown identifier {name!r} in expression", tok.line)
        if tok.kind == "sym" and tok.text == "(":
            self.pos += 1
            value = self._additive()
            self._expect_sym(")")
            return value
        raise QasmError(f"unexpected token {tok.text!r} in expression", tok.line)

    def _expect_sym(self, text: str) -> None:
        tok = self._peek()
        if tok is None or tok.kind != "sym" or tok.text != text:
            found = tok.text if tok else "<eof>"
            line = tok.line if tok else None
            raise QasmError(f"expected {text!r}, found {found!r}", line)
        self.pos += 1


# ----------------------------------------------------------------------
# qelib1 built-ins
# ----------------------------------------------------------------------
#: Gate names handled natively by :class:`repro.circuits.gate.Gate` once
#: qelib1 is included.  ``u0`` is an identity-like delay; ``u`` aliases u3.
_BUILTIN_GATES = (
    ONE_QUBIT_GATES | TWO_QUBIT_GATES | THREE_QUBIT_GATES | {"u0"}
)


@dataclass
class _GateDef:
    """A user-defined gate macro (``gate name(params) qubits { body }``)."""

    name: str
    params: tuple[str, ...]
    qubits: tuple[str, ...]
    body: list[tuple[str, list[list[_Token]], list[str]]]
    # body entries: (gate_name, param_token_lists, qubit_arg_names)
    line: int


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class QasmParser:
    """Parses OpenQASM 2.0 source into a :class:`Circuit`."""

    def __init__(self, source: str, name: str = "qasm") -> None:
        self._tokens = _tokenize(source)
        self._pos = 0
        self._name = name
        self._registers: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
        self._num_qubits = 0
        self._cregs: dict[str, int] = {}
        self._gate_defs: dict[str, _GateDef] = {}
        self._gates: list[Gate] = []
        self._qelib_included = False

    # -- token helpers --------------------------------------------------
    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise QasmError("unexpected end of input")
        self._pos += 1
        return tok

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise QasmError(
                f"expected {text or kind!r}, found {tok.text!r}", tok.line
            )
        return tok

    def _accept_sym(self, text: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "sym" and tok.text == text:
            self._pos += 1
            return True
        return False

    # -- top level -------------------------------------------------------
    def parse(self) -> Circuit:
        """Parse the full program and return the flattened circuit."""
        self._parse_header()
        while self._peek() is not None:
            self._parse_statement()
        if self._num_qubits == 0:
            raise QasmError("program declares no qubits")
        circuit = Circuit(self._num_qubits, name=self._name)
        for gate in self._gates:
            circuit.append(gate)
        return circuit

    def _parse_header(self) -> None:
        tok = self._peek()
        if tok is not None and tok.kind == "id" and tok.text == "OPENQASM":
            self._next()
            version = self._next()
            if version.text not in ("2.0", "2"):
                raise QasmError(
                    f"unsupported OpenQASM version {version.text!r}", version.line
                )
            self._expect("sym", ";")

    def _parse_statement(self) -> None:
        tok = self._next()
        if tok.kind != "id":
            raise QasmError(f"unexpected token {tok.text!r}", tok.line)
        keyword = tok.text
        if keyword == "include":
            self._parse_include()
        elif keyword == "qreg":
            self._parse_qreg()
        elif keyword == "creg":
            self._parse_creg()
        elif keyword == "gate":
            self._parse_gate_def()
        elif keyword == "barrier":
            self._skip_to_semicolon()
        elif keyword == "measure":
            self._skip_to_semicolon()
        elif keyword == "reset":
            self._skip_to_semicolon()
        elif keyword == "opaque":
            raise QasmError("opaque gates are not supported", tok.line)
        elif keyword == "if":
            raise QasmError("classical control (if) is not supported", tok.line)
        else:
            self._parse_gate_application(keyword, tok.line)

    def _parse_include(self) -> None:
        tok = self._next()
        if tok.kind != "string":
            raise QasmError("include expects a string filename", tok.line)
        if tok.text not in ("qelib1.inc",):
            raise QasmError(
                f"only qelib1.inc includes are supported, got {tok.text!r}",
                tok.line,
            )
        self._qelib_included = True
        self._expect("sym", ";")

    def _parse_qreg(self) -> None:
        name_tok = self._expect("id")
        self._expect("sym", "[")
        size_tok = self._expect("int")
        self._expect("sym", "]")
        self._expect("sym", ";")
        if name_tok.text in self._registers:
            raise QasmError(f"duplicate qreg {name_tok.text!r}", name_tok.line)
        size = int(size_tok.text)
        if size <= 0:
            raise QasmError("qreg size must be positive", size_tok.line)
        self._registers[name_tok.text] = (self._num_qubits, size)
        self._num_qubits += size

    def _parse_creg(self) -> None:
        name_tok = self._expect("id")
        self._expect("sym", "[")
        size_tok = self._expect("int")
        self._expect("sym", "]")
        self._expect("sym", ";")
        self._cregs[name_tok.text] = int(size_tok.text)

    def _skip_to_semicolon(self) -> None:
        while True:
            tok = self._next()
            if tok.kind == "sym" and tok.text == ";":
                return

    # -- gate definitions --------------------------------------------------
    def _parse_gate_def(self) -> None:
        name_tok = self._expect("id")
        params: tuple[str, ...] = ()
        if self._accept_sym("("):
            names: list[str] = []
            if not self._accept_sym(")"):
                while True:
                    names.append(self._expect("id").text)
                    if self._accept_sym(")"):
                        break
                    self._expect("sym", ",")
            params = tuple(names)
        qubit_names: list[str] = []
        while True:
            qubit_names.append(self._expect("id").text)
            if self._accept_sym("{"):
                break
            self._expect("sym", ",")
        body: list[tuple[str, list[list[_Token]], list[str]]] = []
        while not self._accept_sym("}"):
            inner_tok = self._expect("id")
            if inner_tok.text == "barrier":
                self._skip_to_semicolon()
                continue
            inner_name = inner_tok.text
            param_exprs: list[list[_Token]] = []
            if self._accept_sym("("):
                param_exprs = self._collect_paren_args()
            args: list[str] = []
            while True:
                args.append(self._expect("id").text)
                if self._accept_sym(";"):
                    break
                self._expect("sym", ",")
            body.append((inner_name, param_exprs, args))
        self._gate_defs[name_tok.text] = _GateDef(
            name_tok.text, params, tuple(qubit_names), body, name_tok.line
        )

    def _collect_paren_args(self) -> list[list[_Token]]:
        """Collect comma-separated token runs up to the matching ')'."""
        args: list[list[_Token]] = []
        current: list[_Token] = []
        depth = 1
        while True:
            tok = self._next()
            if tok.kind == "sym":
                if tok.text == "(":
                    depth += 1
                elif tok.text == ")":
                    depth -= 1
                    if depth == 0:
                        if current or args:
                            args.append(current)
                        return args
                elif tok.text == "," and depth == 1:
                    args.append(current)
                    current = []
                    continue
            current.append(tok)

    # -- gate applications --------------------------------------------------
    def _parse_gate_application(self, name: str, line: int) -> None:
        param_exprs: list[list[_Token]] = []
        if self._accept_sym("("):
            param_exprs = self._collect_paren_args()
        operands: list[list[int]] = []
        while True:
            operands.append(self._parse_operand())
            if self._accept_sym(";"):
                break
            self._expect("sym", ",")
        params = tuple(self._eval_tokens(tokens, {}) for tokens in param_exprs)
        for qubit_tuple in _broadcast(operands, line):
            self._emit(name, params, qubit_tuple, line)

    def _parse_operand(self) -> list[int]:
        """A register reference, either ``reg`` (whole) or ``reg[i]``."""
        name_tok = self._expect("id")
        if name_tok.text not in self._registers:
            raise QasmError(f"unknown qreg {name_tok.text!r}", name_tok.line)
        offset, size = self._registers[name_tok.text]
        if self._accept_sym("["):
            index_tok = self._expect("int")
            self._expect("sym", "]")
            index = int(index_tok.text)
            if index >= size:
                raise QasmError(
                    f"index {index} out of range for qreg "
                    f"{name_tok.text!r}[{size}]",
                    index_tok.line,
                )
            return [offset + index]
        return [offset + k for k in range(size)]

    def _eval_tokens(self, tokens: list[_Token], env: dict[str, float]) -> float:
        parser = _ExprParser(tokens, 0, env)
        value = parser.parse()
        if parser.pos != len(tokens):
            stray = tokens[parser.pos]
            raise QasmError(f"trailing tokens in expression", stray.line)
        return value

    def _emit(
        self,
        name: str,
        params: tuple[float, ...],
        qubits: tuple[int, ...],
        line: int,
    ) -> None:
        if name in self._gate_defs:
            self._expand_macro(self._gate_defs[name], params, qubits, line)
            return
        if name in _BUILTIN_GATES:
            if name == "u0":
                return  # timing no-op
            if name == "id":
                return  # identity: irrelevant for compilation
            try:
                self._gates.append(Gate(name, qubits, params))
            except ValueError as exc:
                raise QasmError(str(exc), line) from exc
            return
        raise QasmError(f"unknown gate {name!r}", line)

    def _expand_macro(
        self,
        definition: _GateDef,
        params: tuple[float, ...],
        qubits: tuple[int, ...],
        line: int,
        depth: int = 0,
    ) -> None:
        if depth > 64:
            raise QasmError(
                f"gate {definition.name!r} expands recursively", definition.line
            )
        if len(params) != len(definition.params):
            raise QasmError(
                f"gate {definition.name!r} expects {len(definition.params)} "
                f"parameters, got {len(params)}",
                line,
            )
        if len(qubits) != len(definition.qubits):
            raise QasmError(
                f"gate {definition.name!r} expects {len(definition.qubits)} "
                f"qubits, got {len(qubits)}",
                line,
            )
        env = dict(zip(definition.params, params))
        binding = dict(zip(definition.qubits, qubits))
        for inner_name, param_exprs, args in definition.body:
            inner_params = tuple(
                self._eval_tokens(tokens, env) for tokens in param_exprs
            )
            try:
                inner_qubits = tuple(binding[a] for a in args)
            except KeyError as exc:
                raise QasmError(
                    f"gate {definition.name!r} body references unknown qubit "
                    f"{exc.args[0]!r}",
                    definition.line,
                ) from exc
            if inner_name in self._gate_defs:
                self._expand_macro(
                    self._gate_defs[inner_name],
                    inner_params,
                    inner_qubits,
                    line,
                    depth + 1,
                )
            else:
                self._emit(inner_name, inner_params, inner_qubits, line)


def _broadcast(
    operands: list[list[int]], line: int
) -> Iterator[tuple[int, ...]]:
    """OpenQASM register broadcasting: whole-register operands fan out."""
    sizes = {len(op) for op in operands if len(op) > 1}
    if not sizes:
        yield tuple(op[0] for op in operands)
        return
    if len(sizes) > 1:
        raise QasmError("mismatched register sizes in gate application", line)
    width = sizes.pop()
    for k in range(width):
        yield tuple(op[k] if len(op) > 1 else op[0] for op in operands)


def parse_qasm(source: str, name: str = "qasm") -> Circuit:
    """Parse OpenQASM 2.0 source text into a :class:`Circuit`."""
    return QasmParser(source, name=name).parse()


def load_qasm(path: str) -> Circuit:
    """Parse an OpenQASM 2.0 file into a :class:`Circuit`."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    stem = path.rsplit("/", 1)[-1]
    if stem.endswith(".qasm"):
        stem = stem[: -len(".qasm")]
    return parse_qasm(source, name=stem)
