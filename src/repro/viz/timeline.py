"""Textual schedule inspection: shuttle traces and op summaries."""

from __future__ import annotations

from ..sim.ops import GateOp, MergeOp, MoveOp, SplitOp
from ..sim.schedule import Schedule


def shuttle_trace(schedule: Schedule, limit: int | None = None) -> str:
    """One line per shuttle-related op, e.g. ``move ion 2: T0 -> T1``."""
    lines = []
    for op in schedule:
        if isinstance(op, SplitOp):
            lines.append(f"split ion {op.ion} from T{op.trap} [{op.reason.value}]")
        elif isinstance(op, MoveOp):
            lines.append(
                f"move  ion {op.ion}: T{op.src} -> T{op.dst} [{op.reason.value}]"
            )
        elif isinstance(op, MergeOp):
            lines.append(f"merge ion {op.ion} into T{op.trap} [{op.reason.value}]")
        if limit is not None and len(lines) >= limit:
            lines.append("...")
            break
    return "\n".join(lines) if lines else "(no shuttles)"


def schedule_summary(schedule: Schedule) -> str:
    """Aggregate op counts and the shuttle/gate ratio."""
    kinds = schedule.count_kinds()
    ratio = schedule.shuttle_to_gate_ratio
    return (
        f"gates={kinds.get('gate', 0)} "
        f"(2q={schedule.num_two_qubit_gates}) "
        f"splits={kinds.get('split', 0)} "
        f"moves={kinds.get('move', 0)} "
        f"merges={kinds.get('merge', 0)} "
        f"shuttle/gate={ratio:.3f}"
    )


def gate_trap_histogram(schedule: Schedule) -> dict[int, int]:
    """How many gates ran in each trap (load-balance diagnostics)."""
    histogram: dict[int, int] = {}
    for op in schedule:
        if isinstance(op, GateOp):
            histogram[op.trap] = histogram.get(op.trap, 0) + 1
    return dict(sorted(histogram.items()))
