"""Textual schedule inspection: shuttle traces, op summaries and
before/after optimization diffs."""

from __future__ import annotations

from difflib import SequenceMatcher

from ..sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.schedule import Schedule


def shuttle_trace(schedule: Schedule, limit: int | None = None) -> str:
    """One line per shuttle-related op, e.g. ``move ion 2: T0 -> T1``."""
    lines = []
    for op in schedule:
        if isinstance(op, SplitOp):
            lines.append(f"split ion {op.ion} from T{op.trap} [{op.reason.value}]")
        elif isinstance(op, MoveOp):
            lines.append(
                f"move  ion {op.ion}: T{op.src} -> T{op.dst} [{op.reason.value}]"
            )
        elif isinstance(op, MergeOp):
            lines.append(f"merge ion {op.ion} into T{op.trap} [{op.reason.value}]")
        if limit is not None and len(lines) >= limit:
            lines.append("...")
            break
    return "\n".join(lines) if lines else "(no shuttles)"


def schedule_summary(schedule: Schedule) -> str:
    """Aggregate op counts and the shuttle/gate ratio."""
    kinds = schedule.count_kinds()
    ratio = schedule.shuttle_to_gate_ratio
    return (
        f"gates={kinds.get('gate', 0)} "
        f"(2q={schedule.num_two_qubit_gates}) "
        f"splits={kinds.get('split', 0)} "
        f"moves={kinds.get('move', 0)} "
        f"merges={kinds.get('merge', 0)} "
        f"shuttle/gate={ratio:.3f}"
    )


def _op_line(op) -> str:
    """One human-readable line per machine op (diff rendering)."""
    if isinstance(op, GateOp):
        return f"gate  {op.gate} in T{op.trap}"
    if isinstance(op, SplitOp):
        return f"split ion {op.ion} from T{op.trap} [{op.reason.value}]"
    if isinstance(op, MoveOp):
        return (
            f"move  ion {op.ion}: T{op.src} -> T{op.dst} "
            f"[{op.reason.value}]"
        )
    if isinstance(op, MergeOp):
        return f"merge ion {op.ion} into T{op.trap} [{op.reason.value}]"
    if isinstance(op, SwapOp):
        return f"swap  ions {op.ion_a}<->{op.ion_b} in T{op.trap}"
    return repr(op)  # pragma: no cover - exhaustive over MachineOp


def timeline_diff(
    before: Schedule,
    after: Schedule,
    limit: int | None = None,
    context: int = 1,
) -> str:
    """Render a before/after timeline diff of an optimized schedule.

    Ops deleted by the passes are *ghosted* with a ``~`` prefix, ops the
    passes introduced (e.g. a shortened re-route) carry ``+``, and
    unchanged ops keep a plain margin.  Long unchanged stretches are
    folded to ``context`` ops on each side.  ``limit`` caps the total
    line count (a trailing ``...`` marks truncation).
    """
    a_ops, b_ops = list(before.ops), list(after.ops)
    matcher = SequenceMatcher(None, a_ops, b_ops, autojunk=False)
    lines: list[str] = []
    for tag, a_lo, a_hi, b_lo, b_hi in matcher.get_opcodes():
        if tag == "equal":
            block = a_ops[a_lo:a_hi]
            if len(block) > 2 * context + 1:
                lines.extend(f"  {_op_line(op)}" for op in block[:context])
                lines.append(
                    f"  ... {len(block) - 2 * context} unchanged ops ..."
                )
                lines.extend(
                    f"  {_op_line(op)}" for op in block[-context:]
                )
            else:
                lines.extend(f"  {_op_line(op)}" for op in block)
        else:  # replace / delete / insert
            lines.extend(f"~ {_op_line(op)}" for op in a_ops[a_lo:a_hi])
            lines.extend(f"+ {_op_line(op)}" for op in b_ops[b_lo:b_hi])
        if limit is not None and len(lines) >= limit:
            return "\n".join(lines[:limit] + ["..."])
    if not lines:
        return "(both schedules empty)"
    return "\n".join(lines)


def gate_trap_histogram(schedule: Schedule) -> dict[int, int]:
    """How many gates ran in each trap (load-balance diagnostics)."""
    histogram: dict[int, int] = {}
    for op in schedule:
        if isinstance(op, GateOp):
            histogram[op.trap] = histogram.get(op.trap, 0) + 1
    return dict(sorted(histogram.items()))
