"""Text-based visualisation helpers (no plotting dependencies)."""

from .timeline import (
    gate_trap_histogram,
    schedule_summary,
    shuttle_trace,
    timeline_diff,
)
from .trapview import render_chains, render_occupancy_bar, render_topology

__all__ = [
    "gate_trap_histogram",
    "render_chains",
    "render_occupancy_bar",
    "render_topology",
    "schedule_summary",
    "shuttle_trace",
    "timeline_diff",
]
