"""ASCII rendering of trap occupancy (the paper's Fig. 1/Fig. 4 style)."""

from __future__ import annotations

from ..arch.machine import QCCDMachine


def render_chains(
    machine: QCCDMachine,
    chains: dict[int, list[int]],
    label: str = "",
) -> str:
    """Draw the machine's traps with their current ion chains.

    Example output::

        T0 (EC=2): [0 1 2]
        T1 (EC=1): [3 4 5]
    """
    lines = []
    if label:
        lines.append(label)
    for trap_id in range(machine.num_traps):
        spec = machine.trap(trap_id)
        chain = chains.get(trap_id, [])
        excess = spec.capacity - len(chain)
        ions = " ".join(str(ion) for ion in chain)
        lines.append(f"T{trap_id} (EC={excess}): [{ions}]")
    return "\n".join(lines)


def render_topology(machine: QCCDMachine) -> str:
    """Draw the trap interconnect as adjacency lines.

    Linear topologies render as ``T0 -- T1 -- T2 ...``; general graphs
    fall back to an edge list.
    """
    topology = machine.topology
    linear = all(
        set(topology.neighbors(t))
        <= {t - 1, t + 1}
        for t in range(topology.num_traps)
    )
    if linear:
        return " -- ".join(f"T{t}" for t in range(topology.num_traps))
    lines = [f"{topology.name}:"]
    for a, b in topology.edges:
        lines.append(f"  T{a} -- T{b}")
    return "\n".join(lines)


def render_occupancy_bar(
    machine: QCCDMachine, chains: dict[int, list[int]]
) -> str:
    """Compact per-trap occupancy bars (# = ion, . = free slot)."""
    lines = []
    for trap_id in range(machine.num_traps):
        spec = machine.trap(trap_id)
        used = len(chains.get(trap_id, []))
        bar = "#" * used + "." * (spec.capacity - used)
        lines.append(f"T{trap_id} |{bar}| {used}/{spec.capacity}")
    return "\n".join(lines)
