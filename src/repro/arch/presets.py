"""Machine presets matching the paper and QCCDSim.

The paper evaluates on the "L6" configuration of Murali et al. [7]:
6 traps in a line, total capacity 17 per trap, communication capacity 2
per trap (Section IV-A, "Hardware model").
"""

from __future__ import annotations

from .machine import QCCDMachine, uniform_machine
from .topology import grid_topology, linear_topology, ring_topology

#: Paper defaults (Section IV-A).
L6_TRAPS = 6
L6_CAPACITY = 17
L6_COMM_CAPACITY = 2


def l6_machine(
    capacity: int = L6_CAPACITY, comm_capacity: int = L6_COMM_CAPACITY
) -> QCCDMachine:
    """The paper's evaluation machine: 6 linear traps, 17/2 capacity."""
    return uniform_machine(
        linear_topology(L6_TRAPS), capacity, comm_capacity, name="L6"
    )


def linear_machine(
    num_traps: int,
    capacity: int = L6_CAPACITY,
    comm_capacity: int = L6_COMM_CAPACITY,
) -> QCCDMachine:
    """A linear machine of arbitrary length (QCCDSim's L2/L3/L6 family)."""
    return uniform_machine(
        linear_topology(num_traps), capacity, comm_capacity
    )


def ring_machine(
    num_traps: int,
    capacity: int = L6_CAPACITY,
    comm_capacity: int = L6_COMM_CAPACITY,
) -> QCCDMachine:
    """A ring machine (topology-sweep extension)."""
    return uniform_machine(ring_topology(num_traps), capacity, comm_capacity)


def grid_machine(
    rows: int,
    cols: int,
    capacity: int = L6_CAPACITY,
    comm_capacity: int = L6_COMM_CAPACITY,
) -> QCCDMachine:
    """A grid machine (QCCDSim's G2x3-style configuration)."""
    return uniform_machine(grid_topology(rows, cols), capacity, comm_capacity)


def machine_from_spec(spec: str) -> QCCDMachine:
    """Parse one machine spec string into a preset machine.

    Accepted forms: ``l6``, ``linearN``, ``ringN``, ``gridRxC`` — the
    vocabulary shared by the CLI and :mod:`repro.loadgen` scenarios.
    Raises :class:`ValueError` for anything else.
    """
    try:
        if spec == "l6":
            return l6_machine()
        if spec.startswith("linear"):
            return linear_machine(int(spec[len("linear") :]))
        if spec.startswith("ring"):
            return ring_machine(int(spec[len("ring") :]))
        if spec.startswith("grid"):
            rows, cols = spec[len("grid") :].split("x")
            return grid_machine(int(rows), int(cols))
    except ValueError:
        pass
    raise ValueError(f"unknown machine {spec!r}")
