"""Multi-trap trapped-ion (QCCD) machine model."""

from .machine import QCCDMachine, heterogeneous_machine, uniform_machine
from .presets import (
    L6_CAPACITY,
    L6_COMM_CAPACITY,
    L6_TRAPS,
    grid_machine,
    l6_machine,
    linear_machine,
    ring_machine,
)
from .topology import (
    TopologyError,
    TrapTopology,
    grid_topology,
    linear_topology,
    ring_topology,
)
from .trap import TrapError, TrapSpec, TrapState

__all__ = [
    "L6_CAPACITY",
    "L6_COMM_CAPACITY",
    "L6_TRAPS",
    "QCCDMachine",
    "TopologyError",
    "TrapError",
    "TrapSpec",
    "TrapState",
    "TrapTopology",
    "grid_machine",
    "grid_topology",
    "heterogeneous_machine",
    "l6_machine",
    "linear_machine",
    "linear_topology",
    "ring_machine",
    "ring_topology",
    "uniform_machine",
]
