"""Trap interconnect topology.

Traps are vertices; shuttle paths are edges.  The paper evaluates the
"L6" topology — 6 traps in a line (Fig. 7) — but QCCDSim also models
other shapes, so linear, ring, grid, and arbitrary topologies are
supported.  Shortest paths are precomputed with BFS (edges are unit
cost: one hop = one shuttle).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence


class TopologyError(ValueError):
    """Raised on malformed topologies or unreachable routes."""


class TrapTopology:
    """Undirected graph of traps connected by shuttle paths.

    Parameters
    ----------
    num_traps:
        Number of traps (vertices named ``0 .. num_traps-1``).
    edges:
        Iterable of undirected trap-id pairs.
    name:
        Topology label used in reports (e.g. ``"L6"``).
    """

    def __init__(
        self,
        num_traps: int,
        edges: Iterable[tuple[int, int]],
        name: str = "custom",
    ) -> None:
        if num_traps <= 0:
            raise TopologyError("topology needs at least one trap")
        self.num_traps = int(num_traps)
        self.name = name
        self._adjacency: list[list[int]] = [[] for _ in range(num_traps)]
        self._edges: set[tuple[int, int]] = set()
        for a, b in edges:
            self.add_edge(a, b)
        self._dist: list[list[int]] | None = None
        self._next_hop: list[list[int]] | None = None

    def add_edge(self, a: int, b: int) -> None:
        """Add an undirected shuttle path between traps ``a`` and ``b``."""
        if not (0 <= a < self.num_traps and 0 <= b < self.num_traps):
            raise TopologyError(f"edge ({a}, {b}) references unknown trap")
        if a == b:
            raise TopologyError(f"self-loop on trap {a}")
        key = (min(a, b), max(a, b))
        if key in self._edges:
            return
        self._edges.add(key)
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        self._dist = None
        self._next_hop = None

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of undirected edges."""
        return sorted(self._edges)

    def neighbors(self, trap: int) -> list[int]:
        """Traps adjacent to ``trap``, sorted by id."""
        return sorted(self._adjacency[trap])

    def _ensure_paths(self) -> None:
        if self._dist is not None:
            return
        n = self.num_traps
        INF = n + 1
        dist = [[INF] * n for _ in range(n)]
        next_hop = [[-1] * n for _ in range(n)]
        for src in range(n):
            dist[src][src] = 0
            next_hop[src][src] = src
            queue = deque([src])
            while queue:
                u = queue.popleft()
                for v in sorted(self._adjacency[u]):
                    if dist[src][v] > dist[src][u] + 1:
                        dist[src][v] = dist[src][u] + 1
                        # first hop out of src on the path to v
                        next_hop[src][v] = v if u == src else next_hop[src][u]
                        queue.append(v)
        self._dist = dist
        self._next_hop = next_hop

    def distance(self, a: int, b: int) -> int:
        """Hop count of the shortest shuttle route between two traps."""
        self._ensure_paths()
        assert self._dist is not None
        d = self._dist[a][b]
        if d > self.num_traps:
            raise TopologyError(f"traps {a} and {b} are disconnected")
        return d

    def shortest_path(self, a: int, b: int) -> list[int]:
        """Trap sequence from ``a`` to ``b`` inclusive (BFS, deterministic)."""
        self._ensure_paths()
        assert self._next_hop is not None
        if self.distance(a, b) > self.num_traps:  # pragma: no cover
            raise TopologyError(f"traps {a} and {b} are disconnected")
        path = [a]
        current = a
        while current != b:
            current = self._next_hop[current][b]
            if current == -1:
                raise TopologyError(f"traps {a} and {b} are disconnected")
            path.append(current)
        return path

    def is_connected(self) -> bool:
        """True when every trap can reach every other trap."""
        try:
            return all(
                self.distance(0, t) <= self.num_traps
                for t in range(self.num_traps)
            )
        except TopologyError:
            return False

    def __repr__(self) -> str:
        return (
            f"TrapTopology(name={self.name!r}, traps={self.num_traps}, "
            f"edges={len(self._edges)})"
        )


def linear_topology(num_traps: int, name: str | None = None) -> TrapTopology:
    """A line of traps: ``0 - 1 - ... - (n-1)`` (the paper's ``L6``)."""
    label = name if name is not None else f"L{num_traps}"
    return TrapTopology(
        num_traps, [(i, i + 1) for i in range(num_traps - 1)], name=label
    )


def ring_topology(num_traps: int, name: str | None = None) -> TrapTopology:
    """A cycle of traps (QCCDSim's ring configuration)."""
    if num_traps < 3:
        raise TopologyError("ring topology needs at least 3 traps")
    label = name if name is not None else f"R{num_traps}"
    edges = [(i, (i + 1) % num_traps) for i in range(num_traps)]
    return TrapTopology(num_traps, edges, name=label)


def grid_topology(rows: int, cols: int, name: str | None = None) -> TrapTopology:
    """A rows x cols mesh of traps (QCCDSim's grid configuration)."""
    if rows <= 0 or cols <= 0:
        raise TopologyError("grid dimensions must be positive")
    label = name if name is not None else f"G{rows}x{cols}"
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return TrapTopology(rows * cols, edges, name=label)
