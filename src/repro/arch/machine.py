"""QCCD machine description: topology + per-trap capacities.

A :class:`QCCDMachine` is the static hardware model handed to the
compiler and the simulator.  The paper's evaluation machine is
:func:`repro.arch.presets.l6_machine`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .topology import TrapTopology
from .trap import TrapError, TrapSpec


@dataclass(frozen=True)
class QCCDMachine:
    """Static multi-trap machine model.

    Parameters
    ----------
    topology:
        Trap interconnect graph.
    traps:
        One :class:`TrapSpec` per trap, indexed by trap id.
    name:
        Label used in reports.
    """

    topology: TrapTopology
    traps: tuple[TrapSpec, ...]
    name: str = "qccd"

    def __post_init__(self) -> None:
        if len(self.traps) != self.topology.num_traps:
            raise TrapError(
                f"{len(self.traps)} trap specs for a "
                f"{self.topology.num_traps}-trap topology"
            )
        for index, spec in enumerate(self.traps):
            if spec.trap_id != index:
                raise TrapError(
                    f"trap spec at position {index} has id {spec.trap_id}"
                )
        if not self.topology.is_connected():
            raise TrapError("machine topology must be connected")

    @property
    def num_traps(self) -> int:
        """Number of traps."""
        return self.topology.num_traps

    @property
    def total_capacity(self) -> int:
        """Sum of total trap capacities."""
        return sum(spec.capacity for spec in self.traps)

    @property
    def load_capacity(self) -> int:
        """Maximum qubits an initial mapping may place
        (total capacity minus reserved communication capacity)."""
        return sum(spec.load_capacity for spec in self.traps)

    def trap(self, trap_id: int) -> TrapSpec:
        """The spec of one trap."""
        return self.traps[trap_id]

    def check_fits(self, num_qubits: int) -> None:
        """Raise if a circuit of ``num_qubits`` cannot be initially mapped."""
        if num_qubits > self.load_capacity:
            raise TrapError(
                f"{num_qubits} qubits exceed machine load capacity "
                f"{self.load_capacity} ({self.name})"
            )

    def __repr__(self) -> str:
        return (
            f"QCCDMachine(name={self.name!r}, traps={self.num_traps}, "
            f"capacity={self.total_capacity}, load={self.load_capacity})"
        )


def uniform_machine(
    topology: TrapTopology,
    capacity: int,
    comm_capacity: int,
    name: str | None = None,
) -> QCCDMachine:
    """A machine with identical traps everywhere (the common case)."""
    specs = tuple(
        TrapSpec(trap_id=i, capacity=capacity, comm_capacity=comm_capacity)
        for i in range(topology.num_traps)
    )
    label = name if name is not None else (
        f"{topology.name}-cap{capacity}-comm{comm_capacity}"
    )
    return QCCDMachine(topology=topology, traps=specs, name=label)


def heterogeneous_machine(
    topology: TrapTopology,
    capacities: Sequence[int],
    comm_capacities: Sequence[int],
    name: str = "qccd-hetero",
) -> QCCDMachine:
    """A machine whose traps differ in size (extension beyond the paper)."""
    if len(capacities) != topology.num_traps:
        raise TrapError("one capacity per trap required")
    if len(comm_capacities) != topology.num_traps:
        raise TrapError("one comm capacity per trap required")
    specs = tuple(
        TrapSpec(trap_id=i, capacity=capacities[i], comm_capacity=comm_capacities[i])
        for i in range(topology.num_traps)
    )
    return QCCDMachine(topology=topology, traps=specs, name=name)
