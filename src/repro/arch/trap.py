"""Trap model (Section II-B1 of the paper).

A trap confines a chain of ions.  Two capacities govern scheduling:

* ``capacity`` — *total trap capacity*: the hard limit on ions present.
* ``comm_capacity`` — *communication capacity*: slots deliberately left
  empty at initial allocation so shuttled ions from other traps have room
  to land.  Initial mapping loads at most ``capacity - comm_capacity``
  ions per trap; during execution occupancy may grow up to ``capacity``.

*Excess capacity* (EC) = ``capacity - occupancy`` is the quantity both
shuttle-direction policies and the re-balancing logic reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TrapError(ValueError):
    """Raised on invalid trap configuration or chain operations."""


@dataclass(frozen=True)
class TrapSpec:
    """Static description of one trap.

    Parameters
    ----------
    trap_id:
        Index of the trap in the machine (0-based).
    capacity:
        Total trap capacity (paper default for L6: 17).
    comm_capacity:
        Communication capacity reserved at initial allocation
        (paper default for L6: 2).
    """

    trap_id: int
    capacity: int
    comm_capacity: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TrapError(f"trap {self.trap_id}: capacity must be positive")
        if not 0 <= self.comm_capacity < self.capacity:
            raise TrapError(
                f"trap {self.trap_id}: comm_capacity must be in "
                f"[0, capacity), got {self.comm_capacity}"
            )

    @property
    def load_capacity(self) -> int:
        """Ions the initial mapping may place here (capacity - comm)."""
        return self.capacity - self.comm_capacity


@dataclass
class TrapState:
    """Mutable runtime state of one trap: its ion chain and motional mode.

    ``chain`` preserves physical ion order; new ions merge at the end
    closest to their entry edge in the full machine-state model, but chain
    order is tracked here as a plain list (append = merge).

    ``nbar`` is the chain's average motional-mode occupation (quanta);
    it is the `n̄` in the paper's fidelity model ``F = 1 - Γτ - A(2n̄+1)``.
    """

    spec: TrapSpec
    chain: list[int] = field(default_factory=list)
    nbar: float = 0.0
    clock: float = 0.0  # local time in seconds; traps run in parallel

    @property
    def trap_id(self) -> int:
        """Index of this trap."""
        return self.spec.trap_id

    @property
    def occupancy(self) -> int:
        """Number of ions currently in the trap."""
        return len(self.chain)

    @property
    def excess_capacity(self) -> int:
        """EC = total capacity - occupancy (Section II-B1)."""
        return self.spec.capacity - len(self.chain)

    @property
    def is_full(self) -> bool:
        """True when no further ion can merge into this trap."""
        return len(self.chain) >= self.spec.capacity

    def add_ion(self, ion: int, position: int | None = None) -> None:
        """Merge an ion into the chain (at ``position``, default end)."""
        if self.is_full:
            raise TrapError(
                f"trap {self.trap_id} is full "
                f"({self.occupancy}/{self.spec.capacity})"
            )
        if ion in self.chain:
            raise TrapError(f"ion {ion} already in trap {self.trap_id}")
        if position is None:
            self.chain.append(ion)
        else:
            self.chain.insert(position, ion)

    def remove_ion(self, ion: int) -> None:
        """Split an ion out of the chain."""
        try:
            self.chain.remove(ion)
        except ValueError as exc:
            raise TrapError(
                f"ion {ion} not in trap {self.trap_id}"
            ) from exc

    def copy(self) -> "TrapState":
        """Deep copy (chain list duplicated)."""
        return TrapState(self.spec, list(self.chain), self.nbar, self.clock)
