"""repro.loadgen — scenario-driven traffic generation and soak testing.

The load harness turns the batch engine into a measurable service: a
:class:`~repro.loadgen.scenario.Scenario` declares *what* traffic looks
like (a weighted workload mix over paper-suite benchmarks and seeded
random circuits, crossed with machine presets and compiler configs),
*how* it arrives (``closed`` — N consumers kept saturated — or ``open``
— arrivals at a fixed rate regardless of backlog), for *how long*
(a job count or a duration), and the cache regime (``cold`` / ``warm``
/ ``disabled``).  :class:`~repro.loadgen.runner.LoadRunner` executes it
on :meth:`repro.batch.runner.BatchRunner.run_timed` under a live
:mod:`repro.obs` observation while a sampling thread tracks RSS, and
emits a :class:`~repro.loadgen.report.LoadReport`: throughput windows,
p50/p90/p99 latency off the mergeable quantile buckets, cache hit-rate
trend, memory growth, and — in soak mode — a pass/fail verdict from
:mod:`repro.loadgen.soak`'s trend detectors.

Everything is deterministic given the scenario seed: two runs of the
same seeded scenario draw identical job lists (fingerprints included);
only the wall-clock measurements differ.

CLI: ``repro load <scenario>`` (see ``repro load --help`` and the
bundled presets in :data:`~repro.loadgen.scenario.PRESETS`).
"""

from .live import LiveRunner
from .report import LoadReport, render_load_report
from .runner import LoadRunner
from .sampling import Sampler, rss_kb
from .scenario import PRESETS, Scenario, WorkloadItem, load_scenario
from .soak import SoakThresholds, Trip, evaluate_soak, linear_slope

__all__ = [
    "PRESETS",
    "LiveRunner",
    "LoadReport",
    "LoadRunner",
    "Sampler",
    "Scenario",
    "SoakThresholds",
    "Trip",
    "WorkloadItem",
    "evaluate_soak",
    "linear_slope",
    "load_scenario",
    "render_load_report",
    "rss_kb",
]
