"""Scenario execution: traffic generation, sampling, report assembly.

:class:`LoadRunner` is the harness around one scenario run:

1. resolve overrides (consumers / seed / volume) into an effective
   scenario and set up the cache regime (``cold`` — a fresh directory,
   ``warm`` — the same plus an unmeasured prewarm pass, ``disabled`` —
   no cache, every request compiles);
2. execute the traffic through
   :meth:`repro.batch.runner.BatchRunner.run_timed` under a live
   :mod:`repro.obs` observation — count-bounded runs in one call,
   duration-bounded closed loops in chunks drawn from the scenario's
   single deterministic job stream until the deadline;
3. while jobs run, a :class:`~repro.loadgen.sampling.Sampler` thread
   records RSS and completion progress;
4. fold the per-job timelines into windows, read latency percentiles
   off the registry's merged quantile buckets, run the soak detectors,
   and return a :class:`~repro.loadgen.report.LoadReport`.

Latency semantics per arrival mode: closed loops report *service*
seconds (the executing process' wall time per job — consumers never
wait to submit), open loops report *sojourn* (scheduled arrival to
completion, queueing included).  Cache hits in either mode report the
parent-side lookup cost.
"""

from __future__ import annotations

import logging
import shutil
import tempfile
import threading
from dataclasses import dataclass, replace
from time import perf_counter

from .. import obs
from ..batch.runner import BatchRunner, TimedResult
from ..resilience.faults import FaultPlan
from ..resilience.policy import RetryPolicy
from .live import LiveRunner
from .report import LoadReport
from .sampling import Sampler
from .scenario import Scenario
from .soak import SoakThresholds, evaluate_soak, linear_slope

logger = logging.getLogger(__name__)

#: Jobs drawn per wave of a duration-bounded closed loop: large enough
#: to keep pool churn negligible, small enough to respect the deadline.
CHUNK_FACTOR = 4


@dataclass
class _Record:
    """One completed request on the run's global timeline."""

    index: int
    label: str
    arrival: float
    finished: float
    ok: bool
    cache_hit: bool
    latency: float
    outcome: str = "ok"
    #: False for server refusals (shed / rate-limited / draining) and
    #: interrupted never-dispatched jobs — excluded from the latency
    #: percentiles, which cover *admitted* requests only.
    admitted: bool = True


class LoadRunner:
    """Executes one :class:`Scenario` and builds its :class:`LoadReport`.

    Overrides (all optional) replace the scenario's own values:
    ``consumers``, ``seed``, ``jobs`` (a job count; clears a preset
    duration), ``duration`` (seconds; clears a preset count),
    ``chaos`` (a :class:`FaultPlan`), ``max_attempts`` and
    ``job_timeout`` (resilience knobs).  ``thresholds`` tune the soak
    detectors.

    ``target`` switches to **live mode**: the same scenario draws are
    POSTed to a ``repro serve`` endpoint (see
    :mod:`repro.loadgen.live`) instead of executed in-process —
    ``identity`` names the rate-limit key, chaos/cache knobs are the
    server's business.  ``interrupt`` (a :class:`threading.Event`, set
    by the CLI's SIGINT handler) stops submission, drains in-flight
    work, and marks the report ``interrupted``.
    """

    def __init__(
        self,
        scenario: Scenario,
        consumers: int | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        duration: float | None = None,
        thresholds: SoakThresholds | None = None,
        chaos: FaultPlan | None = None,
        max_attempts: int | None = None,
        job_timeout: float | None = None,
        target: str | None = None,
        identity: str | None = None,
        interrupt: threading.Event | None = None,
    ) -> None:
        overrides: dict = {}
        if consumers is not None:
            overrides["consumers"] = consumers
        if seed is not None:
            overrides["seed"] = seed
        if jobs is not None:
            overrides["jobs"] = jobs
            overrides["duration"] = None
        elif duration is not None:
            overrides["duration"] = duration
            overrides["jobs"] = None
        if chaos is not None:
            overrides["chaos"] = chaos
        if max_attempts is not None:
            overrides["max_attempts"] = max_attempts
        if job_timeout is not None:
            overrides["job_timeout"] = job_timeout
        self.scenario = (
            replace(scenario, **overrides) if overrides else scenario
        )
        self.thresholds = thresholds or SoakThresholds()
        self.target = target
        self.identity = identity
        self.interrupt = interrupt
        #: True once a run was cut short by the interrupt event.
        self.interrupted = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> LoadReport:
        """Execute the scenario; returns the assembled report."""
        scenario = self.scenario
        if self.target is not None:
            observation = obs.active()
            if observation is not None:
                return self._run_live(observation)
            with obs.observe() as observation:
                return self._run_live(observation)
        cache_dir: str | None = None
        try:
            if scenario.cache != "disabled":
                cache_dir = tempfile.mkdtemp(prefix="repro-load-")
            observation = obs.active()
            if observation is not None:
                return self._run_observed(observation, cache_dir)
            with obs.observe() as observation:
                return self._run_observed(observation, cache_dir)
        finally:
            if cache_dir is not None:
                shutil.rmtree(cache_dir, ignore_errors=True)

    def _run_live(self, observation) -> LoadReport:
        """Live mode: replay the scenario against a serve endpoint and
        fold the outcomes onto the same report shape."""
        live = LiveRunner(
            self.scenario,
            self.target,
            identity=self.identity,
            interrupt=self.interrupt,
        )
        done = {"count": 0}
        sampler = Sampler(
            self.scenario.sample_interval, progress=lambda: done["count"]
        )
        sampler.start()
        try:
            outcomes, wall, submitted = live.run()
            done["count"] = len(outcomes)
        finally:
            samples = sampler.finish()
        self.interrupted = live.interrupted
        records = [
            _Record(
                index=o.index,
                label=o.label,
                arrival=o.arrival,
                finished=o.finished,
                ok=o.ok,
                cache_hit=o.cache_hit,
                latency=o.latency,
                outcome=o.outcome,
                admitted=o.admitted,
            )
            for o in sorted(outcomes, key=lambda o: o.index)
        ]
        return self._build_report(
            observation, records, samples, wall, submitted
        )

    def _run_observed(self, observation, cache_dir: str | None) -> LoadReport:
        scenario = self.scenario
        state = {"done": 0, "failed": 0}

        def progress(done, total, job, job_result):
            state["done"] += 1
            if not job_result.ok:
                state["failed"] += 1
            logger.debug(
                "load: [%d] %s: %s",
                state["done"],
                job.label,
                "error" if not job_result.ok else "ok",
            )

        count = scenario.job_count()
        prewarm_jobs = None
        if scenario.cache == "warm":
            # Prewarm with exactly the jobs the measured run will draw
            # (or the first wave of a duration-bounded stream) so the
            # measured pass opens on a hot cache.
            n = count if count is not None else self._chunk_size()
            prewarm_jobs = scenario.draw_jobs(n)
            # Prewarm under a throwaway observation so its metrics
            # never reach the measured run's registry.
            with obs.observe():
                BatchRunner(
                    n_jobs=scenario.consumers, cache=cache_dir
                ).run(prewarm_jobs)
        retry = None
        if scenario.max_attempts > 1:
            retry = RetryPolicy(
                max_attempts=scenario.max_attempts, seed=scenario.seed
            )
        cache = cache_dir
        if (
            cache_dir is not None
            and scenario.chaos is not None
            and (
                scenario.chaos.cache_read_corrupt_rate
                or scenario.chaos.cache_write_corrupt_rate
            )
        ):
            from ..resilience.cache import ChaosCache
            from ..batch.cache import ResultCache

            cache = ChaosCache(ResultCache(cache_dir), scenario.chaos)
        runner = BatchRunner(
            n_jobs=scenario.consumers,
            cache=cache,
            progress=progress,
            timeout=scenario.job_timeout,
            retry=retry,
            chaos=scenario.chaos,
            interrupt=self.interrupt,
        )

        sampler = Sampler(
            scenario.sample_interval, progress=lambda: state["done"]
        )
        sampler.start()
        t_zero = perf_counter()
        records: list[_Record] = []
        submitted = 0
        try:
            if count is not None:
                jobs = (
                    prewarm_jobs
                    if prewarm_jobs is not None and len(prewarm_jobs) == count
                    else scenario.draw_jobs(count)
                )
                submitted += len(jobs)
                timed = runner.run_timed(jobs, scenario.arrivals(count))
                self._collect(records, timed, jobs, offset=0, t_offset=0.0)
            else:
                stream = scenario.job_stream()
                chunk_size = self._chunk_size()
                while perf_counter() - t_zero < scenario.duration:
                    if self.interrupt is not None and self.interrupt.is_set():
                        break
                    t_offset = perf_counter() - t_zero
                    chunk = [next(stream) for _ in range(chunk_size)]
                    submitted += len(chunk)
                    timed = runner.run_timed(chunk)
                    self._collect(
                        records, timed, chunk,
                        offset=len(records), t_offset=t_offset,
                    )
        finally:
            wall = perf_counter() - t_zero
            samples = sampler.finish()
            self.interrupted = runner.interrupted or (
                self.interrupt is not None and self.interrupt.is_set()
            )
        return self._build_report(
            observation, records, samples, wall, submitted
        )

    def _chunk_size(self) -> int:
        return max(CHUNK_FACTOR * self.scenario.consumers, 8)

    def _collect(
        self,
        records: list[_Record],
        timed: list[TimedResult],
        jobs,
        offset: int,
        t_offset: float,
    ) -> None:
        """Fold one ``run_timed`` result batch onto the global timeline."""
        closed = self.scenario.mode == "closed"
        for entry in sorted(timed, key=lambda t: t.result.job_index):
            result = entry.result
            if closed:
                latency = result.seconds
                if latency is None:  # cache hit: parent-side lookup cost
                    latency = max(entry.finished - entry.dispatched, 0.0)
            else:
                latency = max(entry.sojourn, 0.0)
            records.append(
                _Record(
                    index=offset + result.job_index,
                    label=jobs[result.job_index].label,
                    arrival=t_offset + entry.arrival,
                    finished=t_offset + entry.finished,
                    ok=result.ok,
                    cache_hit=result.cache_hit,
                    latency=latency,
                    outcome=result.outcome,
                    admitted=result.outcome != "interrupted",
                )
            )

    # ------------------------------------------------------------------
    # Report assembly
    # ------------------------------------------------------------------
    def _build_report(
        self,
        observation,
        records: list[_Record],
        samples: list[dict],
        wall: float,
        submitted: int,
    ) -> LoadReport:
        scenario = self.scenario
        metrics = observation.metrics
        for record in records:
            metrics.inc("load.jobs")
            metrics.inc("load.ok" if record.ok else "load.failed")
            if record.cache_hit:
                metrics.inc("load.cache_hits")
            if not record.admitted:
                # Refusals (shed / rate-limited / draining) and
                # interrupted never-dispatched jobs: counted, but kept
                # out of the latency percentiles — those describe the
                # service experienced by *admitted* requests.
                metrics.inc("load.refused")
                continue
            metrics.observe("load.latency_seconds", record.latency)

        ok = sum(1 for r in records if r.ok)
        hits = sum(1 for r in records if r.cache_hit)
        refused = sum(1 for r in records if not r.admitted)
        counts = {
            "jobs": len(records),
            "ok": ok,
            "failed": len(records) - ok,
            "refused": refused,
            "cache_hits": hits,
            "cache_misses": len(records) - hits,
        }

        width = scenario.sample_interval
        by_window: dict[int, list[_Record]] = {}
        for record in records:
            by_window.setdefault(int(record.finished // width), []).append(
                record
            )
        windows = []
        for index in sorted(by_window):
            members = by_window[index]
            windows.append(
                {
                    "t_start": index * width,
                    "jobs": len(members),
                    "jobs_per_s": len(members) / width,
                    "mean_latency": (
                        sum(r.latency for r in members) / len(members)
                    ),
                    "cache_hit_rate": (
                        sum(1 for r in members if r.cache_hit) / len(members)
                    ),
                }
            )

        hist = metrics.histograms.get("load.latency_seconds")
        if hist is not None and hist.count:
            latency = {
                "source": "service" if scenario.mode == "closed" else "sojourn",
                "count": hist.count,
                "mean": hist.mean,
                "min": hist.min,
                "max": hist.max,
                **hist.percentiles(),
            }
        else:
            latency = {
                "source": "service" if scenario.mode == "closed" else "sojourn",
                "count": 0, "mean": None, "min": None, "max": None,
                "p50": None, "p90": None, "p99": None,
            }

        memory_points = [
            (s["t"], s["rss_kb"]) for s in samples if s["rss_kb"] is not None
        ]
        memory = {
            "samples": samples,
            "start_kb": memory_points[0][1] if memory_points else None,
            "end_kb": memory_points[-1][1] if memory_points else None,
            "slope_kb_per_s": linear_slope(memory_points),
        }

        trips = evaluate_soak(
            memory_points,
            [w["mean_latency"] for w in windows],
            [w["jobs_per_s"] for w in windows],
            self.thresholds,
        )

        enabled = (
            scenario.chaos is not None
            or scenario.job_timeout is not None
            or scenario.max_attempts > 1
        )
        outcomes: dict[str, int] = {}
        for record in records:
            outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        resilience = {
            "enabled": enabled,
            "chaos": (
                scenario.chaos.to_dict() if scenario.chaos is not None else None
            ),
            "max_attempts": scenario.max_attempts,
            "job_timeout": scenario.job_timeout,
            # The zero-lost invariant: every job handed to the runner
            # must come back with a terminal result, faults or not.
            "submitted": submitted,
            "lost": submitted - len(records),
            "retries": metrics.counter("batch.retries"),
            "timeouts": metrics.counter("batch.timeouts"),
            "worker_deaths": metrics.counter("batch.worker_deaths"),
            "quarantined": metrics.counter("batch.quarantined"),
            "injected": {
                name.removeprefix("chaos.injected."): value
                for name, value in sorted(metrics.counters.items())
                if name.startswith("chaos.injected.")
            },
            "cache_corrupt": metrics.counter("cache.corrupt"),
            "outcomes": outcomes,
        }

        return LoadReport(
            scenario=scenario.to_dict(),
            seed=scenario.seed,
            consumers=scenario.consumers,
            duration_seconds=wall,
            counts=counts,
            throughput={
                "overall_jobs_per_s": len(records) / wall if wall else 0.0,
                "window_seconds": width,
                "windows": windows,
            },
            latency=latency,
            memory=memory,
            cache={
                "mode": scenario.cache,
                "hit_rate": hits / len(records) if records else 0.0,
            },
            metrics=metrics.snapshot(),
            soak=trips,
            resilience=resilience,
            target=self.target,
            interrupted=self.interrupted,
        )
