"""Scenario model: declarative traffic for the load harness.

A :class:`Scenario` is plain data (JSON round-trippable) describing a
traffic experiment; :meth:`Scenario.spec_stream` turns it into an
endless deterministic stream of
:class:`~repro.batch.spec.JobSpec` draws — the JSON wire format the
serving layer accepts — and :meth:`Scenario.job_stream` resolves each
spec into a :class:`~repro.batch.jobs.CompileJob` for in-process runs.
Because both modes expand the *same* spec draws, an in-process run and
a live ``repro load <scenario> --target http://…`` run submit exactly
the same workload: one resolves locally, the other resolves inside the
server, and the content fingerprints agree.

Determinism contract: one ``random.Random(seed)`` instance drives
every stochastic choice in draw order — workload-item selection,
machine and config selection, and the per-draw circuit seeds of random
workloads — so the same seeded scenario always expands to the same job
list with the same fingerprints, no matter the consumer count or
arrival shape (tested in ``tests/test_loadgen.py``).
"""

from __future__ import annotations

import json
import math
import random
from collections.abc import Iterator
from dataclasses import asdict, dataclass

from ..arch.presets import machine_from_spec
from ..batch.jobs import CompileJob
from ..batch.spec import BENCH_FACTORIES, CONFIG_FACTORIES, JobSpec
from ..resilience.faults import FaultPlan


@dataclass(frozen=True)
class WorkloadItem:
    """One weighted entry of a scenario's workload mix.

    ``kind`` is ``"random"`` (a fresh seeded random circuit per draw —
    ``qubits``/``gates``/``family`` as in
    :func:`repro.bench.random_circuits.random_circuit`) or ``"bench"``
    (the named paper-suite generator, built once and reused, since the
    generator is deterministic).
    """

    kind: str
    weight: float = 1.0
    name: str = ""
    qubits: int | None = None
    gates: int | None = None
    family: str = "uniform"

    def __post_init__(self) -> None:
        if self.kind not in ("random", "bench"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.weight <= 0:
            raise ValueError(f"workload weight must be > 0, got {self.weight}")
        if self.kind == "bench" and self.name not in BENCH_FACTORIES:
            raise ValueError(
                f"unknown bench workload {self.name!r}; "
                f"choose from {sorted(BENCH_FACTORIES)}"
            )
        if self.kind == "random" and not self.qubits:
            raise ValueError("random workload items need a qubit count")


@dataclass(frozen=True)
class Scenario:
    """One declarative load experiment (see the module docstring)."""

    name: str
    mix: tuple[WorkloadItem, ...]
    description: str = ""
    machines: tuple[str, ...] = ("l6",)
    configs: tuple[str, ...] = ("optimized",)
    #: ``closed`` — ``consumers`` workers stay saturated; ``open`` —
    #: arrivals at ``rate`` jobs/s independent of service progress.
    mode: str = "closed"
    consumers: int = 2
    rate: float | None = None
    #: Traffic volume: a job count, a duration in seconds, or both
    #: (duration wins for open loops, where it fixes the arrival
    #: timeline; closed loops draw jobs until the deadline).
    jobs: int | None = None
    duration: float | None = None
    cache: str = "disabled"
    simulate: bool = False
    seed: int = 2022
    #: Sampling-loop period and report window width, seconds.
    sample_interval: float = 0.5
    #: Optional fault-injection plan: run the scenario's traffic
    #: through the resilient runner while injecting the plan's faults
    #: (``repro load <scenario> --chaos <plan>``).
    chaos: FaultPlan | None = None
    #: Per-job wall-clock budget, seconds; engages the resilient
    #: runner even without a chaos plan.
    job_timeout: float | None = None
    #: Attempt budget per job (1 = no retries).  Chaos runs want this
    #: above the plan's ``max_faults_per_job`` so every job can reach
    #: a clean attempt.
    max_attempts: int = 1

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError("scenario needs at least one workload item")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"unknown arrival mode {self.mode!r}")
        if self.cache not in ("cold", "warm", "disabled"):
            raise ValueError(f"unknown cache mode {self.cache!r}")
        if self.mode == "open" and not self.rate:
            raise ValueError("open-loop scenarios need a rate (jobs/s)")
        if self.jobs is None and self.duration is None:
            raise ValueError("scenario needs a job count or a duration")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be > 0, got {self.job_timeout}"
            )
        for spec in self.machines:
            machine_from_spec(spec)  # fail fast on typos
        for config in self.configs:
            if config not in CONFIG_FACTORIES:
                raise ValueError(
                    f"unknown config {config!r}; "
                    f"choose from {sorted(CONFIG_FACTORIES)}"
                )

    # ------------------------------------------------------------------
    # Deterministic job expansion
    # ------------------------------------------------------------------
    def spec_stream(self, seed: int | None = None) -> Iterator[JobSpec]:
        """Endless deterministic :class:`JobSpec` draws — the wire
        format live mode POSTs to a serve endpoint.

        RNG-consumption note: each draw consumes randomness in the
        exact order the pre-spec ``job_stream`` did (mix choice →
        circuit seed → machine → config), and ``random.choice`` /
        ``choices`` consume by sequence *length* only — so the rebase
        onto specs preserved every historical workload digest.
        """
        rng = random.Random(self.seed if seed is None else seed)
        weights = [item.weight for item in self.mix]
        while True:
            item = rng.choices(self.mix, weights=weights)[0]
            circuit_seed = (
                rng.randrange(1 << 30) if item.kind == "random" else None
            )
            yield JobSpec(
                kind=item.kind,
                machine=rng.choice(self.machines),
                config=rng.choice(self.configs),
                name=item.name,
                qubits=item.qubits,
                gates=item.gates,
                seed=circuit_seed,
                family=item.family,
                simulate=self.simulate,
                deadline=self.job_timeout,
            )

    def job_stream(self, seed: int | None = None) -> Iterator[CompileJob]:
        """Endless deterministic job draws: :meth:`spec_stream`,
        resolved (see module docstring)."""
        for spec in self.spec_stream(seed):
            yield spec.resolve()

    def draw_jobs(self, n: int, seed: int | None = None) -> list[CompileJob]:
        """The first ``n`` draws of :meth:`job_stream`."""
        stream = self.job_stream(seed)
        return [next(stream) for _ in range(n)]

    def draw_specs(self, n: int, seed: int | None = None) -> list[JobSpec]:
        """The first ``n`` draws of :meth:`spec_stream`."""
        stream = self.spec_stream(seed)
        return [next(stream) for _ in range(n)]

    def job_count(self) -> int | None:
        """Total jobs when knowable upfront: the explicit count, or the
        arrival timeline's length for duration-bounded open loops.
        ``None`` for duration-bounded closed loops (drawn until the
        deadline)."""
        if self.mode == "open" and self.duration is not None:
            return max(1, math.ceil(self.rate * self.duration))
        return self.jobs

    def arrivals(self, n: int) -> list[float] | None:
        """The arrival timeline for ``n`` jobs: evenly paced at
        ``rate`` for open loops, ``None`` (all at once) for closed."""
        if self.mode == "open":
            return [i / self.rate for i in range(n)]
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able scenario document (``from_dict`` round-trips)."""
        data = asdict(self)
        data["mix"] = [asdict(item) for item in self.mix]
        data["machines"] = list(self.machines)
        data["configs"] = list(self.configs)
        # asdict already recursed the chaos plan into a plain dict.
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build a scenario from a :meth:`to_dict`-shaped document."""
        payload = dict(data)
        payload["mix"] = tuple(
            WorkloadItem(**item) for item in payload.get("mix", ())
        )
        for key in ("machines", "configs"):
            if key in payload:
                payload[key] = tuple(payload[key])
        if isinstance(payload.get("chaos"), dict):
            payload["chaos"] = FaultPlan.from_dict(payload["chaos"])
        return cls(**payload)


def _mix(*items: WorkloadItem) -> tuple[WorkloadItem, ...]:
    return tuple(items)


#: Bundled scenario presets (``repro load <name>``).  Sizes are chosen
#: so ``smoke`` finishes in seconds, ``steady``/``paced`` in tens of
#: seconds, and ``soak-short`` fits the weekly CI budget (~2 min).
PRESETS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="smoke",
            description="Tiny cache-free mix: the fastest end-to-end check.",
            mix=_mix(
                WorkloadItem("random", weight=2, qubits=12, gates=60),
                WorkloadItem("random", weight=1, qubits=16, gates=80),
                WorkloadItem("bench", weight=1, name="qft", qubits=12),
            ),
            machines=("linear3",),
            mode="closed",
            consumers=2,
            jobs=12,
            cache="disabled",
            sample_interval=0.25,
        ),
        Scenario(
            name="steady",
            description="Mixed small/mid workload, both compilers, cold cache.",
            mix=_mix(
                WorkloadItem("random", weight=3, qubits=16, gates=90),
                WorkloadItem("random", weight=2, qubits=24, gates=140),
                WorkloadItem("bench", weight=1, name="qft", qubits=16),
                WorkloadItem("bench", weight=1, name="qaoa", qubits=16),
            ),
            machines=("linear4",),
            configs=("baseline", "optimized"),
            mode="closed",
            consumers=4,
            jobs=48,
            cache="cold",
        ),
        Scenario(
            name="paced",
            description="Open-loop arrivals at a fixed rate: queueing visible.",
            mix=_mix(
                WorkloadItem("random", weight=2, qubits=16, gates=90),
                WorkloadItem("bench", weight=1, name="qft", qubits=16),
            ),
            machines=("linear4",),
            mode="open",
            consumers=2,
            rate=6.0,
            jobs=30,
            cache="cold",
        ),
        Scenario(
            name="soak-short",
            description="~2-minute closed-loop soak for the weekly CI gate.",
            mix=_mix(
                WorkloadItem("random", weight=3, qubits=16, gates=100),
                WorkloadItem("random", weight=2, qubits=24, gates=150),
                WorkloadItem("bench", weight=1, name="qft", qubits=16),
            ),
            machines=("linear4",),
            mode="closed",
            consumers=2,
            duration=110.0,
            cache="cold",
            sample_interval=2.0,
        ),
        Scenario(
            name="bench-pin",
            description="Pinned short scenario for benchmarks/bench_load.py.",
            mix=_mix(WorkloadItem("random", qubits=48, gates=800)),
            machines=("linear4",),
            mode="closed",
            consumers=2,
            jobs=32,
            cache="disabled",
            seed=20220308,
            sample_interval=0.25,
        ),
    )
}


def load_scenario(spec: str) -> Scenario:
    """Resolve a scenario argument: a preset name or a JSON file path."""
    preset = PRESETS.get(spec)
    if preset is not None:
        return preset
    if spec.endswith(".json"):
        with open(spec, encoding="utf-8") as handle:
            return Scenario.from_dict(json.load(handle))
    raise ValueError(
        f"unknown scenario {spec!r}; choose a preset "
        f"({', '.join(sorted(PRESETS))}) or a .json scenario file"
    )
