"""Live-mode execution: replay a scenario against a serve endpoint.

``repro load <scenario> --target http://…`` runs the *same*
deterministic scenario expansion as an in-process run — the shared
:meth:`~repro.loadgen.scenario.Scenario.spec_stream` draws — but
submits each draw as a ``POST /v1/jobs`` document to a running
``repro serve`` instance instead of resolving it locally.  The server
resolves the spec to the identical content fingerprint, so live and
in-process reports describe the same workload and stay comparable.

Semantics that differ from in-process execution, by design:

* **Refusals are outcomes, not errors.**  A shed (429), rate-limited
  (429) or draining (503) response is the server degrading as built;
  it becomes a terminal record with that outcome, ``admitted=False``,
  and is excluded from the latency percentiles (which, per the
  acceptance criteria, cover *admitted* requests only).
* **The cache regime is the server's.**  The client neither prewarms
  nor owns a cache directory; ``cache_hit`` on a record reports what
  the server's content-addressed cache said.
* **Interrupt drains, never abandons.**  On SIGINT the generator stops
  submitting, keeps polling every already-admitted job to its terminal
  state (bounded by :data:`DRAIN_TIMEOUT`), and marks never-submitted
  draws ``interrupted`` — every planned request still owes a record.

Closed loops run ``consumers`` submit-and-wait threads (each keeps one
request in flight, like an in-process consumer process); open loops
pace submissions on the arrival timeline from the main thread while a
poller thread collects completions — submission is never blocked by
service progress, which is what makes overload (shedding) reachable.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from time import perf_counter, sleep

from ..serve.client import ServeClient, ServeUnavailable
from .scenario import Scenario

logger = logging.getLogger(__name__)

#: Seconds between status polls for in-flight jobs.
POLL_INTERVAL = 0.02
#: Bound on waiting for admitted jobs after submission stops (the
#: server enforces its own deadlines; this only guards a dead server).
DRAIN_TIMEOUT = 120.0
#: Refusal outcomes (server said no before queuing — by design).
REFUSAL_OUTCOMES = frozenset({"shed", "rate_limited", "draining"})


@dataclass
class LiveRecord:
    """One planned request's terminal fate on the live timeline."""

    index: int
    label: str
    arrival: float
    finished: float
    ok: bool
    cache_hit: bool
    latency: float
    outcome: str
    #: False for refusals (shed / rate-limited / draining) and
    #: never-submitted ``interrupted`` draws — excluded from latency
    #: percentiles, counted in ``counts["refused"]`` / the ledger.
    admitted: bool


class LiveRunner:
    """Executes one scenario against a serve endpoint.

    Parameters mirror the in-process path where they apply:
    ``identity`` feeds the server's rate limiter (default
    ``loadgen-<seed>`` so one run is one identity), ``interrupt`` is
    the SIGINT event shared with the CLI.
    """

    def __init__(
        self,
        scenario: Scenario,
        target: str,
        identity: str | None = None,
        interrupt: threading.Event | None = None,
        poll_interval: float = POLL_INTERVAL,
        request_timeout: float = 30.0,
    ) -> None:
        self.scenario = scenario
        self.target = target
        self.interrupt = interrupt
        self.poll_interval = poll_interval
        self.client = ServeClient(
            target,
            identity=identity or f"loadgen-{scenario.seed}",
            timeout=request_timeout,
        )
        #: True once a run was cut short by the interrupt event.
        self.interrupted = False
        #: Requests the last run planned (the zero-lost denominator).
        self._planned = 0

    def _interrupt_set(self) -> bool:
        return self.interrupt is not None and self.interrupt.is_set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> tuple[list[LiveRecord], float, int]:
        """Execute; returns ``(records, wall_seconds, planned)``.

        Every planned request has exactly one record — admitted jobs
        carry the server's terminal outcome, refusals theirs, and
        interrupted draws ``interrupted`` — so the caller's zero-lost
        ledger (``planned - len(records)``) works unchanged.
        """
        if not self.client.wait_until_up(timeout=10.0):
            raise ServeUnavailable(
                f"no serve endpoint answering at {self.target}"
            )
        scenario = self.scenario
        self._planned = 0
        t_zero = perf_counter()
        if scenario.mode == "open":
            records = self._run_open(t_zero)
        else:
            records = self._run_closed(t_zero)
        wall = perf_counter() - t_zero
        return records, wall, self._planned

    # ------------------------------------------------------------------
    # Open loop: paced submission + background poller
    # ------------------------------------------------------------------
    def _run_open(self, t_zero: float) -> list[LiveRecord]:
        scenario = self.scenario
        count = scenario.job_count()
        specs = scenario.draw_specs(count)
        arrivals = scenario.arrivals(count)
        self._planned = count
        records: list[LiveRecord] = []
        pending: dict[str, list[tuple[int, str, float]]] = {}
        lock = threading.Lock()
        submitting = threading.Event()
        submitting.set()

        def poller() -> None:
            while True:
                with lock:
                    snapshot = list(pending.items())
                if not snapshot:
                    if not submitting.is_set():
                        return
                    sleep(self.poll_interval)
                    continue
                for job_id, waiters in snapshot:
                    response = self.client.status(job_id)
                    body = response.body
                    if response.ok and body.get("state") != "done":
                        continue
                    now = perf_counter() - t_zero
                    with lock:
                        waiters = pending.pop(job_id, [])
                        for index, label, arrival in waiters:
                            records.append(
                                self._terminal_record(
                                    index, label, arrival, now, response
                                )
                            )
                sleep(self.poll_interval)

        def submit_one(index: int, spec) -> None:
            """One POST, off the pacing thread: a slow submission (the
            server fingerprints before admitting) must never delay the
            *next* arrival, or the generator becomes closed-loop in
            disguise and overload is unreachable."""
            arrival = perf_counter() - t_zero
            response = self.client.submit(spec.to_dict())
            now = perf_counter() - t_zero
            if not response.ok:
                with lock:
                    records.append(
                        self._refusal_record(
                            index, spec.label, arrival, response, now
                        )
                    )
                return
            body = response.body
            if body.get("state") == "done":
                # Instant completion (server-side cache hit).
                with lock:
                    records.append(
                        self._terminal_record(
                            index, spec.label, arrival, now, response
                        )
                    )
                return
            with lock:
                pending.setdefault(body["id"], []).append(
                    (index, spec.label, arrival)
                )

        poll_thread = threading.Thread(
            target=poller, name="load-live-poller", daemon=True
        )
        poll_thread.start()
        submitters: list[threading.Thread] = []
        try:
            for index, (spec, due) in enumerate(zip(specs, arrivals)):
                if self._interrupt_set():
                    self.interrupted = True
                    now = perf_counter() - t_zero
                    with lock:
                        for rest in range(index, count):
                            records.append(
                                _interrupted_record(
                                    rest, specs[rest].label, now
                                )
                            )
                    break
                delay = t_zero + due - perf_counter()
                if delay > 0:
                    # Wake early on interrupt instead of sleeping past it.
                    if self.interrupt is not None:
                        self.interrupt.wait(timeout=delay)
                    else:
                        sleep(delay)
                thread = threading.Thread(
                    target=submit_one,
                    args=(index, spec),
                    name=f"load-live-submit-{index}",
                    daemon=True,
                )
                thread.start()
                submitters.append(thread)
        finally:
            for thread in submitters:
                thread.join(timeout=DRAIN_TIMEOUT)
            submitting.clear()
            poll_thread.join(timeout=DRAIN_TIMEOUT)
        return records

    # ------------------------------------------------------------------
    # Closed loop: submit-and-wait consumers
    # ------------------------------------------------------------------
    def _run_closed(self, t_zero: float) -> list[LiveRecord]:
        scenario = self.scenario
        count = scenario.job_count()
        deadline = (
            t_zero + scenario.duration
            if count is None and scenario.duration is not None
            else None
        )
        specs = scenario.draw_specs(count) if count is not None else None
        stream = scenario.spec_stream() if specs is None else None
        records: list[LiveRecord] = []
        lock = threading.Lock()
        cursor = {"next": 0}

        def take() -> tuple[int, object] | None:
            with lock:
                index = cursor["next"]
                if specs is not None and index >= len(specs):
                    return None
                cursor["next"] = index + 1
                spec = specs[index] if specs is not None else next(stream)
            return index, spec

        def consumer() -> None:
            while True:
                if self._interrupt_set():
                    self.interrupted = True
                    return
                if deadline is not None and perf_counter() >= deadline:
                    return
                item = take()
                if item is None:
                    return
                index, spec = item
                arrival = perf_counter() - t_zero
                response = self.client.submit(spec.to_dict())
                if not response.ok:
                    with lock:
                        records.append(
                            self._refusal_record(
                                index, spec.label, arrival, response,
                                perf_counter() - t_zero,
                            )
                        )
                    continue
                body = response.body
                if body.get("state") != "done":
                    response = self.client.wait(
                        body["id"], timeout=DRAIN_TIMEOUT,
                        poll_interval=self.poll_interval,
                    )
                with lock:
                    records.append(
                        self._terminal_record(
                            index, spec.label, arrival,
                            perf_counter() - t_zero, response,
                        )
                    )

        threads = [
            threading.Thread(
                target=consumer, name=f"load-live-{n}", daemon=True
            )
            for n in range(max(scenario.consumers, 1))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=DRAIN_TIMEOUT)
        if self.interrupted and specs is not None:
            now = perf_counter() - t_zero
            with lock:
                undrawn = range(cursor["next"], len(specs))
                for index in undrawn:
                    records.append(
                        _interrupted_record(index, specs[index].label, now)
                    )
        # The ledger denominator: every planned draw owes a record
        # (count-bounded: the full list, interrupted or not;
        # duration-bounded: everything actually drawn).
        self._planned = (
            len(specs) if specs is not None else cursor["next"]
        )
        return records

    # ------------------------------------------------------------------
    # Record builders
    # ------------------------------------------------------------------
    def _terminal_record(
        self,
        index: int,
        label: str,
        arrival: float,
        finished: float,
        response,
    ) -> LiveRecord:
        """An admitted job's terminal record from its last status (or
        submit) response body."""
        body = response.body if response.ok else {}
        outcome = body.get("outcome") or (
            response.error_code or "internal"
        )
        sojourn = max(finished - arrival, 0.0)
        if self.scenario.mode == "closed":
            # Closed loops report service time, like in-process runs;
            # cache hits (seconds is None) report the round trip.
            latency = body.get("seconds")
            if latency is None:
                latency = sojourn
        else:
            latency = sojourn
        return LiveRecord(
            index=index,
            label=label,
            arrival=arrival,
            finished=finished,
            ok=outcome == "ok",
            cache_hit=bool(body.get("cache_hit")),
            latency=latency,
            outcome=outcome,
            admitted=True,
        )

    def _refusal_record(
        self,
        index: int,
        label: str,
        arrival: float,
        response,
        finished: float,
    ) -> LiveRecord:
        code = response.error_code or f"http_{response.status}"
        return LiveRecord(
            index=index,
            label=label,
            arrival=arrival,
            finished=finished,
            ok=False,
            cache_hit=False,
            latency=max(finished - arrival, 0.0),
            outcome=code,
            admitted=False,
        )


def _interrupted_record(index: int, label: str, now: float) -> LiveRecord:
    return LiveRecord(
        index=index,
        label=label,
        arrival=now,
        finished=now,
        ok=False,
        cache_hit=False,
        latency=0.0,
        outcome="interrupted",
        admitted=False,
    )
