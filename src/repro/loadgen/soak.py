"""Degradation detection: windowed trend analysis for soak runs.

A soak turns "ran for two minutes without crashing" into a pass/fail
gate by checking three trends over the run:

* **memory growth** — the least-squares slope of the RSS series
  (KiB/s).  A healthy steady-state run plateaus; an unbounded cache or
  a leaked schedule grows linearly and trips the slope threshold.
* **latency drift** — the mean per-window latency of the last third of
  windows over the first third.  Ratios near 1 are steady; a drifting
  ratio means per-job cost is growing with run age.
* **throughput sag** — the same last-third/first-third ratio on
  per-window completion rates, tripping when it *falls* below the
  threshold.

Thirds-based ratios rather than raw endpoint slopes make the latency
and throughput checks robust to single-window noise; the memory check
keeps the slope form because RSS is already smooth (sampled, not
per-job) and a KiB/s number is what a leak report wants.  All
detectors are pure functions over plain number lists, so synthetic
streams can unit-test the trip conditions exactly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


def linear_slope(points: Sequence[tuple[float, float]]) -> float:
    """Least-squares slope of ``(x, y)`` points (0.0 when degenerate)."""
    n = len(points)
    if n < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    if var_x == 0.0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return cov / var_x


def thirds_ratio(values: Sequence[float]) -> float | None:
    """``mean(last third) / mean(first third)``, or ``None`` when the
    series is too short (fewer than 3 values) or the first third's
    mean is zero."""
    n = len(values)
    if n < 3:
        return None
    third = max(1, n // 3)
    first = sum(values[:third]) / third
    last = sum(values[-third:]) / third
    if first == 0.0:
        return None
    return last / first


@dataclass(frozen=True)
class SoakThresholds:
    """Trip levels for :func:`evaluate_soak` (defaults sized for the
    bundled soak presets; override per scenario as needed)."""

    #: Maximum tolerated RSS slope, KiB per second.
    max_memory_slope_kb_per_s: float = 256.0
    #: Minimum seconds between the first and last RSS sample before a
    #: slope is conclusive — allocator warm-up over a sub-second run
    #: extrapolates to absurd KiB/s figures that say nothing.
    min_memory_span_seconds: float = 5.0
    #: Maximum tolerated latency thirds-ratio (1.0 = perfectly flat).
    max_latency_drift: float = 1.75
    #: Minimum tolerated throughput thirds-ratio (sag below this trips).
    min_throughput_ratio: float = 0.60
    #: Minimum windows before drift/sag verdicts are meaningful; with
    #: fewer, those checks report ``value=None`` and never trip.
    min_windows: int = 6


@dataclass
class Trip:
    """One detector verdict: measured value vs its threshold."""

    name: str
    value: float | None
    threshold: float
    tripped: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "value": self.value,
            "threshold": self.threshold,
            "tripped": self.tripped,
        }


def evaluate_soak(
    memory_samples: Sequence[tuple[float, float]],
    window_latency_means: Sequence[float],
    window_throughputs: Sequence[float],
    thresholds: SoakThresholds | None = None,
) -> list[Trip]:
    """Run all three detectors; always returns three :class:`Trip`\\ s.

    ``memory_samples`` are ``(seconds, rss_kb)`` points;
    ``window_latency_means``/``window_throughputs`` are the per-window
    series off the load report.  A detector whose input is too short
    (or unavailable — e.g. RSS unreadable) reports ``value=None`` and
    does not trip: an inconclusive soak is not a failed soak.
    """
    t = thresholds or SoakThresholds()
    trips: list[Trip] = []

    span = (
        memory_samples[-1][0] - memory_samples[0][0]
        if len(memory_samples) >= 2
        else 0.0
    )
    slope = (
        linear_slope(memory_samples)
        if span >= t.min_memory_span_seconds
        else None
    )
    trips.append(
        Trip(
            "memory_growth_slope_kb_per_s",
            slope,
            t.max_memory_slope_kb_per_s,
            slope is not None and slope > t.max_memory_slope_kb_per_s,
        )
    )

    drift = (
        thirds_ratio(window_latency_means)
        if len(window_latency_means) >= t.min_windows
        else None
    )
    trips.append(
        Trip(
            "latency_drift_ratio",
            drift,
            t.max_latency_drift,
            drift is not None and drift > t.max_latency_drift,
        )
    )

    sag = (
        thirds_ratio(window_throughputs)
        if len(window_throughputs) >= t.min_windows
        else None
    )
    trips.append(
        Trip(
            "throughput_sag_ratio",
            sag,
            t.min_throughput_ratio,
            sag is not None and sag < t.min_throughput_ratio,
        )
    )
    return trips
