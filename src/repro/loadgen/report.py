"""The LoadReport: one structured document per load run.

:class:`LoadReport` is the artifact every load/soak run produces —
JSON via :meth:`LoadReport.to_dict` (the ``--report-out`` payload) and
a text rendering via :func:`render_load_report` in the style of
``repro trace``.  Latency percentiles come off the *merged* quantile
buckets of the observation registry (``load.latency_seconds``), so a
parallel run's report equals a serial run's in every count while the
wall-clock fields stay honest per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eval.report import render_table
from .soak import Trip


@dataclass
class LoadReport:
    """Structured outcome of one :class:`~repro.loadgen.runner.LoadRunner` run."""

    scenario: dict
    seed: int
    consumers: int
    duration_seconds: float
    #: jobs / ok / failed / cache_hits / cache_misses counts.
    counts: dict
    #: ``{"overall_jobs_per_s": ..., "window_seconds": ...,
    #: "windows": [{"t_start", "jobs", "jobs_per_s", "mean_latency",
    #: "cache_hit_rate"}, ...]}``.
    throughput: dict
    #: ``{"source": "service"|"sojourn", "count", "mean", "min",
    #: "max", "p50", "p90", "p99"}``.
    latency: dict
    #: ``{"samples": [{"t", "rss_kb", "done"}, ...],
    #: "start_kb", "end_kb", "slope_kb_per_s"}``.
    memory: dict
    #: ``{"hit_rate": ..., "mode": ...}``.
    cache: dict
    #: Full metrics-registry snapshot of the observed run.
    metrics: dict
    #: Soak verdicts (always present; the CLI gates on them only with
    #: ``--soak``).
    soak: list[Trip] = field(default_factory=list)
    #: Resilience summary: ``{"enabled", "chaos", "max_attempts",
    #: "job_timeout", "submitted", "lost", "retries", "timeouts",
    #: "worker_deaths", "quarantined", "injected", "cache_corrupt",
    #: "outcomes"}``.  ``lost`` must be 0: every submitted job owes a
    #: terminal result, chaos or not.
    resilience: dict = field(default_factory=dict)
    #: Serve endpoint URL for a live-mode run (``repro load --target``);
    #: ``None`` for in-process runs.
    target: str | None = None
    #: True when the run was cut short (SIGINT): the report covers the
    #: drained prefix of the workload, and never-dispatched jobs carry
    #: outcome ``interrupted`` in the ledger.
    interrupted: bool = False

    @property
    def tripped(self) -> list[Trip]:
        """The degradation detectors that fired."""
        return [trip for trip in self.soak if trip.tripped]

    @property
    def passed(self) -> bool:
        """True when no degradation threshold tripped."""
        return not self.tripped

    def to_dict(self) -> dict:
        """The report as one JSON document."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "consumers": self.consumers,
            "target": self.target,
            "interrupted": self.interrupted,
            "duration_seconds": self.duration_seconds,
            "counts": self.counts,
            "throughput": self.throughput,
            "latency": self.latency,
            "memory": self.memory,
            "cache": self.cache,
            "soak": {
                "passed": self.passed,
                "trips": [trip.to_dict() for trip in self.soak],
            },
            "resilience": self.resilience,
            "metrics": self.metrics,
        }


def _fmt_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.1f}"


def render_load_report(report: LoadReport) -> str:
    """The ``repro load`` text report."""
    counts = report.counts
    latency = report.latency
    lines = [
        f"load report: {report.scenario.get('name', '?')} "
        f"(seed {report.seed}, {report.consumers} consumers, "
        f"{report.scenario.get('mode', '?')} loop, "
        f"cache {report.cache.get('mode', '?')})",
    ]
    if report.target:
        lines.append(f"  target     {report.target} (live mode)")
    if report.interrupted:
        lines.append(
            "  INTERRUPTED: partial report — submission stopped early, "
            "in-flight jobs drained"
        )
    lines += [
        "",
        f"  jobs       {counts['jobs']} total, {counts['ok']} ok, "
        f"{counts['failed']} failed",
        f"  duration   {report.duration_seconds:.2f} s",
        f"  throughput {report.throughput['overall_jobs_per_s']:.2f} jobs/s",
        f"  latency    ({latency['source']}) mean {_fmt_ms(latency['mean'])} ms"
        f"  p50 {_fmt_ms(latency['p50'])}  p90 {_fmt_ms(latency['p90'])}"
        f"  p99 {_fmt_ms(latency['p99'])}  max {_fmt_ms(latency['max'])}",
        f"  cache      {counts['cache_hits']} hits / "
        f"{counts['cache_misses']} misses "
        f"({report.cache['hit_rate'] * 100.0:.0f}% hit rate)",
    ]
    resilience = report.resilience
    if resilience.get("enabled"):
        injected = resilience.get("injected") or {}
        injected_text = (
            ", ".join(
                f"{kind} x{count}" for kind, count in sorted(injected.items())
            )
            or "none"
        )
        outcomes = resilience.get("outcomes") or {}
        outcome_text = (
            ", ".join(
                f"{count} {name}" for name, count in sorted(outcomes.items())
            )
            or "-"
        )
        lines.append(
            f"  resilience {resilience.get('lost', 0)} lost / "
            f"{resilience.get('submitted', 0)} submitted, "
            f"{resilience.get('retries', 0)} retries, "
            f"{resilience.get('timeouts', 0)} timeouts, "
            f"{resilience.get('worker_deaths', 0)} worker deaths, "
            f"{resilience.get('quarantined', 0)} quarantined"
        )
        lines.append(
            f"  chaos      injected: {injected_text}; cache corrupt: "
            f"{resilience.get('cache_corrupt', 0)}; outcomes: {outcome_text}"
        )
    rss_start = report.memory.get("start_kb")
    rss_end = report.memory.get("end_kb")
    if rss_start is not None and rss_end is not None:
        lines.append(
            f"  memory     {rss_start / 1024.0:.1f} -> "
            f"{rss_end / 1024.0:.1f} MiB "
            f"(slope {report.memory['slope_kb_per_s']:.1f} KiB/s)"
        )
    windows = report.throughput["windows"]
    if windows:
        lines.append("")
        lines.append(
            f"  windows ({report.throughput['window_seconds']:.2f} s each):"
        )
        rows = [
            [
                f"{w['t_start']:.2f}",
                str(w["jobs"]),
                f"{w['jobs_per_s']:.2f}",
                _fmt_ms(w["mean_latency"]),
                f"{w['cache_hit_rate'] * 100.0:.0f}%",
            ]
            for w in windows
        ]
        table = render_table(
            ["t", "jobs", "jobs/s", "mean ms", "cache hit"], rows
        )
        lines.extend("  " + line for line in table.splitlines())
    if report.soak:
        lines.append("")
        lines.append(
            "  soak: " + ("PASS" if report.passed else "DEGRADED")
        )
        for trip in report.soak:
            value = (
                "n/a" if trip.value is None else f"{trip.value:.3f}"
            )
            status = "TRIP" if trip.tripped else "ok"
            lines.append(
                f"    {trip.name:<32} {value:>10}  "
                f"(threshold {trip.threshold:g})  {status}"
            )
    return "\n".join(lines)
