"""The sampling loop: live RSS / progress series for a load run.

One :class:`Sampler` daemon thread wakes every ``interval`` seconds
while a load run executes and appends a sample row — elapsed time,
parent-process RSS, and the completion counter exposed by the runner's
progress callback.  Rows are plain dicts so they drop straight into
the :class:`~repro.loadgen.report.LoadReport` JSON.

RSS is read from ``/proc/self/statm`` (resident pages × page size) on
Linux; elsewhere it degrades to ``ru_maxrss`` (a high-water mark, noted
in the report) or ``None``.  Only the parent process is sampled: with
worker pools the parent still accumulates results, caches, and any
leaked references — exactly the growth a soak wants to see — while
worker memory is bounded by job lifetime.
"""

from __future__ import annotations

import os
import sys
import threading
from collections.abc import Callable
from time import perf_counter

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None


def rss_kb() -> float | None:
    """Current resident set size in KiB, or ``None`` when unknowable.

    ``/proc/self/statm`` gives the live value; the ``getrusage``
    fallback is a lifetime maximum (monotone, so growth *slopes* read
    from it are a lower bound on live growth).
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak / 1024.0 if sys.platform == "darwin" else float(peak)


class Sampler(threading.Thread):
    """Daemon thread appending one sample row per ``interval``.

    ``progress`` is a zero-argument callable returning the number of
    completed jobs so far (reads of a counter the runner bumps under
    the GIL — no locking needed).  :meth:`finish` takes a final sample,
    stops the loop, and returns the collected rows.
    """

    def __init__(
        self, interval: float, progress: Callable[[], int]
    ) -> None:
        super().__init__(name="loadgen-sampler", daemon=True)
        self.interval = interval
        self._progress = progress
        self._halt = threading.Event()
        self._t_zero = perf_counter()
        self.samples: list[dict] = []

    def _sample(self) -> None:
        self.samples.append(
            {
                "t": perf_counter() - self._t_zero,
                "rss_kb": rss_kb(),
                "done": self._progress(),
            }
        )

    def run(self) -> None:  # pragma: no cover - exercised via finish()
        self._sample()
        while not self._halt.wait(self.interval):
            self._sample()

    def finish(self) -> list[dict]:
        """Stop the loop, take a closing sample, return every row."""
        self._halt.set()
        if self.is_alive():
            self.join()
        self._sample()
        return self.samples
