"""Hierarchical phase spans: an aggregated wall-time tree.

A *span* is a named stretch of wall time nested under whatever span was
open when it started (``compile`` → ``schedule-gates`` → ``route`` →
``route`` for a recursive traffic-block resolution).  Unlike a
distributed-tracing span log, repeated spans with the same name under
the same parent are **aggregated into one tree node** carrying a count
and a total — a 1 400-gate compile produces a dozen-node tree, not a
40 000-row event log, and the tree *is* the per-phase wall-time
breakdown the text report renders.

Two recording styles:

* ``with spans.span("route"):`` — pushes a node for the block so inner
  spans nest under it;
* ``spans.add("decide", seconds)`` — accumulates a leaf under the
  currently open span without pushing (the hot-loop style: two
  ``perf_counter()`` reads and one call, no context-manager overhead).

Instrumentation sites only reach this module when observability is
enabled, so there is no disabled fast path here (see
:mod:`repro.obs.registry` for the layering rationale).
"""

from __future__ import annotations

from time import perf_counter


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.children: dict[str, SpanNode] = {}

    def child_seconds(self) -> float:
        """Wall time accounted to direct children."""
        return sum(child.seconds for child in self.children.values())

    def to_dict(self) -> dict:
        """JSON-able subtree (children in first-seen order)."""
        return {
            "name": self.name,
            "count": self.count,
            "seconds": round(self.seconds, 6),
            "children": [
                child.to_dict() for child in self.children.values()
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanNode({self.name!r}, count={self.count}, "
            f"seconds={self.seconds:.6f}, "
            f"children={sorted(self.children)})"
        )


class _SpanContext:
    """Context manager for one :meth:`SpanRecorder.span` entry."""

    __slots__ = ("_recorder", "_node", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._node = recorder._enter(name)

    def __enter__(self) -> SpanNode:
        self._start = perf_counter()
        return self._node

    def __exit__(self, *exc_info) -> None:
        elapsed = perf_counter() - self._start
        self._node.count += 1
        self._node.seconds += elapsed
        self._recorder._exit(self._node)


class SpanRecorder:
    """Builds the aggregated span tree for one observation."""

    __slots__ = ("root", "_stack")

    def __init__(self) -> None:
        self.root = SpanNode("root")
        self._stack: list[SpanNode] = [self.root]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _enter(self, name: str) -> SpanNode:
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = SpanNode(name)
        self._stack.append(node)
        return node

    def _exit(self, node: SpanNode) -> None:
        # Tolerate exceptions that unwound deeper spans without exiting.
        while self._stack[-1] is not node and len(self._stack) > 1:
            self._stack.pop()
        if len(self._stack) > 1:
            self._stack.pop()

    def span(self, name: str) -> _SpanContext:
        """``with spans.span("compile"):`` — time the block as a child
        of the currently open span and nest inner spans under it."""
        return _SpanContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into leaf ``name`` under the currently
        open span (no push — inner spans will not nest under it)."""
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = SpanNode(name)
        node.count += 1
        node.seconds += seconds

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> list[dict]:
        """The top-level spans as JSON-able dicts."""
        return [child.to_dict() for child in self.root.children.values()]

    def node(self, *path: str) -> SpanNode | None:
        """Look up a node by name path from the root, or ``None``."""
        node = self.root
        for name in path:
            node = node.children.get(name)
            if node is None:
                return None
        return node

    def render(self) -> str:
        """The span tree as indented text (see ``repro trace``)."""
        lines: list[str] = []
        width = max(
            (
                _max_label(child, 0)
                for child in self.root.children.values()
            ),
            default=0,
        )
        for child in self.root.children.values():
            _render_node(child, "", True, lines, width, top=True)
        return "\n".join(lines)


def _max_label(node: SpanNode, depth: int) -> int:
    length = depth * 3 + len(node.name)
    for child in node.children.values():
        length = max(length, _max_label(child, depth + 1))
    return length


def _render_node(
    node: SpanNode,
    prefix: str,
    last: bool,
    lines: list[str],
    width: int,
    top: bool = False,
) -> None:
    if top:
        label = node.name
        child_prefix = ""
    else:
        connector = "└─ " if last else "├─ "
        label = prefix + connector + node.name
        child_prefix = prefix + ("   " if last else "│  ")
    lines.append(
        f"{label:<{width + 3}} {node.seconds * 1e3:10.2f} ms"
        f"  ×{node.count}"
    )
    children = list(node.children.values())
    for position, child in enumerate(children):
        _render_node(
            child,
            child_prefix,
            position == len(children) - 1,
            lines,
            width,
        )
