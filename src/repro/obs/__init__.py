"""repro.obs — the telemetry spine: metrics, phase spans, decision traces.

Three pillars, one switch:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  histograms and timers, with process-safe ``snapshot()``/``merge()``
  so :class:`~repro.batch.runner.BatchRunner` workers ship their
  metrics back to the parent for aggregation;
* :class:`~repro.obs.spans.SpanRecorder` — hierarchical wall-time
  phase spans (``compile`` → ``schedule-gates`` →
  ``decide``/``reorder``/``route``; ``optimize`` → per-pass →
  ``verify-splice``) aggregated into a small tree;
* :class:`~repro.obs.trace.TraceRecorder` — structured, versioned
  decision events (see :mod:`repro.obs.trace` for the catalogue).

**Disabled by default, no-op fast path.**  The switch is the
module-level :data:`_active` observation: :func:`active` returns it (or
``None``), and every instrumentation site in the compiler, router,
replay engine, pass manager and batch runner follows the pattern::

    obs = active()
    ...
    if obs is not None:
        obs.metrics.inc("compile.reorders")

so the disabled cost is one function call per operation *sequence* (not
per op) plus pointer comparisons in loops — gated at ≤5% on the
compile hot path by ``benchmarks/bench_compile.py``.  Instrumentation
is inert by construction: it only ever *reads* compiler state, so
schedules are bit-identical with observability off and on (asserted by
``tests/test_obs.py`` and the bench fingerprint gate).

Enable for a scope with :func:`observe`::

    from repro import obs

    with obs.observe(trace=True) as observation:
        result = compile_circuit(circuit, machine)
    print(observation.spans.render())
    observation.trace.write_jsonl("decisions.jsonl")

or imperatively with :func:`enable`/:func:`disable` (the CLI's
``repro trace`` and ``--metrics-out`` do the former).
"""

from __future__ import annotations

from contextlib import contextmanager

from .registry import HistogramSummary, MetricsRegistry
from .spans import SpanNode, SpanRecorder
from .trace import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    TraceRecorder,
    read_jsonl,
    validate_event,
    validate_stream,
)

__all__ = [
    "EVENT_FIELDS",
    "HistogramSummary",
    "MetricsRegistry",
    "Observation",
    "SCHEMA_VERSION",
    "SpanNode",
    "SpanRecorder",
    "TraceRecorder",
    "active",
    "collect",
    "disable",
    "enable",
    "enabled",
    "export_json",
    "observe",
    "read_jsonl",
    "validate_event",
    "validate_stream",
]


class Observation:
    """One observation scope: a registry, a span tree and (optionally)
    a decision-trace recorder."""

    __slots__ = ("metrics", "spans", "trace")

    def __init__(self, trace: bool = False) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder()
        self.trace: TraceRecorder | None = (
            TraceRecorder() if trace else None
        )


#: The active observation, or None when observability is disabled (the
#: default).  Instrumentation reads this through :func:`active` once
#: per sequence and skips itself entirely on None.
_active: Observation | None = None


def active() -> Observation | None:
    """The active observation, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    """True when an observation is active."""
    return _active is not None


def enable(trace: bool = False) -> Observation:
    """Install (and return) a fresh active observation."""
    global _active
    _active = Observation(trace=trace)
    return _active


def disable() -> Observation | None:
    """Deactivate observability; returns the observation that was
    active (so late readers can still export it), or ``None``."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def observe(trace: bool = False):
    """Scoped enablement: activates a fresh observation for the block
    and restores the previous state (usually: disabled) afterwards."""
    global _active
    previous = _active
    observation = Observation(trace=trace)
    _active = observation
    try:
        yield observation
    finally:
        _active = previous


@contextmanager
def collect():
    """Route metrics into a fresh registry for the block; yields it.

    This is the batch-worker protocol: each job executes under
    ``collect()`` and ships ``registry.snapshot()`` back with its
    result, and the parent merges every shipped snapshot into its own
    registry — so serial and parallel runs of the same jobs aggregate
    to identical counters.  When no observation is active a
    metrics-only one is activated for the block; when one is active its
    spans/trace keep recording and only the metrics sink is swapped.
    """
    global _active
    previous = _active
    observation = Observation()
    if previous is not None:
        observation.spans = previous.spans
        observation.trace = previous.trace
    _active = observation
    try:
        yield observation.metrics
    finally:
        _active = previous


def export_json(observation: Observation) -> dict:
    """The observation as one JSON-able document (the ``--metrics-out``
    / ``repro trace --json`` artifact shape)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "metrics": observation.metrics.snapshot(),
        "spans": observation.spans.to_dict(),
        "trace_events": (
            len(observation.trace) if observation.trace is not None else None
        ),
    }
