"""The decision-trace recorder: structured JSONL compiler events.

Every event is a flat JSON object with a three-field envelope —
``v`` (schema version), ``seq`` (emission order, 0-based), ``event``
(type name) — plus the per-type payload fields documented in
:data:`EVENT_FIELDS`.  The schema is versioned: any change to an
existing event's required fields bumps :data:`SCHEMA_VERSION`, and
:func:`validate_event` is the executable form of the contract (the
round-trip test in ``tests/test_obs.py`` holds emitted streams to it).

Event catalogue (v1):

``gate_considered``
    The compiler reached a two-qubit gate whose ions sit in different
    traps and entered the decision sequence.
``move_scores``
    The direction scores of the active gate (Section III-A2), one per
    candidate destination trap.
``shuttle_decision``
    The direction actually taken, after capacity guards and the
    full-destination flip.
``eviction``
    The re-balancer moved an ion out of a full trap; ``kind`` is
    ``traffic-block`` (Fig. 7 resolution), ``cheap`` (single-hop
    pre-decision eviction) or ``both-full`` (last-resort eviction when
    neither gate trap has room).
``reorder_splice``
    Algorithm 1 hoisted a candidate gate in front of the active gate.
``pass_candidate``
    The pass manager accepted or rolled back one pass's rewrites;
    ``reason`` explains rejections (``fidelity-regressed`` /
    ``shuttles-increased`` / ``applied``).
``splice_verify``
    The incremental engine verified one candidate splice; ``mode``
    records the fast path taken — ``rejoin`` (suffix inherited),
    ``reconverged`` (suffix replay exited at a matching checkpoint),
    ``replayed`` (scanned to the end) or ``scored`` (observer-carrying
    replay, no suffix skipping) — and ``rejoin`` the stream index the
    scan stopped at (``null`` when it ran to the end).

Events are recorded in memory (the recorder is enabled-only, like the
rest of :mod:`repro.obs`) and exported with :meth:`TraceRecorder.write_jsonl`.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: Version of the event envelope + payload contract below.
SCHEMA_VERSION = 1

#: Required payload fields per event type (the envelope fields
#: ``v``/``seq``/``event`` are required on every record).
EVENT_FIELDS: dict[str, frozenset[str]] = {
    "gate_considered": frozenset(
        {"gate", "qubits", "traps", "pos", "layer"}
    ),
    "move_scores": frozenset(
        {"gate", "score_a_to_b", "score_b_to_a", "favoured_dst"}
    ),
    "shuttle_decision": frozenset({"gate", "ion", "src", "dst", "flipped"}),
    "eviction": frozenset({"trap", "ion", "dst", "kind"}),
    "reorder_splice": frozenset(
        {"active_gate", "candidate_gate", "active_pos", "candidate_pos"}
    ),
    "pass_candidate": frozenset(
        {"pass", "rewrites", "accepted", "reason", "shuttles_removed"}
    ),
    "splice_verify": frozenset(
        {"start", "end", "window", "ok", "mode", "rejoin"}
    ),
}

#: Envelope fields present on every record.
ENVELOPE_FIELDS = frozenset({"v", "seq", "event"})


def validate_event(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` satisfies the v1 schema."""
    missing = ENVELOPE_FIELDS - record.keys()
    if missing:
        raise ValueError(f"event missing envelope fields {sorted(missing)}")
    if record["v"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {record['v']!r} "
            f"(this reader understands v{SCHEMA_VERSION})"
        )
    event = record["event"]
    required = EVENT_FIELDS.get(event)
    if required is None:
        raise ValueError(f"unknown event type {event!r}")
    missing = required - record.keys()
    if missing:
        raise ValueError(
            f"event {event!r} missing fields {sorted(missing)}"
        )


class TraceRecorder:
    """Collects decision events for one observation."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: str, **fields: Any) -> dict:
        """Record one event; returns the full record."""
        record = {"v": SCHEMA_VERSION, "seq": len(self.events), "event": event}
        record.update(fields)
        self.events.append(record)
        return record

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> dict[str, int]:
        """Events per type, in first-seen order."""
        out: dict[str, int] = {}
        for record in self.events:
            name = record["event"]
            out[name] = out.get(name, 0) + 1
        return out

    def write_jsonl(self, path: str) -> int:
        """Write the event stream as JSON Lines; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.events:
                handle.write(json.dumps(record, sort_keys=False))
                handle.write("\n")
        return len(self.events)


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL event stream (no validation; see :func:`validate_event`)."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def validate_stream(events: Iterable[dict]) -> int:
    """Validate every event of a stream; returns how many passed."""
    count = 0
    for record in events:
        validate_event(record)
        count += 1
    return count
