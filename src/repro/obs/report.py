"""Text rendering of an observation: the ``repro trace`` report body.

Layout: span tree (wall-time breakdown), then the metrics registry
(counters, then histogram summaries), then the decision-event digest —
per-type counts plus the first N events formatted one per line.
"""

from __future__ import annotations

import json

from . import Observation


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def render_metrics(observation: Observation) -> str:
    """Counters and histogram summaries as aligned text."""
    lines: list[str] = []
    metrics = observation.metrics
    names = sorted(metrics.counters)
    width = max((len(n) for n in names), default=0)
    for name in names:
        lines.append(
            f"  {name:<{width}}  {_format_value(metrics.counters[name])}"
        )
    hist_names = sorted(metrics.histograms)
    if hist_names and names:
        lines.append("")
    width = max((len(n) for n in hist_names), default=0)
    for name in hist_names:
        hist = metrics.histograms[name]
        quantiles = "  ".join(
            f"{label}={value:.6f}"
            for label, value in hist.percentiles().items()
        )
        lines.append(
            f"  {name:<{width}}  n={hist.count}"
            f"  sum={hist.total:.4f}  mean={hist.mean:.6f}  {quantiles}"
        )
    return "\n".join(lines) if lines else "  (no metrics recorded)"


def _format_event(record: dict) -> str:
    payload = {
        key: value
        for key, value in record.items()
        if key not in ("v", "seq", "event")
    }
    fields = " ".join(f"{k}={json.dumps(v)}" for k, v in payload.items())
    return f"  #{record['seq']:<6} {record['event']:<16} {fields}"


def render_events(observation: Observation, limit: int = 12) -> str:
    """Per-type counts plus the first ``limit`` events."""
    trace = observation.trace
    if trace is None:
        return "  (decision tracing was not enabled)"
    if not trace.events:
        return "  (no decision events recorded)"
    lines: list[str] = []
    counts = trace.counts()
    width = max(len(name) for name in counts)
    for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<{width}}  ×{count}")
    shown = trace.events[:limit]
    lines.append("")
    lines.append(
        f"  first {len(shown)} of {len(trace.events)} events "
        f"(schema v{shown[0]['v']}):"
    )
    for record in shown:
        lines.append(_format_event(record))
    return "\n".join(lines)


def render_report(
    observation: Observation, title: str, events: int = 12
) -> str:
    """The full ``repro trace`` text report."""
    sections = [
        title,
        "",
        "span tree (wall time):",
        observation.spans.render() or "  (no spans recorded)",
        "",
        "metrics:",
        render_metrics(observation),
        "",
        "decision events:",
        render_events(observation, events),
    ]
    return "\n".join(sections)
