"""The metrics registry: counters, gauges, histograms, timers.

One :class:`MetricsRegistry` holds every metric recorded while an
observation is active (see :mod:`repro.obs`).  Design constraints, in
order:

* **Zero cost when disabled.**  Nothing in this module is consulted on
  the disabled path — instrumentation sites guard on
  :func:`repro.obs.active` returning ``None`` and skip the call
  entirely, so the registry itself never needs a fast path.
* **Process safety by value, not by lock.**  A registry is plain
  single-process mutable state; cross-process aggregation works by
  shipping :meth:`snapshot` dicts (pure JSON-able values, picklable)
  over the pool boundary and folding them in with :meth:`merge`.
  ``merge(a); merge(b)`` equals ``merge(b); merge(a)`` for counters and
  histograms, so worker completion order cannot change aggregates.
* **Small surface.**  Four metric kinds only:

  - *counter* — monotone float/int, :meth:`inc`;
  - *gauge* — last-written value, :meth:`set_gauge`;
  - *histogram* — count/sum/min/max summary, :meth:`observe`;
  - *timer* — a histogram of seconds fed by the :meth:`timer` context
    manager (or an explicit ``observe(name, seconds)``).

Merge semantics (DESIGN.md §9): counters add, histograms combine
(counts and sums add, min/max widen, bucket counts add), gauges take
the incoming value — a gauge is "last observation wins", and the
merging side is by definition observing later.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter

#: Fixed quantile-bucket boundaries shared by every histogram: four
#: log-spaced buckets per octave (upper edges 2**(i/4) apart, ~19%
#: wide) from 1 µs up to ~2147 s.  Bucket ``i`` counts values in
#: ``(BUCKET_BOUNDS[i-1], BUCKET_BOUNDS[i]]`` (bucket 0 also absorbs
#: everything ≤ 1 µs, a final overflow bucket everything beyond the
#: last edge), so a quantile read off the merged counts is exact to
#: one bucket width.  The boundaries are a module constant — never
#: serialized — which is what makes snapshots mergeable across
#: processes and across releases (DESIGN.md §10).
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * 2.0 ** (i / 4.0) for i in range(124)
)

#: The quantiles summarized by :meth:`HistogramSummary.to_dict`.
SUMMARY_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class HistogramSummary:
    """count/sum/min/max + fixed-bucket quantile summary of a stream.

    Quantiles are bucketed, not exact: :meth:`observe` drops each value
    into one of the :data:`BUCKET_BOUNDS` buckets, and
    :meth:`quantile` answers with that bucket's upper edge clamped into
    ``[min, max]``.  Because bucket counts add, quantiles *survive*
    :meth:`merge_dict` — merging any partition of a value stream in
    any order yields identical percentiles (unlike a mean-of-means).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: Sparse bucket-index -> count map (indices into
        #: :data:`BUCKET_BOUNDS`; ``len(BUCKET_BOUNDS)`` = overflow).
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(BUCKET_BOUNDS, value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the bucketed distribution.

        Answers the upper edge of the bucket holding the rank-``q``
        observation, clamped into ``[min, max]`` — exact for a
        single-valued stream, within one bucket width (~19%) otherwise.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                if index < len(BUCKET_BOUNDS):
                    edge = BUCKET_BOUNDS[index]
                else:
                    edge = self.max
                return min(max(edge, self.min), self.max)
        return self.max

    def percentiles(self) -> dict:
        """The :data:`SUMMARY_QUANTILES` as a plain dict."""
        return {name: self.quantile(q) for name, q in SUMMARY_QUANTILES}

    def to_dict(self) -> dict:
        """Plain-JSON summary (``min``/``max``/``buckets``/percentiles
        omitted while empty).  Bucket keys are strings so the payload
        round-trips through JSON unchanged."""
        out = {"count": self.count, "sum": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out.update(self.percentiles())
            out["buckets"] = {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            }
        return out

    def merge_dict(self, data: dict) -> None:
        """Fold a :meth:`to_dict` payload into this summary.

        Bucket counts add (string or int keys accepted), so quantiles
        of the merged summary equal quantiles of the concatenated
        streams regardless of merge order.  Payloads recorded before
        buckets existed merge their count/sum/min/max only.
        """
        self.count += data["count"]
        self.total += data["sum"]
        if "min" in data and data["min"] < self.min:
            self.min = data["min"]
        if "max" in data and data["max"] > self.max:
            self.max = data["max"]
        for key, bucket_count in data.get("buckets", {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramSummary(count={self.count}, sum={self.total:.6g})"
        )


class _Timer:
    """Context manager recording its wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(self._name, perf_counter() - self._start)


class MetricsRegistry:
    """In-process metric store with snapshot/merge aggregation."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("phase.x_seconds"): ...`` — records the
        block's wall time into histogram ``name``."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def total(self, name: str) -> float:
        """Sum of histogram ``name`` (0.0 when never observed) — the
        phase-total accessor used by ``repro sweep``'s summary."""
        hist = self.histograms.get(name)
        return hist.total if hist is not None else 0.0

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of every metric: JSON-able and picklable,
        suitable for crossing a process boundary."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, histograms combine, gauges take the snapshot's
        value; merging the per-job snapshots of any worker partition in
        any order yields the same counters and histogram counts/sums as
        a serial run of the same jobs.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramSummary()
            hist.merge_dict(data)

    def reset(self) -> None:
        """Drop every recorded metric."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms)"
        )
