"""The metrics registry: counters, gauges, histograms, timers.

One :class:`MetricsRegistry` holds every metric recorded while an
observation is active (see :mod:`repro.obs`).  Design constraints, in
order:

* **Zero cost when disabled.**  Nothing in this module is consulted on
  the disabled path — instrumentation sites guard on
  :func:`repro.obs.active` returning ``None`` and skip the call
  entirely, so the registry itself never needs a fast path.
* **Process safety by value, not by lock.**  A registry is plain
  single-process mutable state; cross-process aggregation works by
  shipping :meth:`snapshot` dicts (pure JSON-able values, picklable)
  over the pool boundary and folding them in with :meth:`merge`.
  ``merge(a); merge(b)`` equals ``merge(b); merge(a)`` for counters and
  histograms, so worker completion order cannot change aggregates.
* **Small surface.**  Four metric kinds only:

  - *counter* — monotone float/int, :meth:`inc`;
  - *gauge* — last-written value, :meth:`set_gauge`;
  - *histogram* — count/sum/min/max summary, :meth:`observe`;
  - *timer* — a histogram of seconds fed by the :meth:`timer` context
    manager (or an explicit ``observe(name, seconds)``).

Merge semantics (DESIGN.md §9): counters add, histograms combine
(counts and sums add, min/max widen), gauges take the incoming value —
a gauge is "last observation wins", and the merging side is by
definition observing later.
"""

from __future__ import annotations

from time import perf_counter


class HistogramSummary:
    """count/sum/min/max summary of an observed value stream."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Plain-JSON summary (``min``/``max`` omitted while empty)."""
        out = {"count": self.count, "sum": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    def merge_dict(self, data: dict) -> None:
        """Fold a :meth:`to_dict` payload into this summary."""
        self.count += data["count"]
        self.total += data["sum"]
        if "min" in data and data["min"] < self.min:
            self.min = data["min"]
        if "max" in data and data["max"] > self.max:
            self.max = data["max"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramSummary(count={self.count}, sum={self.total:.6g})"
        )


class _Timer:
    """Context manager recording its wall time into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(self._name, perf_counter() - self._start)


class MetricsRegistry:
    """In-process metric store with snapshot/merge aggregation."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("phase.x_seconds"): ...`` — records the
        block's wall time into histogram ``name``."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def total(self, name: str) -> float:
        """Sum of histogram ``name`` (0.0 when never observed) — the
        phase-total accessor used by ``repro sweep``'s summary."""
        hist = self.histograms.get(name)
        return hist.total if hist is not None else 0.0

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of every metric: JSON-able and picklable,
        suitable for crossing a process boundary."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, histograms combine, gauges take the snapshot's
        value; merging the per-job snapshots of any worker partition in
        any order yields the same counters and histogram counts/sums as
        a serial run of the same jobs.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramSummary()
            hist.merge_dict(data)

    def reset(self) -> None:
        """Drop every recorded metric."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms)"
        )
