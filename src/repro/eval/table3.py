"""Table III regeneration: compilation-time overhead.

Wall-clock compile times of both compilers on this host.  Absolute
numbers depend on the machine (the paper used an i7-9700K); the shape
to check is that the optimized compiler costs more time but remains
tractable (the paper: seconds to tens of seconds, under a minute even
for 3000-4000 gate circuits).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import PAPER_TABLE3_SECONDS
from .harness import BenchmarkComparison
from .metrics import aggregate
from .report import render_markdown_table, render_table


@dataclass
class Table3Row:
    """One row of Table III."""

    benchmark: str
    optimized_seconds: str
    baseline_seconds: str
    overhead_seconds: str
    paper_optimized: float | None
    paper_baseline: float | None


def build_table3(comparisons: list[BenchmarkComparison]) -> list[Table3Row]:
    """Collapse a suite run into Table III rows."""
    rows: list[Table3Row] = []
    randoms = [c for c in comparisons if c.is_random]
    for comparison in comparisons:
        if comparison.is_random:
            continue
        paper = PAPER_TABLE3_SECONDS.get(comparison.circuit_name)
        rows.append(
            Table3Row(
                benchmark=comparison.circuit_name,
                optimized_seconds=f"{comparison.optimized.compile_time:.3f}",
                baseline_seconds=f"{comparison.baseline.compile_time:.3f}",
                overhead_seconds=f"{comparison.compile_time_overhead:.3f}",
                paper_optimized=paper[0] if paper else None,
                paper_baseline=paper[1] if paper else None,
            )
        )
    if randoms:
        opt = aggregate([c.optimized.compile_time for c in randoms])
        base = aggregate([c.baseline.compile_time for c in randoms])
        over = aggregate([c.compile_time_overhead for c in randoms])
        paper = PAPER_TABLE3_SECONDS.get("Random")
        rows.append(
            Table3Row(
                benchmark=f"Random (n={len(randoms)})",
                optimized_seconds=f"{opt.mean:.3f} ({opt.std:.3f})",
                baseline_seconds=f"{base.mean:.3f}",
                overhead_seconds=f"{over.mean:.3f} ({over.std:.3f})",
                paper_optimized=paper[0] if paper else None,
                paper_baseline=paper[1] if paper else None,
            )
        )
    return rows


def render_table3(
    comparisons: list[BenchmarkComparison], markdown: bool = False
) -> str:
    """Render Table III as text or markdown."""
    rows = build_table3(comparisons)
    headers = [
        "Benchmark",
        "This work (s)",
        "[7] (s)",
        "Delta(^) (s)",
        "Paper (work / [7]) (s)",
    ]
    cells = [
        [
            row.benchmark,
            row.optimized_seconds,
            row.baseline_seconds,
            row.overhead_seconds,
            (
                f"{row.paper_optimized} / {row.paper_baseline}"
                if row.paper_optimized is not None
                else "-"
            ),
        ]
        for row in rows
    ]
    renderer = render_markdown_table if markdown else render_table
    return renderer(headers, cells)
