"""Ablation studies (DESIGN.md experiments E4 and E5).

E4 — the gate-proximity design-parameter study backing the paper's
choice of 6 (Section III-A3: "The distance should not be too low ...
and should not be too high"), extended with the distance-metric and
score-decay variants this reproduction documents.

E5 — per-heuristic ablation: each of the paper's three optimizations
(plus this reproduction's capacity guard) toggled on top of the
baseline, and removed from the full configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.machine import QCCDMachine
from ..arch.presets import l6_machine
from ..circuits.circuit import Circuit
from ..compiler.compiler import QCCDCompiler
from ..compiler.config import CompilerConfig
from ..compiler.mapping import greedy_initial_mapping
from .metrics import aggregate, reduction_percent
from .report import render_table

#: Proximity values swept in E4 (None = unbounded look-ahead).
PROXIMITY_SWEEP = (0, 1, 2, 4, 6, 8, 12, 24, None)


@dataclass
class SweepPoint:
    """Aggregate shuttle count for one configuration over a circuit set."""

    label: str
    mean_shuttles: float
    std_shuttles: float
    mean_reduction_percent: float


def _run_config(
    circuits: list[Circuit],
    machine: QCCDMachine,
    config: CompilerConfig,
    baselines: list[int],
    label: str,
) -> SweepPoint:
    shuttles = []
    reductions = []
    for circuit, baseline in zip(circuits, baselines):
        result = QCCDCompiler(machine, config).compile(
            circuit, initial_chains=greedy_initial_mapping(circuit, machine)
        )
        shuttles.append(float(result.num_shuttles))
        reductions.append(reduction_percent(baseline, result.num_shuttles))
    agg = aggregate(shuttles)
    return SweepPoint(
        label=label,
        mean_shuttles=agg.mean,
        std_shuttles=agg.std,
        mean_reduction_percent=aggregate(reductions).mean,
    )


def _baselines(
    circuits: list[Circuit], machine: QCCDMachine
) -> list[int]:
    config = CompilerConfig.baseline()
    return [
        QCCDCompiler(machine, config)
        .compile(c, initial_chains=greedy_initial_mapping(c, machine))
        .num_shuttles
        for c in circuits
    ]


def proximity_sweep(
    circuits: list[Circuit],
    machine: QCCDMachine | None = None,
    values: tuple = PROXIMITY_SWEEP,
    metric: str = "layers",
) -> list[SweepPoint]:
    """E4: shuttles vs the gate-proximity parameter."""
    if machine is None:
        machine = l6_machine()
    baselines = _baselines(circuits, machine)
    points = []
    for proximity in values:
        config = CompilerConfig.optimized().variant(
            proximity=proximity, proximity_metric=metric
        )
        label = "inf" if proximity is None else str(proximity)
        points.append(
            _run_config(circuits, machine, config, baselines, label)
        )
    return points


def heuristic_ablation(
    circuits: list[Circuit],
    machine: QCCDMachine | None = None,
) -> list[SweepPoint]:
    """E5: each heuristic added to the baseline and removed from the full
    configuration."""
    if machine is None:
        machine = l6_machine()
    baselines = _baselines(circuits, machine)
    base = CompilerConfig.baseline()
    full = CompilerConfig.optimized()
    variants: list[tuple[str, CompilerConfig]] = [
        ("baseline [7]", base),
        (
            "+future-ops",
            base.variant(shuttle_policy="future-ops", proximity=6),
        ),
        ("+reorder", base.variant(reorder=True)),
        ("+nn-rebalance", base.variant(rebalance="nearest")),
        ("+max-score-ion", base.variant(ion_selection="max-score")),
        ("full (this work)", full),
        ("full -reorder", full.variant(reorder=False)),
        ("full -nn-rebalance", full.variant(rebalance="lowest-index")),
        ("full -max-score-ion", full.variant(ion_selection="chain-head")),
        ("full -capacity-guard", full.variant(capacity_guard=0)),
        ("full +score-decay", full.variant(score_decay=0.7)),
        ("full +cheap-evict", full.variant(cheap_evict=True)),
        ("full, gate-metric", full.variant(proximity_metric="gates")),
    ]
    return [
        _run_config(circuits, machine, config, baselines, label)
        for label, config in variants
    ]


def render_sweep(points: list[SweepPoint], value_header: str) -> str:
    """Render a sweep as an aligned text table."""
    return render_table(
        [value_header, "mean shuttles", "std", "mean reduction vs [7]"],
        [
            [
                p.label,
                f"{p.mean_shuttles:.1f}",
                f"{p.std_shuttles:.1f}",
                f"{p.mean_reduction_percent:.1f}%",
            ]
            for p in points
        ],
    )
