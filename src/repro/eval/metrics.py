"""Metrics shared by the evaluation harness."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def reduction_percent(baseline: float, optimized: float) -> float:
    """The paper's %Delta column: 100 * (baseline - optimized) / baseline."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - optimized) / baseline


def improvement_factor(
    log_fidelity_optimized: float, log_fidelity_baseline: float
) -> float:
    """Fig. 8's ``X`` metric: F_optimized / F_baseline, computed in logs."""
    return math.exp(log_fidelity_optimized - log_fidelity_baseline)


@dataclass(frozen=True)
class Aggregate:
    """Mean and sample standard deviation of a sample."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.1f} ({self.std:.1f})"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Mean / sample-std of a sequence (std 0 for < 2 samples)."""
    n = len(values)
    if n == 0:
        return Aggregate(0.0, 0.0, 0)
    mean = sum(values) / n
    if n < 2:
        return Aggregate(mean, 0.0, n)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Aggregate(mean, math.sqrt(variance), n)
