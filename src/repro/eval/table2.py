"""Table II regeneration: reduction in the number of shuttles.

One row per NISQ benchmark plus an aggregate row for the random
ensemble (mean with standard deviation in parentheses, as the paper
tabulates it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.suite import PAPER_TABLE2_SHUTTLES
from .harness import BenchmarkComparison
from .metrics import aggregate, reduction_percent
from .report import render_markdown_table, render_table


@dataclass
class Table2Row:
    """One row of Table II."""

    benchmark: str
    qubits: str
    two_qubit_gates: str
    baseline_shuttles: str
    optimized_shuttles: str
    delta: str
    delta_percent: str
    paper_baseline: int | None = None
    paper_optimized: int | None = None

    def as_cells(self, with_paper: bool = False) -> list[str]:
        cells = [
            self.benchmark,
            self.qubits,
            self.two_qubit_gates,
            self.baseline_shuttles,
            self.optimized_shuttles,
            self.delta,
            self.delta_percent,
        ]
        if with_paper:
            paper = (
                f"{self.paper_baseline} -> {self.paper_optimized}"
                if self.paper_baseline is not None
                else "-"
            )
            cells.append(paper)
        return cells


HEADERS = [
    "Benchmark",
    "Qubits",
    "2Q gates",
    "[7]",
    "This Work",
    "Delta(v)",
    "%Delta",
]

HEADERS_WITH_PAPER = HEADERS + ["Paper ([7] -> work)"]


def build_table2(comparisons: list[BenchmarkComparison]) -> list[Table2Row]:
    """Collapse a suite run into Table II rows."""
    rows: list[Table2Row] = []
    randoms = [c for c in comparisons if c.is_random]
    for comparison in comparisons:
        if comparison.is_random:
            continue
        paper = PAPER_TABLE2_SHUTTLES.get(comparison.circuit_name)
        rows.append(
            Table2Row(
                benchmark=comparison.circuit_name,
                qubits=str(comparison.num_qubits),
                two_qubit_gates=str(comparison.num_two_qubit_gates),
                baseline_shuttles=str(comparison.baseline.num_shuttles),
                optimized_shuttles=str(comparison.optimized.num_shuttles),
                delta=str(comparison.shuttle_delta),
                delta_percent=f"{comparison.shuttle_reduction_percent:.2f}%",
                paper_baseline=paper[0] if paper else None,
                paper_optimized=paper[1] if paper else None,
            )
        )
    if randoms:
        gates = aggregate([c.num_two_qubit_gates for c in randoms])
        base = aggregate([c.baseline.num_shuttles for c in randoms])
        opt = aggregate([c.optimized.num_shuttles for c in randoms])
        delta = aggregate([float(c.shuttle_delta) for c in randoms])
        pct = aggregate(
            [c.shuttle_reduction_percent for c in randoms]
        )
        qubit_lo = min(c.num_qubits for c in randoms)
        qubit_hi = max(c.num_qubits for c in randoms)
        paper = PAPER_TABLE2_SHUTTLES.get("Random")
        rows.append(
            Table2Row(
                benchmark=f"Random (n={len(randoms)})",
                qubits=f"{qubit_lo}-{qubit_hi}",
                two_qubit_gates=f"{gates.mean:.0f} ({gates.std:.0f})",
                baseline_shuttles=f"{base.mean:.0f}",
                optimized_shuttles=f"{opt.mean:.0f} ({opt.std:.0f})",
                delta=f"{delta.mean:.0f} ({delta.std:.0f})",
                delta_percent=f"{pct.mean:.0f}% ({pct.std:.0f})",
                paper_baseline=paper[0] if paper else None,
                paper_optimized=paper[1] if paper else None,
            )
        )
    return rows


def render_table2(
    comparisons: list[BenchmarkComparison],
    with_paper: bool = True,
    markdown: bool = False,
) -> str:
    """Render Table II as text (or markdown for EXPERIMENTS.md)."""
    rows = build_table2(comparisons)
    headers = HEADERS_WITH_PAPER if with_paper else HEADERS
    cells = [row.as_cells(with_paper) for row in rows]
    renderer = render_markdown_table if markdown else render_table
    return renderer(headers, cells)


def overall_reduction(comparisons: list[BenchmarkComparison]) -> float:
    """Average %Delta over every circuit in the suite (paper: ~33%,
    'average ~ 33%' across 125 circuits)."""
    values = [c.shuttle_reduction_percent for c in comparisons]
    return aggregate(values).mean if values else 0.0


def wins_everywhere(comparisons: list[BenchmarkComparison]) -> bool:
    """The paper's stability claim: fewer shuttles on *every* circuit."""
    return all(
        c.optimized.num_shuttles <= c.baseline.num_shuttles
        for c in comparisons
    )
