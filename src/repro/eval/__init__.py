"""Evaluation harness: Table II, Table III, Fig. 8, and ablations."""

from .ablation import (
    PROXIMITY_SWEEP,
    SweepPoint,
    heuristic_ablation,
    proximity_sweep,
    render_sweep,
)
from .exact import ExactSolverError, optimal_shuttle_count
from .figure8 import Fig8Bar, build_figure8, render_figure8
from .harness import BenchmarkComparison, compare, run_suite
from .metrics import (
    Aggregate,
    aggregate,
    improvement_factor,
    reduction_percent,
)
from .report import (
    render_bar_chart,
    render_markdown_table,
    render_optimization_table,
    render_table,
)
from .table2 import (
    Table2Row,
    build_table2,
    overall_reduction,
    render_table2,
    wins_everywhere,
)
from .table3 import Table3Row, build_table3, render_table3

__all__ = [
    "Aggregate",
    "BenchmarkComparison",
    "ExactSolverError",
    "Fig8Bar",
    "PROXIMITY_SWEEP",
    "SweepPoint",
    "Table2Row",
    "Table3Row",
    "aggregate",
    "build_figure8",
    "build_table2",
    "build_table3",
    "compare",
    "heuristic_ablation",
    "improvement_factor",
    "optimal_shuttle_count",
    "overall_reduction",
    "proximity_sweep",
    "reduction_percent",
    "render_bar_chart",
    "render_figure8",
    "render_markdown_table",
    "render_optimization_table",
    "render_sweep",
    "render_table",
    "render_table2",
    "render_table3",
    "run_suite",
    "wins_everywhere",
]
