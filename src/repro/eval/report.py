"""Plain-text table and bar-chart rendering for the harness output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-markdown table (used to update EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


#: Column headers of the optimized-vs-raw pass report.
OPTIMIZATION_HEADERS = [
    "circuit",
    "raw shuttles",
    "opt shuttles",
    "%delta",
    "raw log10 F",
    "opt log10 F",
]


def render_optimization_table(
    rows: Sequence[Sequence[object]], markdown: bool = False
) -> str:
    """Render per-circuit optimized-vs-raw shuttle and fidelity columns.

    Each row is ``(name, raw_shuttles, optimized_shuttles,
    raw_log10_fidelity, optimized_log10_fidelity)``; the %delta column
    (shuttles removed, the paper's Table II convention) is derived.
    """
    from .metrics import reduction_percent

    cells = []
    for name, raw_shuttles, opt_shuttles, raw_logf, opt_logf in rows:
        cells.append(
            [
                name,
                str(raw_shuttles),
                str(opt_shuttles),
                f"{reduction_percent(raw_shuttles, opt_shuttles):.2f}",
                f"{raw_logf:.3f}",
                f"{opt_logf:.3f}",
            ]
        )
    renderer = render_markdown_table if markdown else render_table
    return renderer(OPTIMIZATION_HEADERS, cells)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (the Fig. 8 rendering)."""
    if not labels:
        return "(no data)"
    peak = max(values) if max(values) > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(
            f"{label.ljust(label_width)}  {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)
