"""Plain-text table and bar-chart rendering for the harness output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-markdown table (used to update EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (the Fig. 8 rendering)."""
    if not labels:
        return "(no data)"
    peak = max(values) if max(values) > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(
            f"{label.ljust(label_width)}  {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)
