"""Fig. 8 regeneration: program-fidelity improvement.

Simulates both compiled schedules under the identical heating/fidelity
model and reports ``F_thiswork / F_[7]`` per benchmark — the paper's
``X`` factors.  The random ensemble is reported as a geometric mean
(the quantity is a ratio).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bench.suite import PAPER_FIG8_IMPROVEMENT
from .harness import BenchmarkComparison
from .report import render_bar_chart, render_markdown_table, render_table


@dataclass
class Fig8Bar:
    """One bar of Fig. 8."""

    benchmark: str
    improvement: float
    paper_improvement: float | None
    baseline_log10: float
    optimized_log10: float


def build_figure8(comparisons: list[BenchmarkComparison]) -> list[Fig8Bar]:
    """Collapse a simulated suite run into Fig. 8 bars."""
    bars: list[Fig8Bar] = []
    randoms = [c for c in comparisons if c.is_random]
    for comparison in comparisons:
        if comparison.is_random:
            continue
        assert comparison.baseline_report is not None
        assert comparison.optimized_report is not None
        bars.append(
            Fig8Bar(
                benchmark=comparison.circuit_name,
                improvement=comparison.fidelity_improvement,
                paper_improvement=PAPER_FIG8_IMPROVEMENT.get(
                    comparison.circuit_name
                ),
                baseline_log10=comparison.baseline_report.log10_fidelity,
                optimized_log10=comparison.optimized_report.log10_fidelity,
            )
        )
    if randoms:
        # Geometric mean of the ratios.
        log_sum = sum(
            math.log(c.fidelity_improvement) for c in randoms
        )
        geo = math.exp(log_sum / len(randoms))
        bars.append(
            Fig8Bar(
                benchmark=f"Random (n={len(randoms)})",
                improvement=geo,
                paper_improvement=PAPER_FIG8_IMPROVEMENT.get("Random"),
                baseline_log10=sum(
                    c.baseline_report.log10_fidelity for c in randoms
                )
                / len(randoms),
                optimized_log10=sum(
                    c.optimized_report.log10_fidelity for c in randoms
                )
                / len(randoms),
            )
        )
    return bars


def render_figure8(
    comparisons: list[BenchmarkComparison],
    markdown: bool = False,
    chart: bool = True,
) -> str:
    """Render Fig. 8 as a table plus an ASCII bar chart."""
    bars = build_figure8(comparisons)
    headers = [
        "Benchmark",
        "Improvement (X)",
        "Paper (X)",
        "log10 F [7]",
        "log10 F this work",
    ]
    rows = [
        [
            bar.benchmark,
            f"{bar.improvement:.2f}X",
            f"{bar.paper_improvement:.2f}X" if bar.paper_improvement else "-",
            f"{bar.baseline_log10:.2f}",
            f"{bar.optimized_log10:.2f}",
        ]
        for bar in bars
    ]
    renderer = render_markdown_table if markdown else render_table
    text = renderer(headers, rows)
    if chart and not markdown:
        text += "\n\n" + render_bar_chart(
            [bar.benchmark for bar in bars],
            [bar.improvement for bar in bars],
            unit="X",
        )
    return text
