"""Exact shuttle-minimal scheduling for tiny instances (Section IV-E1).

The paper argues ILP/SMT-style exact methods "can lead to best results"
but "do not scale well with circuit size", which is why it (and this
reproduction) uses heuristics.  This module makes that trade-off
measurable: a Dijkstra search over the joint ion-placement space finds
the true minimum shuttle count for small circuits, so the heuristic gap
can be quantified (see ``tests/test_exact.py`` and the E5 artefacts).

Model (identical to the compiler's cost semantics):

* a state is the trap assignment of every ion plus the index of the
  next gate to execute;
* any ion may hop to an adjacent trap with spare capacity, costing one
  shuttle;
* a two-qubit gate executes for free once its ions share a trap;
* gates execute in the fixed earliest-ready order (the heuristics may
  additionally re-order via Algorithm 1 — on the roomy machines used
  for gap studies that path does not fire).

Complexity is O(traps^ions * gates * log), so keep instances at
~8 ions / ~3 traps — exactly the wall the paper describes.
"""

from __future__ import annotations

import heapq

from ..arch.machine import QCCDMachine
from ..circuits.circuit import Circuit

#: Refuse instances whose state space would explode.
_MAX_STATES = 2_000_000


class ExactSolverError(ValueError):
    """Raised when the instance is too large for exact search."""


def optimal_shuttle_count(
    circuit: Circuit,
    machine: QCCDMachine,
    initial_chains: dict[int, list[int]],
) -> int:
    """Minimum number of shuttles executing ``circuit`` from the given
    placement, by Dijkstra over (placement, gates-done) states."""
    num_ions = circuit.num_qubits
    num_traps = machine.num_traps
    if num_traps**num_ions > _MAX_STATES:
        raise ExactSolverError(
            f"{num_ions} ions on {num_traps} traps exceeds the exact "
            f"solver's budget (traps^ions <= {_MAX_STATES})"
        )

    # Program order; for pure two-qubit programs this matches the
    # earliest-ready execution order the compilers use.
    gates = [g.qubits for g in circuit.gates if g.is_two_qubit]

    capacities = [machine.trap(t).capacity for t in range(num_traps)]
    topology = machine.topology

    placement = [0] * num_ions
    for trap, chain in initial_chains.items():
        for ion in chain:
            placement[ion] = trap
    start = (tuple(placement), 0)

    def advance(state_placement: tuple[int, ...], done: int) -> int:
        """Execute every already-satisfied gate for free."""
        while done < len(gates):
            a, b = gates[done]
            if state_placement[a] != state_placement[b]:
                break
            done += 1
        return done

    start = (start[0], advance(start[0], 0))
    frontier: list[tuple[int, tuple[tuple[int, ...], int]]] = [(0, start)]
    best: dict[tuple[tuple[int, ...], int], int] = {start: 0}

    while frontier:
        cost, (state_placement, done) = heapq.heappop(frontier)
        if best.get((state_placement, done), -1) != cost:
            continue
        if done == len(gates):
            return cost
        occupancy = [0] * num_traps
        for trap in state_placement:
            occupancy[trap] += 1
        for ion in range(num_ions):
            src = state_placement[ion]
            for dst in topology.neighbors(src):
                if occupancy[dst] >= capacities[dst]:
                    continue
                moved = list(state_placement)
                moved[ion] = dst
                moved_tuple = tuple(moved)
                next_done = advance(moved_tuple, done)
                key = (moved_tuple, next_done)
                new_cost = cost + 1
                if new_cost < best.get(key, 1 << 60):
                    best[key] = new_cost
                    heapq.heappush(frontier, (new_cost, key))

    raise ExactSolverError("no schedule found (disconnected machine?)")
