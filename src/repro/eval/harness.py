"""Shared experiment runner.

Every experiment in the paper compares the same two compilations —
baseline [7] vs this work — of the same circuit from the same initial
mapping.  :func:`compare` runs one such comparison (optionally
simulating both schedules for fidelity), and :func:`run_suite` runs the
whole benchmark suite once so Table II, Table III and Fig. 8 can all be
derived from a single pass.

:func:`run_suite` dispatches through the batch engine
(:mod:`repro.batch`), so suite passes parallelize across worker
processes (``n_jobs``) and replay from the content-addressed result
cache (``cache``) while remaining element-wise identical to the direct
serial path of :func:`compare`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.machine import QCCDMachine
from ..arch.presets import l6_machine
from ..batch.cache import NullCache, ResultCache
from ..batch.jobs import paired_jobs
from ..batch.runner import BatchRunner
from ..bench.suite import paper_suite
from ..circuits.circuit import Circuit
from ..compiler.compiler import QCCDCompiler
from ..compiler.config import CompilerConfig
from ..compiler.mapping import greedy_initial_mapping
from ..compiler.result import CompilationResult
from ..sim.params import DEFAULT_PARAMS, MachineParams
from ..sim.simulator import SimulationReport, Simulator
from .metrics import improvement_factor, reduction_percent


@dataclass
class BenchmarkComparison:
    """Baseline-vs-optimized outcome for one circuit."""

    circuit_name: str
    num_qubits: int
    num_two_qubit_gates: int
    baseline: CompilationResult
    optimized: CompilationResult
    baseline_report: SimulationReport | None = None
    optimized_report: SimulationReport | None = None

    @property
    def shuttle_reduction_percent(self) -> float:
        """Table II's %Delta column."""
        return reduction_percent(
            self.baseline.num_shuttles, self.optimized.num_shuttles
        )

    @property
    def shuttle_delta(self) -> int:
        """Table II's Delta column."""
        return self.baseline.num_shuttles - self.optimized.num_shuttles

    @property
    def fidelity_improvement(self) -> float:
        """Fig. 8's X metric (requires simulation)."""
        if self.baseline_report is None or self.optimized_report is None:
            raise ValueError("comparison was run without simulation")
        return improvement_factor(
            self.optimized_report.program_log_fidelity,
            self.baseline_report.program_log_fidelity,
        )

    @property
    def compile_time_overhead(self) -> float:
        """Table III's Delta column (seconds)."""
        return self.optimized.compile_time - self.baseline.compile_time

    @property
    def is_random(self) -> bool:
        """True for members of the random ensemble."""
        return self.circuit_name.startswith("Random")


def compare(
    circuit: Circuit,
    machine: QCCDMachine | None = None,
    baseline_config: CompilerConfig | None = None,
    optimized_config: CompilerConfig | None = None,
    params: MachineParams = DEFAULT_PARAMS,
    simulate: bool = True,
) -> BenchmarkComparison:
    """Compile one circuit with both configurations and (optionally)
    simulate both schedules.

    Both compilers start from the identical greedy initial mapping, as
    in the paper's methodology (Section IV-E3).
    """
    if machine is None:
        machine = l6_machine()
    if baseline_config is None:
        baseline_config = CompilerConfig.baseline()
    if optimized_config is None:
        optimized_config = CompilerConfig.optimized()

    chains = greedy_initial_mapping(circuit, machine)
    baseline = QCCDCompiler(machine, baseline_config).compile(
        circuit, initial_chains=chains
    )
    optimized = QCCDCompiler(machine, optimized_config).compile(
        circuit, initial_chains=chains
    )

    baseline_report = optimized_report = None
    if simulate:
        simulator = Simulator(machine, params)
        baseline_report = simulator.run(
            baseline.schedule, baseline.initial_chains
        )
        optimized_report = simulator.run(
            optimized.schedule, optimized.initial_chains
        )

    return BenchmarkComparison(
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        num_two_qubit_gates=circuit.num_two_qubit_gates,
        baseline=baseline,
        optimized=optimized,
        baseline_report=baseline_report,
        optimized_report=optimized_report,
    )


def run_suite(
    circuits: list[Circuit] | None = None,
    machine: QCCDMachine | None = None,
    baseline_config: CompilerConfig | None = None,
    optimized_config: CompilerConfig | None = None,
    params: MachineParams = DEFAULT_PARAMS,
    simulate: bool = True,
    full: bool | None = None,
    verbose: bool = False,
    n_jobs: int = 1,
    cache: ResultCache | NullCache | str | None = None,
    runner: BatchRunner | None = None,
) -> list[BenchmarkComparison]:
    """Run the paper's suite (or a custom circuit list) through the
    batch engine: per circuit, one baseline job and one optimized job.

    ``n_jobs`` spreads compilations across worker processes and
    ``cache`` (a :class:`~repro.batch.cache.ResultCache` or a cache
    directory path) replays previously computed results; pass a
    pre-configured ``runner`` to control both plus progress callbacks.
    Results are identical to calling :func:`compare` per circuit.
    """
    if circuits is None:
        circuits = paper_suite(full=full)
    if machine is None:
        machine = l6_machine()
    if baseline_config is None:
        baseline_config = CompilerConfig.baseline()
    if optimized_config is None:
        optimized_config = CompilerConfig.optimized()

    jobs = paired_jobs(
        circuits,
        machine,
        baseline_config,
        optimized_config,
        params,
        simulate=simulate,
    )
    if runner is None:
        runner = BatchRunner(n_jobs=n_jobs, cache=cache)
    job_results = runner.run_or_raise(jobs)

    comparisons = []
    for index, circuit in enumerate(circuits):
        base, opt = job_results[2 * index], job_results[2 * index + 1]
        assert base.result is not None and opt.result is not None
        comparison = BenchmarkComparison(
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            num_two_qubit_gates=circuit.num_two_qubit_gates,
            baseline=base.result,
            optimized=opt.result,
            baseline_report=base.report,
            optimized_report=opt.report,
        )
        if verbose:
            print(
                f"  {comparison.circuit_name}: "
                f"{comparison.baseline.num_shuttles} -> "
                f"{comparison.optimized.num_shuttles} shuttles "
                f"({comparison.shuttle_reduction_percent:.1f}%)"
            )
        comparisons.append(comparison)
    return comparisons
