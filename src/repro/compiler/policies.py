"""Shuttle direction policies (Section III-A).

Given a two-qubit gate whose ions sit in different traps, a policy
decides *which* ion moves.  Two policies are implemented:

* :class:`ExcessCapacityPolicy` — Listing 1 of [7]: move the ion into
  the trap with more excess capacity; when ECs tie, move the gate's
  first ion.  The paper's Fig. 4 shows how this ping-pongs ions.
* :class:`FutureOpsPolicy` — this work (Section III-A2): compute a
  *move score* for each direction by counting near-future gates that the
  direction satisfies, bounded by the *gate proximity* cutoff
  (Section III-A3), and move the ion with the higher score.  Ties fall
  back to the configured tie-break rule.

The proximity *distance* between two gates involving the active ions is
ambiguous in the paper (its Fig. 5 walk-through is consistent with both
readings), so both are implemented:

* ``"layers"`` (default): distance = dependency-DAG layer difference
  between consecutive relevant gates.  Scale-invariant: "6" means six
  circuit time-steps whether the circuit is 12 or 78 qubits wide.
* ``"gates"``: distance = number of intervening gates in the remaining
  program stream, the most literal reading of Fig. 5.

The ablation harness (DESIGN.md experiment E4) sweeps both.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..circuits.gate import Gate
from .future_index import FutureView
from .state import CompilerState

#: An upcoming-gate stream item: the gate and its DAG layer.
UpcomingGate = tuple[Gate, int]


def _normalize(item) -> UpcomingGate:
    """Accept bare Gates (layer 0) or (gate, layer) pairs."""
    if isinstance(item, Gate):
        return item, 0
    return item


@dataclass(frozen=True)
class ShuttleDecision:
    """Outcome of a direction decision: move ``ion`` from ``src`` to ``dst``."""

    ion: int
    src: int
    dst: int


@dataclass(frozen=True)
class MoveScores:
    """The two move scores of Section III-A2 (exposed for tests/reports)."""

    a_to_b: int
    b_to_a: int


def excess_capacity_decision(
    ion_a: int, ion_b: int, state: CompilerState
) -> ShuttleDecision:
    """Listing 1 of [7], verbatim semantics.

    ``trap0``/``trap1`` are the traps of the gate's first/second ion.
    ``EC(trap0) < EC(trap1)`` moves the first ion into trap1 (the roomier
    trap); equality also moves the first ion; otherwise the second ion
    moves into trap0.
    """
    trap0 = state.trap_of(ion_a)
    trap1 = state.trap_of(ion_b)
    ec0 = state.excess_capacity(trap0)
    ec1 = state.excess_capacity(trap1)
    if ec0 < ec1:
        return ShuttleDecision(ion=ion_a, src=trap0, dst=trap1)
    if ec0 == ec1:
        return ShuttleDecision(ion=ion_a, src=trap0, dst=trap1)
    return ShuttleDecision(ion=ion_b, src=trap1, dst=trap0)


class ExcessCapacityPolicy:
    """The baseline policy of [7] (Listing 1)."""

    name = "excess-capacity"

    def decide(
        self,
        gate: Gate,
        state: CompilerState,
        upcoming: Iterable,
        active_layer: int | None = None,
    ) -> ShuttleDecision:
        """Pick the direction; ``upcoming`` is ignored by this policy."""
        ion_a, ion_b = gate.qubits
        return excess_capacity_decision(ion_a, ion_b, state)

    def favoured(
        self,
        gate: Gate,
        state: CompilerState,
        upcoming: Iterable,
        active_layer: int | None = None,
    ) -> ShuttleDecision:
        """Same as :meth:`decide`: the EC rule has no separate notion of
        a score-favoured direction."""
        return self.decide(gate, state, upcoming, active_layer)


class FutureOpsPolicy:
    """Future-operations-based policy (Section III-A2 + III-A3).

    Parameters
    ----------
    proximity:
        Gate-proximity cutoff: scanning the upcoming gate sequence stops
        once the distance since the last relevant gate exceeds
        ``proximity`` (Fig. 5).  ``None`` scans the whole remaining
        program.
    proximity_metric:
        ``"layers"`` (distance = DAG-layer difference, default) or
        ``"gates"`` (distance = intervening gate count); see the module
        docstring.
    tie_break:
        ``"excess-capacity"`` (default) or ``"first-ion"`` when the two
        move scores are equal.
    capacity_guard:
        Riding an ion into a trap whose excess capacity is at or below
        this value is vetoed; the decision falls back to the opposite
        direction (if allowed) and then the excess-capacity rule.  The
        default of 1 keeps one slot of every trap free — the lesson of
        the machine model's *communication capacity* — and prevents the
        score-driven pile-ups into nearly-full traps that would
        otherwise trigger re-balancing storms (measured in the E5
        ablation).  0 disables the veto.
    score_decay:
        Geometric per-layer weight applied to future gates when scoring
        (1.0 = paper's unweighted counts, default).  Values < 1
        emphasize the immediate future; an extension studied in the E4
        ablation.
    """

    name = "future-ops"

    def __init__(
        self,
        proximity: int | None = 6,
        tie_break: str = "excess-capacity",
        proximity_metric: str = "layers",
        capacity_guard: int = 1,
        score_decay: float = 1.0,
    ) -> None:
        if proximity is not None and proximity < 0:
            raise ValueError("proximity must be non-negative or None")
        if tie_break not in ("excess-capacity", "first-ion"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if proximity_metric not in ("layers", "gates"):
            raise ValueError(f"unknown proximity_metric {proximity_metric!r}")
        if capacity_guard < 0:
            raise ValueError("capacity_guard must be non-negative")
        if not 0.0 < score_decay <= 1.0:
            raise ValueError("score_decay must be in (0, 1]")
        self.proximity = proximity
        self.tie_break = tie_break
        self.proximity_metric = proximity_metric
        self.capacity_guard = capacity_guard
        self.score_decay = score_decay

    def move_scores(
        self,
        ion_a: int,
        ion_b: int,
        state: CompilerState,
        upcoming: Iterable,
        active_layer: int | None = None,
    ) -> MoveScores:
        """Compute the Section III-A2 move scores.

        * ``a_to_b`` = # upcoming ion_a-gates whose partner is in trap_b
          + # upcoming ion_b-gates whose partner is in trap_b
        * ``b_to_a`` = the mirror with trap_a

        Partner traps are evaluated at the *current* mapping.  The scan
        walks the upcoming two-qubit gates in execution order and stops
        once the distance from the last relevant gate exceeds the
        proximity cutoff.  ``upcoming`` yields ``(gate, layer)`` pairs
        (bare gates are accepted with layer 0, degrading gracefully to
        the ``"gates"`` metric).

        When ``upcoming`` is a :class:`~repro.compiler.future_index.
        FutureView`, the scan instead walks only the two active ions'
        indexed gate lists — O(window on those lists) rather than
        O(remaining program) — with bit-identical scores (same
        additions in the same order; see DESIGN.md §8).
        """
        if isinstance(upcoming, FutureView):
            return self._move_scores_indexed(
                ion_a, ion_b, state, upcoming, active_layer
            )
        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        score_ab = 0.0
        score_ba = 0.0
        use_layers = self.proximity_metric == "layers"
        use_decay = self.score_decay < 1.0
        last_relevant_layer = active_layer
        gap = 0
        for item in upcoming:
            gate, layer = _normalize(item)
            if not gate.is_two_qubit:
                continue
            qubits = gate.qubits
            a_in = ion_a in qubits
            b_in = ion_b in qubits
            if not a_in and not b_in:
                if self.proximity is None:
                    continue
                if use_layers:
                    if (
                        last_relevant_layer is not None
                        and layer - last_relevant_layer > self.proximity
                    ):
                        break
                else:
                    gap += 1
                    if gap > self.proximity:
                        break
                continue
            if (
                self.proximity is not None
                and use_layers
                and last_relevant_layer is not None
                and layer - last_relevant_layer > self.proximity
            ):
                break
            last_relevant_layer = layer
            gap = 0
            weight = 1.0
            if use_decay and active_layer is not None:
                weight = self.score_decay ** max(0, layer - active_layer)
            for ion, present in ((ion_a, a_in), (ion_b, b_in)):
                if not present:
                    continue
                partner = qubits[0] if qubits[1] == ion else qubits[1]
                partner_trap = state.trap_of(partner)
                if partner_trap == trap_b:
                    score_ab += weight
                if partner_trap == trap_a:
                    score_ba += weight
        return MoveScores(a_to_b=score_ab, b_to_a=score_ba)

    def _move_scores_indexed(
        self,
        ion_a: int,
        ion_b: int,
        state: CompilerState,
        view: FutureView,
        active_layer: int | None,
    ) -> MoveScores:
        """Indexed :meth:`move_scores`: merge-walk the two ions' gate lists.

        Only gates involving ``ion_a`` or ``ion_b`` can contribute to a
        score, and — thanks to the index's layer-monotone pending
        invariant — only they can terminate the scan either: an
        irrelevant gate breaching the ``"layers"`` cutoff implies the
        next relevant gate breaches it too, and ``"gates"``-metric gaps
        are reconstructed exactly from the per-node two-qubit ranks.
        Results are memoized per mapping epoch: ``favoured``, the
        compiler's ``_score_margin`` and ``decide`` ask for the same
        scores back to back, and the epoch key invalidates them the
        moment an eviction moves an ion.
        """
        index = view.index
        if state.epoch != index.memo_epoch:
            index.score_memo.clear()
            index.memo_epoch = state.epoch
        memo_key = (ion_a, ion_b, view.start, view.exclude)
        cached = index.score_memo.get(memo_key)
        if cached is not None:
            index.num_memo_hits += 1
            return cached
        index.num_score_passes += 1

        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        score_ab = 0.0
        score_ba = 0.0
        proximity = self.proximity
        use_layers = self.proximity_metric == "layers"
        use_decay = self.score_decay < 1.0
        track_gaps = proximity is not None and not use_layers
        last_relevant_layer = active_layer

        nodes_a, partners_a, ia = index.ion_stream(ion_a)
        nodes_b, partners_b, ib = index.ion_stream(ion_b)
        end_a = len(nodes_a)
        end_b = len(nodes_b)
        order_key = index.order_key
        node_layer = index.node_layer
        rank2q = index.rank2q
        start = view.start
        exclude = view.exclude
        exclude_key = order_key[exclude] if exclude is not None else None
        # "gates" metric: rank of the last relevant gate; seeded one
        # before the window origin so the first gap comes out as the
        # number of two-qubit gates between the window start and the
        # first relevant gate, exactly like the stream scan's counter.
        previous_rank = view.rank_start - 1

        while True:
            while ia < end_a and (
                order_key[nodes_a[ia]] < start or nodes_a[ia] == exclude
            ):
                ia += 1
            while ib < end_b and (
                order_key[nodes_b[ib]] < start or nodes_b[ib] == exclude
            ):
                ib += 1
            key_a = order_key[nodes_a[ia]] if ia < end_a else None
            key_b = order_key[nodes_b[ib]] if ib < end_b else None
            if key_a is None and key_b is None:
                break
            if key_b is None or (key_a is not None and key_a <= key_b):
                node = nodes_a[ia]
                a_in = True
                b_in = key_a == key_b
            else:
                node = nodes_b[ib]
                a_in = False
                b_in = True

            layer = node_layer[node]
            if use_layers:
                if (
                    proximity is not None
                    and last_relevant_layer is not None
                    and layer - last_relevant_layer > proximity
                ):
                    break
            elif track_gaps:
                rank = rank2q[node]
                if exclude_key is not None and exclude_key < order_key[node]:
                    rank -= 1
                if rank - previous_rank - 1 > proximity:
                    break
                previous_rank = rank
            last_relevant_layer = layer

            weight = 1.0
            if use_decay and active_layer is not None:
                weight = self.score_decay ** max(0, layer - active_layer)
            if a_in:
                partner_trap = state.trap_of(partners_a[ia])
                if partner_trap == trap_b:
                    score_ab += weight
                if partner_trap == trap_a:
                    score_ba += weight
                ia += 1
            if b_in:
                partner_trap = state.trap_of(partners_b[ib])
                if partner_trap == trap_b:
                    score_ab += weight
                if partner_trap == trap_a:
                    score_ba += weight
                ib += 1

        scores = MoveScores(a_to_b=score_ab, b_to_a=score_ba)
        index.score_memo[memo_key] = scores
        return scores

    def favoured(
        self,
        gate: Gate,
        state: CompilerState,
        upcoming: Iterable,
        active_layer: int | None = None,
    ) -> ShuttleDecision:
        """The raw score-favoured direction (Section III-A2), with no
        capacity considerations.

        This is what Algorithm 1 consults: the favourable direction may
        point into a *full* trap, which is exactly the situation gate
        re-ordering exists to resolve.
        """
        ion_a, ion_b = gate.qubits
        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        scores = self.move_scores(ion_a, ion_b, state, upcoming, active_layer)
        if scores.a_to_b > scores.b_to_a:
            return ShuttleDecision(ion=ion_a, src=trap_a, dst=trap_b)
        if scores.b_to_a > scores.a_to_b:
            return ShuttleDecision(ion=ion_b, src=trap_b, dst=trap_a)
        if self.tie_break == "first-ion":
            return ShuttleDecision(ion=ion_a, src=trap_a, dst=trap_b)
        return excess_capacity_decision(ion_a, ion_b, state)

    def decide(
        self,
        gate: Gate,
        state: CompilerState,
        upcoming: Iterable,
        active_layer: int | None = None,
    ) -> ShuttleDecision:
        """Pick the direction with the larger move score (Section III-A2).

        A direction is only taken when it leaves more than
        ``capacity_guard`` free slots in its destination; a vetoed
        winner falls back to the opposite direction (same test) and
        finally to the excess-capacity rule, which is inherently
        capacity-safe.
        """
        ion_a, ion_b = gate.qubits
        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        scores = self.move_scores(ion_a, ion_b, state, upcoming, active_layer)

        def roomy(trap: int) -> bool:
            return state.excess_capacity(trap) > self.capacity_guard

        if scores.a_to_b > scores.b_to_a:
            if roomy(trap_b):
                return ShuttleDecision(ion=ion_a, src=trap_a, dst=trap_b)
            if roomy(trap_a):
                return ShuttleDecision(ion=ion_b, src=trap_b, dst=trap_a)
        elif scores.b_to_a > scores.a_to_b:
            if roomy(trap_a):
                return ShuttleDecision(ion=ion_b, src=trap_b, dst=trap_a)
            if roomy(trap_b):
                return ShuttleDecision(ion=ion_a, src=trap_a, dst=trap_b)
        elif self.tie_break == "first-ion":
            return ShuttleDecision(ion=ion_a, src=trap_a, dst=trap_b)
        return excess_capacity_decision(ion_a, ion_b, state)


def make_policy(
    shuttle_policy: str,
    proximity: int | None,
    tie_break: str,
    proximity_metric: str = "layers",
    capacity_guard: int = 1,
    score_decay: float = 1.0,
) -> ExcessCapacityPolicy | FutureOpsPolicy:
    """Instantiate the policy named by a :class:`CompilerConfig`."""
    if shuttle_policy == "excess-capacity":
        return ExcessCapacityPolicy()
    if shuttle_policy == "future-ops":
        return FutureOpsPolicy(
            proximity=proximity,
            tie_break=tie_break,
            proximity_metric=proximity_metric,
            capacity_guard=capacity_guard,
            score_decay=score_decay,
        )
    raise ValueError(f"unknown shuttle policy {shuttle_policy!r}")
