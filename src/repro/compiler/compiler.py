"""The QCCD compiler main loop.

Gates execute in earliest-ready-gate-first order (Section III-B keeps
the baseline order of [7]).  For every two-qubit gate whose ions sit in
different traps the compiler:

1. asks the configured *shuttle direction policy* which ion to move
   (Section III-A);
2. if the favourable destination trap is full, the favourable direction
   is "not achievable" (Section III-B):

   a. with re-ordering enabled, an Algorithm-1 candidate gate is hoisted
      in front of the active gate to free the destination, and the
      hoisted gate becomes the new active gate;
   b. otherwise the direction *flips* — the other ion moves into the
      other trap — when that trap has room;
   c. when both traps are full, one ion is evicted from the favourable
      destination via the re-balancing logic;

3. routes the moving ion hop by hop, resolving traffic blocks on
   *intermediate* traps via the configured re-balancing logic
   (Section III-C / Fig. 7), and
4. emits the gate in the destination trap.

Single-qubit gates execute wherever their ion currently resides.  The
compiler is deterministic: every tie-break is defined.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import nullcontext

from ..arch.machine import QCCDMachine
from ..circuits.circuit import Circuit
from ..circuits.dag import DependencyDAG
from ..obs import active as _obs_active
from ..sim.ops import GateOp, ShuttleReason
from ..sim.params import DEFAULT_PARAMS, MachineParams
from ..sim.schedule import Schedule
from .config import CompilerConfig
from .future_index import FutureGateIndex
from .mapping import greedy_initial_mapping
from .policies import ShuttleDecision, make_policy
from .reorder import find_reorder_candidate
from .result import CompilationResult
from .routing import Router
from .state import CompilationError, CompilerState


class QCCDCompiler:
    """Shuttle-aware compiler for multi-trap trapped-ion machines.

    Parameters
    ----------
    machine:
        Target machine model.
    config:
        Heuristic configuration; defaults to the paper's optimized
        compiler.  Use :meth:`CompilerConfig.baseline` for [7].
    use_future_index:
        When True (the default), direction decisions, eviction scoring
        and re-order candidate search run against the per-ion
        :class:`~repro.compiler.future_index.FutureGateIndex` —
        O(window) per decision.  False selects the reference
        implementation that re-scans the pending tail per decision;
        both produce bit-identical schedules (the property suite in
        ``tests/test_future_index.py`` holds them to that).
    """

    def __init__(
        self,
        machine: QCCDMachine,
        config: CompilerConfig | None = None,
        use_future_index: bool = True,
    ) -> None:
        self.machine = machine
        self.config = config if config is not None else CompilerConfig.optimized()
        self.use_future_index = use_future_index
        self._policy = make_policy(
            self.config.shuttle_policy,
            self.config.proximity,
            self.config.tie_break,
            self.config.proximity_metric,
            self.config.capacity_guard,
            self.config.score_decay,
        )
        #: The last compile's index (introspection: tests and
        #: profiling read its memo/scan counters).  None before the
        #: first compile or when ``use_future_index`` is off.
        self._last_future_index: FutureGateIndex | None = None

    def _score_margin(self, gate, state, upcoming, active_layer) -> int:
        """Margin between the two move scores of the active gate.

        Used to gate the cheap-eviction fallback: evicting an ion out of
        the full favourable destination costs one shuttle, so it is only
        taken when the favourable direction is worth strictly more than
        one future gate over the alternative.  Returns a large margin
        for the baseline policy (which has no scores), effectively
        leaving the decision to the ``cheap_evict`` flag alone.

        With the future-gate index, this rides the same per-(gate,
        mapping-epoch) memo as ``favoured`` and ``decide``: the margin
        check costs a dict lookup, not a rescan.
        """
        if not hasattr(self._policy, "move_scores"):
            return 0
        ion_a, ion_b = gate.qubits
        scores = self._policy.move_scores(
            ion_a, ion_b, state, upcoming, active_layer
        )
        return abs(scores.a_to_b - scores.b_to_a)

    def _trace_consideration(
        self, obs, gate, state, upcoming, layer, pos, favoured
    ) -> None:
        """Emit the ``gate_considered`` (+ ``move_scores``) events for a
        cross-trap two-qubit gate.  Trace-only path: the extra
        ``move_scores`` call rides the index memo populated by the
        ``favoured`` call just made, so it costs a dict lookup."""
        ion_a, ion_b = gate.qubits
        trap_a, trap_b = state.trap_of(ion_a), state.trap_of(ion_b)
        obs.trace.emit(
            "gate_considered",
            gate=_gate_label(gate),
            qubits=[ion_a, ion_b],
            traps=[trap_a, trap_b],
            pos=pos,
            layer=layer,
        )
        if hasattr(self._policy, "move_scores"):
            scores = self._policy.move_scores(
                ion_a, ion_b, state, upcoming, layer
            )
            obs.trace.emit(
                "move_scores",
                gate=_gate_label(gate),
                score_a_to_b=scores.a_to_b,
                score_b_to_a=scores.b_to_a,
                favoured_dst=favoured.dst,
            )

    def compile(
        self,
        circuit: Circuit,
        initial_chains: dict[int, list[int]] | None = None,
    ) -> CompilationResult:
        """Compile a circuit to a machine schedule.

        ``initial_chains`` overrides the greedy initial mapping — useful
        for controlled experiments where both compilers must start from
        the identical placement (as the paper's comparison does).

        When observability is enabled (:mod:`repro.obs`), the compile
        additionally records a ``compile`` phase-span subtree, decision
        counters, and — with tracing on — per-decision events.  The
        instrumentation only reads compiler state: the emitted schedule
        is bit-identical with observability off and on.
        """
        obs = _obs_active()
        if obs is None:
            return self._compile(circuit, initial_chains, None)
        with obs.spans.span("compile"):
            return self._compile(circuit, initial_chains, obs)

    def _compile(
        self,
        circuit: Circuit,
        initial_chains: dict[int, list[int]] | None,
        obs,
    ) -> CompilationResult:
        start_time = time.perf_counter()
        for gate in circuit:
            if gate.num_qubits > 2:
                raise CompilationError(
                    f"gate {gate} has {gate.num_qubits} qubits; decompose "
                    "to one- and two-qubit gates first "
                    "(repro.circuits.decompose_circuit)"
                )

        dag = DependencyDAG(circuit)
        if initial_chains is None:
            initial_chains = greedy_initial_mapping(circuit, self.machine)
        state = CompilerState(self.machine, initial_chains)
        schedule = Schedule()

        pending: list[int] = dag.topological_order()
        executed: set[int] = set()
        gate_order: list[int] = []
        reorder_attempts: dict[int, int] = defaultdict(int)
        num_reorders = 0
        pos = 0

        future: FutureGateIndex | None = None
        if self.use_future_index:
            future = FutureGateIndex(dag, pending, circuit.num_qubits)
        self._last_future_index = future
        if obs is not None:
            obs.spans.add("setup", time.perf_counter() - start_time)

        def upcoming_from(start: int):
            """Yield (gate, layer) pairs for the pending tail (the
            reference scan, used when the index is disabled)."""
            for later in range(start, len(pending)):
                index_later = pending[later]
                yield dag.gate(index_later), dag.layer_of(index_later)

        def decision_window():
            """The upcoming-gate view for decisions about the active
            gate: the tail after ``pos``.  The active gate is two-qubit
            here, hence the ``+ 1`` on the executed two-qubit count."""
            if future is not None:
                return future.view(pos + 1, future.executed_2q + 1)
            return upcoming_from(pos + 1)

        router = Router(
            state,
            schedule,
            self.config,
            upcoming_factory=decision_window,
        )

        loop_span = (
            obs.spans.span("schedule-gates")
            if obs is not None
            else nullcontext()
        )
        perf = time.perf_counter
        with loop_span:
            while pos < len(pending):
                index = pending[pos]
                gate = dag.gate(index)

                if gate.is_one_qubit:
                    schedule.append(
                        GateOp(gate=gate, trap=state.trap_of(gate.qubits[0]))
                    )
                    executed.add(index)
                    gate_order.append(index)
                    if future is not None:
                        future.mark_executed(index, False)
                    pos += 1
                    continue

                ion_a, ion_b = gate.qubits
                if state.co_located(ion_a, ion_b):
                    schedule.append(
                        GateOp(gate=gate, trap=state.trap_of(ion_a))
                    )
                    executed.add(index)
                    gate_order.append(index)
                    if future is not None:
                        future.mark_executed(index, True)
                    pos += 1
                    continue

                pinned = frozenset((ion_a, ion_b))
                if future is not None:
                    future.num_decision_points += 1
                if obs is not None:
                    t_decide = perf()
                favoured = self._policy.favoured(
                    gate, state, decision_window(), dag.layer_of(index)
                )
                if obs is not None:
                    obs.spans.add("decide", perf() - t_decide)
                    if obs.trace is not None:
                        self._trace_consideration(
                            obs, gate, state, decision_window(),
                            dag.layer_of(index), pos, favoured,
                        )

                if state.is_full(favoured.dst):
                    # Favourable direction not achievable (Section
                    # III-B): try Algorithm 1 before settling for
                    # another direction.
                    if (
                        self.config.reorder
                        and reorder_attempts[index]
                        < self.config.max_reorder_attempts
                    ):
                        if obs is not None:
                            t_reorder = perf()
                        candidate_pos = find_reorder_candidate(
                            pending,
                            pos,
                            executed,
                            dag,
                            state,
                            decide=lambda g, upcoming, layer: (
                                self._policy.favoured(
                                    g, state, upcoming, layer
                                )
                            ),
                            old_destination=favoured.dst,
                            future=future,
                        )
                        if obs is not None:
                            obs.spans.add("reorder", perf() - t_reorder)
                        if candidate_pos is not None:
                            if obs is not None and obs.trace is not None:
                                candidate_gate = dag.gate(
                                    pending[candidate_pos]
                                )
                                obs.trace.emit(
                                    "reorder_splice",
                                    active_gate=_gate_label(gate),
                                    candidate_gate=_gate_label(
                                        candidate_gate
                                    ),
                                    active_pos=pos,
                                    candidate_pos=candidate_pos,
                                )
                            if future is not None:
                                future.splice(pos, candidate_pos)
                            candidate = pending.pop(candidate_pos)
                            pending.insert(pos, candidate)
                            reorder_attempts[index] += 1
                            num_reorders += 1
                            continue  # the hoisted gate becomes active
                    if self.config.cheap_evict:
                        if obs is not None:
                            t_decide = perf()
                        score_margin = self._score_margin(
                            gate, state, decision_window(), dag.layer_of(index)
                        )
                        if obs is not None:
                            obs.spans.add("decide", perf() - t_decide)
                        if score_margin > 1 and router.cheap_evict(
                            favoured.dst, pinned
                        ):
                            # Favourable destination freed with one
                            # shuttle; fall through to the guarded
                            # decision below.
                            pass

                if obs is not None:
                    t_decide = perf()
                decision = self._policy.decide(
                    gate, state, decision_window(), dag.layer_of(index)
                )
                if obs is not None:
                    obs.spans.add("decide", perf() - t_decide)
                flipped = False
                if state.is_full(decision.dst):
                    flip = ShuttleDecision(
                        ion=ion_b if decision.ion == ion_a else ion_a,
                        src=decision.dst,
                        dst=decision.src,
                    )
                    if not state.is_full(flip.dst):
                        decision = flip
                        flipped = True
                    else:
                        # Both traps full: evict one ion from the chosen
                        # destination so the gate can proceed.
                        router.evict_one(decision.dst, pinned)
                if obs is not None and obs.trace is not None:
                    obs.trace.emit(
                        "shuttle_decision",
                        gate=_gate_label(gate),
                        ion=decision.ion,
                        src=decision.src,
                        dst=decision.dst,
                        flipped=flipped,
                    )

                router.route(
                    decision.ion, decision.dst, ShuttleReason.GATE, pinned
                )
                schedule.append(GateOp(gate=gate, trap=decision.dst))
                executed.add(index)
                gate_order.append(index)
                if future is not None:
                    future.mark_executed(index, True)
                pos += 1

        pass_stats: tuple = ()
        raw_num_shuttles = raw_num_ops = None
        final_chains = state.snapshot_chains()
        if self.config.post_passes:
            # Post-compilation optimization (repro.passes): rewrite the
            # emitted stream, verifying legality + circuit equivalence
            # per pass and rolling back fidelity regressions.
            from ..passes.manager import PassManager

            optimization = PassManager(self.config.post_passes).run(
                schedule,
                self.machine,
                {t: list(c) for t, c in initial_chains.items()},
            )
            raw_num_shuttles = optimization.raw_num_shuttles
            raw_num_ops = len(optimization.raw_schedule)
            pass_stats = optimization.passes
            if optimization.schedule is not schedule:
                gate_order = _remap_gate_order(
                    gate_order, schedule, optimization.schedule
                )
            schedule = optimization.schedule
            if optimization.final_chains is not None:
                final_chains = {
                    t: list(c)
                    for t, c in optimization.final_chains.items()
                }

        compile_time = time.perf_counter() - start_time
        if obs is not None:
            metrics = obs.metrics
            metrics.inc("compile.circuits")
            metrics.inc("compile.gates", schedule.num_gates)
            metrics.inc("compile.shuttles", schedule.num_shuttles)
            metrics.inc("compile.ops", len(schedule))
            metrics.inc("compile.reorders", num_reorders)
            metrics.inc("compile.rebalances", router.num_rebalances)
            metrics.inc("compile.mapping_epochs", state.epoch)
            if future is not None:
                metrics.inc(
                    "compile.index.decision_points",
                    future.num_decision_points,
                )
                metrics.inc(
                    "compile.index.score_passes", future.num_score_passes
                )
                metrics.inc(
                    "compile.index.memo_hits", future.num_memo_hits
                )
            metrics.observe("phase.compile_seconds", compile_time)
        return CompilationResult(
            circuit_name=circuit.name,
            config_name=self.config.name,
            schedule=schedule,
            initial_chains={t: list(c) for t, c in initial_chains.items()},
            final_chains=final_chains,
            gate_order=gate_order,
            num_reorders=num_reorders,
            num_rebalances=router.num_rebalances,
            compile_time=compile_time,
            pass_stats=pass_stats,
            raw_num_shuttles=raw_num_shuttles,
            raw_num_ops=raw_num_ops,
        )


def _gate_label(gate) -> str:
    """Compact ``name(q0,q1)`` form for trace-event payloads."""
    return f"{gate.name}({','.join(map(str, gate.qubits))})"


def _remap_gate_order(
    gate_order: list[int], raw: Schedule, optimized: Schedule
) -> list[int]:
    """Re-derive original-circuit gate indices for an optimized stream.

    Pass rewrites may reorder independent gates, so the emission-time
    ``gate_order`` no longer lines up with the shipped schedule's gate
    ops.  Identical gates are interchangeable, so matching each
    optimized gate to the earliest unconsumed raw occurrence of the
    same gate yields a consistent order.
    """
    from collections import defaultdict, deque

    available: dict = defaultdict(deque)
    for index, op in zip(gate_order, raw.gate_ops()):
        available[op.gate].append(index)
    return [available[op.gate].popleft() for op in optimized.gate_ops()]


def compile_circuit(
    circuit: Circuit,
    machine: QCCDMachine,
    config: CompilerConfig | None = None,
    initial_chains: dict[int, list[int]] | None = None,
) -> CompilationResult:
    """One-shot convenience wrapper around :class:`QCCDCompiler`."""
    return QCCDCompiler(machine, config).compile(circuit, initial_chains)


def compile_and_simulate(
    circuit: Circuit,
    machine: QCCDMachine,
    config: CompilerConfig | None = None,
    params: MachineParams = DEFAULT_PARAMS,
    initial_chains: dict[int, list[int]] | None = None,
):
    """Compile then simulate; returns (CompilationResult, SimulationReport)."""
    from ..sim.simulator import Simulator

    result = compile_circuit(circuit, machine, config, initial_chains)
    report = Simulator(machine, params).run(result.schedule, result.initial_chains)
    return result, report
