"""Compilation result container."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..passes.manager import PassStats
from ..sim.ops import ShuttleReason
from ..sim.schedule import Schedule


@dataclass
class CompilationResult:
    """Everything the compiler produced for one circuit.

    The schedule plus the initial chains are sufficient to simulate the
    program; the remaining fields are bookkeeping for the evaluation
    harness (Table II / Table III columns).  When the configuration
    names ``post_passes``, ``schedule`` is the *optimized* stream and
    the raw (pre-pass) counts plus per-pass deltas are recorded so
    reports can show optimized-vs-raw columns.
    """

    circuit_name: str
    config_name: str
    schedule: Schedule
    initial_chains: dict[int, list[int]]
    final_chains: dict[int, list[int]]
    gate_order: list[int]  # original gate indices in execution order
    num_reorders: int  # Algorithm-1 hoists performed
    num_rebalances: int  # traffic-block evictions performed
    # Wall-clock seconds (Table III metric).  Excluded from equality:
    # timing is host- and run-dependent, so a cached batch result must
    # still compare equal to a fresh compilation of the same inputs.
    compile_time: float = field(compare=False, default=0.0)
    # Post-compilation optimization bookkeeping (empty/None when the
    # config ran no passes).  Deterministic, so part of equality.
    pass_stats: tuple[PassStats, ...] = ()
    raw_num_shuttles: int | None = None
    raw_num_ops: int | None = None

    @property
    def num_shuttles(self) -> int:
        """Total shuttles = MoveOps (Table II metric)."""
        return self.schedule.num_shuttles

    @property
    def num_gates(self) -> int:
        """Executed gates."""
        return self.schedule.num_gates

    @property
    def num_two_qubit_gates(self) -> int:
        """Executed two-qubit gates."""
        return self.schedule.num_two_qubit_gates

    def shuttles_by_reason(self) -> Counter:
        """Shuttles attributed to gate routing vs traffic re-balancing."""
        return self.schedule.shuttles_by_reason()

    @property
    def gate_routing_shuttles(self) -> int:
        """Shuttles emitted to bring gate partners together."""
        return self.shuttles_by_reason().get(ShuttleReason.GATE, 0)

    @property
    def rebalance_shuttles(self) -> int:
        """Shuttles emitted resolving traffic blocks."""
        return self.shuttles_by_reason().get(ShuttleReason.REBALANCE, 0)

    @property
    def optimized(self) -> bool:
        """True when post-compilation passes ran on this result."""
        return self.raw_num_shuttles is not None

    @property
    def shuttles_removed_by_passes(self) -> int:
        """Shuttles deleted by the post-pass pipeline (0 without one)."""
        if self.raw_num_shuttles is None:
            return 0
        return self.raw_num_shuttles - self.num_shuttles

    @property
    def pass_rewrites(self) -> int:
        """Total rewrites shipped by non-reverted passes."""
        return sum(
            s.rewrites for s in self.pass_stats if not s.reverted
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.circuit_name} [{self.config_name}]: "
            f"{self.num_shuttles} shuttles "
            f"({self.gate_routing_shuttles} gate / "
            f"{self.rebalance_shuttles} rebalance), "
            f"{self.num_reorders} reorders, "
            f"{self.compile_time * 1e3:.1f} ms compile"
        )
        if self.optimized:
            text += (
                f", passes: {self.raw_num_shuttles} -> "
                f"{self.num_shuttles} shuttles "
                f"({self.pass_rewrites} rewrites)"
            )
        return text
