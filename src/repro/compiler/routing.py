"""Hop-by-hop shuttle routing with traffic-block resolution.

A route from trap ``src`` to trap ``dst`` emits ``SPLIT``, one ``MOVE``
per edge of the shortest path, and ``MERGE`` (Fig. 3).  Before the ion
enters any trap along the way — intermediate or final — that trap must
have excess capacity; a full trap is a *traffic block* (Fig. 7) and is
resolved by evicting one of its ions first (Section III-C), which is
itself a recursive route.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from time import perf_counter

from ..circuits.gate import Gate
from ..obs import active as _obs_active
from ..sim.ops import MergeOp, MoveOp, ShuttleReason, SplitOp, SwapOp
from ..sim.schedule import Schedule
from .config import CompilerConfig
from .rebalance import max_score_with_value, select_eviction
from .state import CompilationError, CompilerState

#: Upper bound on nested traffic-block resolutions; generous compared to
#: any sane machine (each level frees one slot in a distinct full trap).
_MAX_RESOLVE_DEPTH = 64


class Router:
    """Emits shuttle ops into a schedule while updating compiler state.

    Parameters
    ----------
    state:
        Shared mutable placement state.
    schedule:
        Output op stream (appended in place).
    config:
        Supplies the re-balancing strategy and ion-selection rule.
    upcoming_factory:
        Zero-argument callable returning a fresh view of the upcoming
        gates (needed by max-score ion selection); the compiler binds
        it to its current program position.  The compiler supplies
        :class:`~repro.compiler.future_index.FutureView` windows so
        eviction scoring walks per-ion indexes; a plain gate iterable
        is accepted for the reference scan.
    """

    def __init__(
        self,
        state: CompilerState,
        schedule: Schedule,
        config: CompilerConfig,
        upcoming_factory: Callable[[], Iterable[Gate]] = lambda: (),
    ) -> None:
        self.state = state
        self.schedule = schedule
        self.config = config
        self.upcoming_factory = upcoming_factory
        self.num_rebalances = 0

    def route(
        self,
        ion: int,
        dst: int,
        reason: ShuttleReason,
        pinned: frozenset[int],
        _depth: int = 0,
    ) -> int:
        """Shuttle ``ion`` from its current trap to ``dst``.

        Returns the number of MoveOps emitted (shuttles, including any
        recursive re-balancing moves).  ``pinned`` ions are never chosen
        for eviction (e.g. the stationary partner of the active gate).
        """
        obs = _obs_active()
        if obs is None:
            return self._route(ion, dst, reason, pinned, _depth)
        # Recursive traffic-block resolutions nest route under route.
        with obs.spans.span("route"):
            return self._route(ion, dst, reason, pinned, _depth)

    def _route(
        self,
        ion: int,
        dst: int,
        reason: ShuttleReason,
        pinned: frozenset[int],
        _depth: int = 0,
    ) -> int:
        src = self.state.trap_of(ion)
        if src == dst:
            return 0
        if _depth > _MAX_RESOLVE_DEPTH:
            raise CompilationError(
                "traffic-block resolution exceeded depth bound "
                f"(routing ion {ion} to trap {dst})"
            )
        topology = self.state.machine.topology
        moves_before = self.schedule.num_shuttles

        first_hop = topology.shortest_path(src, dst)[1]
        if self.config.track_chain_order:
            self._reposition_to_exit(ion, src, first_hop, reason)
        self.schedule.append(SplitOp(ion=ion, trap=src, reason=reason))
        self.state.detach_ion(ion)

        current = src
        previous = src
        while current != dst:
            next_trap = topology.shortest_path(current, dst)[1]
            if self.state.is_full(next_trap):
                self._resolve_block(next_trap, pinned, _depth)
            self.schedule.append(
                MoveOp(ion=ion, src=current, dst=next_trap, reason=reason)
            )
            previous = current
            current = next_trap

        position = None
        if self.config.track_chain_order:
            # Entering from the lower-id edge lands at the chain head.
            position = 0 if previous < dst else None
        self.schedule.append(
            MergeOp(ion=ion, trap=dst, reason=reason, position=position)
        )
        self.state.attach_ion(ion, dst, position=position)
        return self.schedule.num_shuttles - moves_before

    def _reposition_to_exit(
        self, ion: int, trap: int, next_trap: int, reason: ShuttleReason
    ) -> None:
        """Swap ``ion`` to the chain end facing its exit edge
        (Fig. 3 step (i)).

        Chains are ordered head = lower-id edge; exiting toward a
        lower-id neighbour needs the ion at the head, otherwise at the
        tail.
        """
        chain = self.state.chains[trap]
        index = chain.index(ion)
        if next_trap < trap:
            while index > 0:
                index -= 1
                ion_a, ion_b = self.state.swap_adjacent(trap, index)
                self.schedule.append(
                    SwapOp(ion_a=ion_a, ion_b=ion_b, trap=trap, reason=reason)
                )
        else:
            while index < len(chain) - 1:
                ion_a, ion_b = self.state.swap_adjacent(trap, index)
                self.schedule.append(
                    SwapOp(ion_a=ion_a, ion_b=ion_b, trap=trap, reason=reason)
                )
                index += 1

    def evict_one(self, full_trap: int, pinned: frozenset[int]) -> None:
        """Public eviction entry point (both-traps-full fallback)."""
        self._resolve_block(full_trap, pinned, depth=0, kind="both-full")

    def cheap_evict(self, full_trap: int, pinned: frozenset[int]) -> bool:
        """Free ``full_trap`` with a single one-hop eviction if worthwhile.

        Applies the Section III-C machinery at a full gate destination:
        when a *directly neighbouring* trap has room and the max-score
        ion of the full trap has a non-negative score (nothing anchors
        it there in the near future), move it over — one shuttle keeps
        the favourable gate direction achievable.  Returns True when the
        eviction was performed.
        """
        state = self.state
        topology = state.machine.topology
        free_neighbors = [
            t
            for t in topology.neighbors(full_trap)
            if not state.is_full(t)
        ]
        if not free_neighbors:
            return False
        destination = free_neighbors[0]
        obs = _obs_active()
        if obs is not None:
            t_select = perf_counter()
        upcoming = self.upcoming_factory()
        ion, score = max_score_with_value(
            state,
            full_trap,
            destination,
            pinned,
            upcoming,
            self.config.rebalance_window,
        )
        if obs is not None:
            obs.spans.add("rebalance", perf_counter() - t_select)
        if score < 0:
            return False
        self.num_rebalances += 1
        self._observe_eviction(obs, full_trap, ion, destination, "cheap")
        self.route(ion, destination, ShuttleReason.REBALANCE, pinned)
        return True

    def _resolve_block(
        self,
        full_trap: int,
        pinned: frozenset[int],
        depth: int,
        kind: str = "traffic-block",
    ) -> None:
        """Evict one ion from ``full_trap`` so traffic can pass (Fig. 7)."""
        obs = _obs_active()
        if obs is not None:
            t_select = perf_counter()
        upcoming = self.upcoming_factory()
        ion, destination = select_eviction(
            self.state,
            full_trap,
            strategy=self.config.rebalance,
            ion_selection=self.config.ion_selection,
            pinned=pinned,
            upcoming=upcoming,
            window=self.config.rebalance_window,
        )
        if obs is not None:
            obs.spans.add("rebalance", perf_counter() - t_select)
        self.num_rebalances += 1
        self._observe_eviction(obs, full_trap, ion, destination, kind)
        self.route(
            ion,
            destination,
            ShuttleReason.REBALANCE,
            pinned,
            _depth=depth + 1,
        )

    @staticmethod
    def _observe_eviction(obs, trap: int, ion: int, dst: int, kind: str):
        if obs is None:
            return
        obs.metrics.inc("compile.evictions")
        obs.metrics.inc(f"compile.evictions.{kind}")
        if obs.trace is not None:
            obs.trace.emit(
                "eviction", trap=trap, ion=ion, dst=dst, kind=kind
            )
