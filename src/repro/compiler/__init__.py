"""Shuttle-aware QCCD compiler: baseline [7] and this-work configurations."""

from .compiler import QCCDCompiler, compile_and_simulate, compile_circuit
from .config import DEFAULT_PROXIMITY, CompilerConfig
from .future_index import FutureGateIndex, FutureView
from .mapping import (
    MAPPING_POLICIES,
    greedy_initial_mapping,
    initial_mapping,
    random_initial_mapping,
    round_robin_initial_mapping,
)
from .policies import (
    ExcessCapacityPolicy,
    FutureOpsPolicy,
    MoveScores,
    ShuttleDecision,
    excess_capacity_decision,
)
from .result import CompilationResult
from .state import CompilationError, CompilerState

__all__ = [
    "CompilationError",
    "CompilationResult",
    "CompilerConfig",
    "CompilerState",
    "DEFAULT_PROXIMITY",
    "ExcessCapacityPolicy",
    "FutureGateIndex",
    "FutureOpsPolicy",
    "FutureView",
    "MAPPING_POLICIES",
    "MoveScores",
    "QCCDCompiler",
    "ShuttleDecision",
    "compile_and_simulate",
    "compile_circuit",
    "excess_capacity_decision",
    "greedy_initial_mapping",
    "initial_mapping",
    "random_initial_mapping",
    "round_robin_initial_mapping",
]
