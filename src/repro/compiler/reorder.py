"""Opportunistic gate re-ordering (Section III-B, Algorithm 1).

Invoked when the favourable shuttle destination of the *active gate* is
full.  The algorithm scans dependency-safe pending gates in the active
gate's layer and earlier layers; if one of them would shuttle an ion
*out of* the full trap (its favourable *source* trap equals the old
destination), it is hoisted in front of the active gate, freeing a slot
and becoming the new active gate.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..circuits.dag import DependencyDAG
from ..circuits.gate import Gate
from .state import CompilerState


def find_reorder_candidate(
    pending: Sequence[int],
    active_pos: int,
    executed: set[int],
    dag: DependencyDAG,
    state: CompilerState,
    decide: Callable[[Gate, Iterable[Gate]], "object"],
    old_destination: int,
) -> int | None:
    """Return the pending-list position of a hoistable gate, or None.

    Implements Algorithm 1:

    * candidates are pending gates after the active position whose layer
      is <= the active gate's layer ("this layer and preceding layers")
      and whose predecessors have all executed (dependency safety);
    * a candidate qualifies when its own favourable shuttle direction —
      computed with the compiler's direction policy — departs from
      ``old_destination``, the trap that is currently full.

    ``decide`` is a closure over the compiler's policy; it receives the
    candidate gate, the upcoming ``(gate, layer)`` iterable, and the
    candidate's layer, and returns an object with ``src``/``dst``
    attributes (a ShuttleDecision).
    """
    active_index = pending[active_pos]
    active_layer = dag.layer_of(active_index)
    for pos in range(active_pos + 1, len(pending)):
        index = pending[pos]
        if dag.layer_of(index) > active_layer:
            continue
        gate = dag.gate(index)
        if not gate.is_two_qubit:
            continue
        if any(pred not in executed for pred in dag.predecessors(index)):
            continue
        ion_a, ion_b = gate.qubits
        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        if trap_a == trap_b:
            continue  # executes without a shuttle; frees no slot
        if old_destination not in (trap_a, trap_b):
            continue  # cannot possibly depart from the full trap
        upcoming = _candidate_upcoming(pending, active_pos, pos, dag)
        decision = decide(gate, upcoming, dag.layer_of(index))
        if decision.src == old_destination:
            return pos
    return None


def _candidate_upcoming(
    pending: Sequence[int],
    active_pos: int,
    candidate_pos: int,
    dag: DependencyDAG,
):
    """Upcoming (gate, layer) pairs as seen by a hoisted candidate.

    After hoisting, the candidate executes first and everything from the
    active position onward (minus the candidate itself) follows, so that
    is the future the candidate's direction decision should look at.
    """
    for pos in range(active_pos, len(pending)):
        if pos == candidate_pos:
            continue
        index = pending[pos]
        yield dag.gate(index), dag.layer_of(index)
