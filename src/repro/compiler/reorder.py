"""Opportunistic gate re-ordering (Section III-B, Algorithm 1).

Invoked when the favourable shuttle destination of the *active gate* is
full.  The algorithm scans dependency-safe pending gates in the active
gate's layer and earlier layers; if one of them would shuttle an ion
*out of* the full trap (its favourable *source* trap equals the old
destination), it is hoisted in front of the active gate, freeing a slot
and becoming the new active gate.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from ..circuits.dag import DependencyDAG
from ..circuits.gate import Gate
from .future_index import FutureGateIndex
from .state import CompilerState


def find_reorder_candidate(
    pending: Sequence[int],
    active_pos: int,
    executed: set[int],
    dag: DependencyDAG,
    state: CompilerState,
    decide: Callable[[Gate, Iterable[Gate]], "object"],
    old_destination: int,
    future: FutureGateIndex | None = None,
) -> int | None:
    """Return the pending-list position of a hoistable gate, or None.

    Implements Algorithm 1:

    * candidates are pending gates after the active position whose layer
      is <= the active gate's layer ("this layer and preceding layers")
      and whose predecessors have all executed (dependency safety);
    * a candidate qualifies when its own favourable shuttle direction —
      computed with the compiler's direction policy — departs from
      ``old_destination``, the trap that is currently full.

    ``decide`` is a closure over the compiler's policy; it receives the
    candidate gate, the upcoming ``(gate, layer)`` iterable, and the
    candidate's layer, and returns an object with ``src``/``dst``
    attributes (a ShuttleDecision).

    With a :class:`~repro.compiler.future_index.FutureGateIndex`,
    candidates are enumerated from the full trap's own ions' gate lists
    (a qualifying gate must move an ion *out of* ``old_destination``,
    so one of its qubits sits there now) instead of scanning the whole
    pending tail, and each candidate's direction decision scores
    against an indexed view — same candidates, same order, same result.
    """
    if future is not None:
        return _find_candidate_indexed(
            pending, active_pos, dag, state, decide, old_destination, future
        )
    active_index = pending[active_pos]
    active_layer = dag.layer_of(active_index)
    for pos in range(active_pos + 1, len(pending)):
        index = pending[pos]
        if dag.layer_of(index) > active_layer:
            continue
        gate = dag.gate(index)
        if not gate.is_two_qubit:
            continue
        if any(pred not in executed for pred in dag.predecessors(index)):
            continue
        ion_a, ion_b = gate.qubits
        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        if trap_a == trap_b:
            continue  # executes without a shuttle; frees no slot
        if old_destination not in (trap_a, trap_b):
            continue  # cannot possibly depart from the full trap
        upcoming = _candidate_upcoming(pending, active_pos, pos, dag)
        decision = decide(gate, upcoming, dag.layer_of(index))
        if decision.src == old_destination:
            return pos
    return None


def _find_candidate_indexed(
    pending: Sequence[int],
    active_pos: int,
    dag: DependencyDAG,
    state: CompilerState,
    decide: Callable[[Gate, Iterable[Gate]], "object"],
    old_destination: int,
    future: FutureGateIndex,
) -> int | None:
    """Algorithm 1 over the future-gate index.

    Only gates with a qubit whose ion currently sits in the full trap
    can have ``old_destination`` among their traps, so the candidate
    set is the union of that chain's per-ion gate lists, cut at the
    active layer (per-ion lists inherit the pending tail's monotone
    layers, so the cut is a prefix).  Candidates are then visited in
    pending order — exactly the order the tail scan visits them.
    """
    active_layer = future.node_layer[pending[active_pos]]
    node_layer = future.node_layer
    order_key = future.order_key
    executed = future.executed
    candidates: list[int] = []
    for ion in state.chains[old_destination]:
        nodes, _partners, i = future.ion_stream(ion)
        for j in range(i, len(nodes)):
            node = nodes[j]
            if node_layer[node] > active_layer:
                break
            if order_key[node] > active_pos:
                candidates.append(node)
    candidates.sort(key=order_key.__getitem__)
    rank_start = future.executed_2q
    for node in candidates:
        if any(not executed[pred] for pred in dag.predecessors(node)):
            continue
        gate = dag.gate(node)
        ion_a, ion_b = gate.qubits
        trap_a = state.trap_of(ion_a)
        trap_b = state.trap_of(ion_b)
        if trap_a == trap_b:
            continue  # executes without a shuttle; frees no slot
        # The candidate's future starts at the active position (it will
        # execute first, everything else follows) and omits itself.
        view = future.view(active_pos, rank_start, exclude=node)
        decision = decide(gate, view, node_layer[node])
        if decision.src == old_destination:
            return order_key[node]
    return None


def _candidate_upcoming(
    pending: Sequence[int],
    active_pos: int,
    candidate_pos: int,
    dag: DependencyDAG,
):
    """Upcoming (gate, layer) pairs as seen by a hoisted candidate.

    After hoisting, the candidate executes first and everything from the
    active position onward (minus the candidate itself) follows, so that
    is the future the candidate's direction decision should look at.
    """
    for pos in range(active_pos, len(pending)):
        if pos == candidate_pos:
            continue
        index = pending[pos]
        yield dag.gate(index), dag.layer_of(index)
