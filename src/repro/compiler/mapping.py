"""Greedy initial mapping (Section IV-E3, policy of [14]).

Qubits are assigned to traps by walking the program's two-qubit gates in
order and greedily co-locating gate partners:

* if neither qubit is placed yet, both go to the lowest-id trap that can
  still take two ions (first-fit keeps interacting groups contiguous,
  which is how QCCDSim fills its traps);
* if exactly one is placed, the other joins it when its trap has load
  room, otherwise it goes to the trap *nearest to its partner's trap*
  with free load capacity (ties toward the lower trap id);
* qubits never touched by a two-qubit gate are placed first-fit at the
  end.

The mapping is deterministic, and the communication capacity stays
unoccupied, as required by the hardware model (Section II-B1).
"""

from __future__ import annotations

from ..arch.machine import QCCDMachine
from ..circuits.circuit import Circuit
from .state import CompilationError


def greedy_initial_mapping(
    circuit: Circuit, machine: QCCDMachine
) -> dict[int, list[int]]:
    """Compute trap id -> ordered ion chain for a circuit.

    Raises :class:`CompilationError` when the circuit has more qubits
    than the machine's load capacity.
    """
    machine_load = machine.load_capacity
    if circuit.num_qubits > machine_load:
        raise CompilationError(
            f"circuit {circuit.name!r} has {circuit.num_qubits} qubits but "
            f"machine {machine.name!r} can initially load only {machine_load}"
        )

    num_traps = machine.num_traps
    topology = machine.topology
    chains: list[list[int]] = [[] for _ in range(num_traps)]
    free = [machine.trap(t).load_capacity for t in range(num_traps)]
    placed: dict[int, int] = {}

    def first_fit(min_free: int = 1) -> int:
        for trap in range(num_traps):
            if free[trap] >= min_free:
                return trap
        raise CompilationError("machine load capacity exhausted")

    def nearest_with_room(home: int) -> int:
        candidates = [t for t in range(num_traps) if free[t] > 0]
        if not candidates:
            raise CompilationError("machine load capacity exhausted")
        return min(candidates, key=lambda t: (topology.distance(home, t), t))

    def place(qubit: int, trap: int) -> None:
        chains[trap].append(qubit)
        free[trap] -= 1
        placed[qubit] = trap

    for gate in circuit:
        if not gate.is_two_qubit:
            continue
        a, b = gate.qubits
        a_placed = a in placed
        b_placed = b in placed
        if a_placed and b_placed:
            continue
        if not a_placed and not b_placed:
            try:
                trap = first_fit(min_free=2)
            except CompilationError:
                trap = first_fit(min_free=1)
            place(a, trap)
            place(b, trap if free[trap] > 0 else nearest_with_room(trap))
        elif a_placed:
            home = placed[a]
            place(b, home if free[home] > 0 else nearest_with_room(home))
        else:
            home = placed[b]
            place(a, home if free[home] > 0 else nearest_with_room(home))

    for qubit in range(circuit.num_qubits):
        if qubit not in placed:
            place(qubit, first_fit())

    return {t: chain for t, chain in enumerate(chains)}


def round_robin_initial_mapping(
    circuit: Circuit, machine: QCCDMachine
) -> dict[int, list[int]]:
    """Interaction-blind mapping: qubit ``q`` -> trap ``q mod traps``.

    A deliberately weak alternative used by the initial-mapping study
    (the paper's Section IV-E3 names mapping policies as future work).
    """
    machine.check_fits(circuit.num_qubits)
    num_traps = machine.num_traps
    chains: list[list[int]] = [[] for _ in range(num_traps)]
    free = [machine.trap(t).load_capacity for t in range(num_traps)]
    for qubit in range(circuit.num_qubits):
        trap = qubit % num_traps
        while free[trap] <= 0:
            trap = (trap + 1) % num_traps
        chains[trap].append(qubit)
        free[trap] -= 1
    return {t: chain for t, chain in enumerate(chains)}


def random_initial_mapping(
    circuit: Circuit, machine: QCCDMachine, seed: int = 0
) -> dict[int, list[int]]:
    """Seeded random placement (the other pole of the mapping study)."""
    import random

    machine.check_fits(circuit.num_qubits)
    rng = random.Random(seed)
    qubits = list(range(circuit.num_qubits))
    rng.shuffle(qubits)
    num_traps = machine.num_traps
    chains: list[list[int]] = [[] for _ in range(num_traps)]
    free = [machine.trap(t).load_capacity for t in range(num_traps)]
    for qubit in qubits:
        candidates = [t for t in range(num_traps) if free[t] > 0]
        trap = rng.choice(candidates)
        chains[trap].append(qubit)
        free[trap] -= 1
    return {t: chain for t, chain in enumerate(chains)}


#: Named mapping policies for the initial-mapping study.
MAPPING_POLICIES = {
    "greedy": greedy_initial_mapping,
    "round-robin": round_robin_initial_mapping,
    "random": random_initial_mapping,
}


def initial_mapping(
    circuit: Circuit, machine: QCCDMachine, policy: str = "greedy", **kwargs
) -> dict[int, list[int]]:
    """Dispatch to a named initial-mapping policy."""
    try:
        factory = MAPPING_POLICIES[policy]
    except KeyError as exc:
        raise ValueError(
            f"unknown mapping policy {policy!r}; "
            f"choose from {sorted(MAPPING_POLICIES)}"
        ) from exc
    return factory(circuit, machine, **kwargs)
