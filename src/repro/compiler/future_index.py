"""Indexed future-gate engine: the compiler's O(window) decision hot path.

Every shuttle decision the compiler makes — move-score computation
(Section III-A2), max-score eviction (Section III-C2), Algorithm-1
re-ordering (Section III-B) — needs to look at the *upcoming* gate
stream.  The original implementation re-materialized the entire pending
tail as a fresh ``(gate, layer)`` generator per query and rescanned it,
making each decision O(remaining-program); on future-heavy circuits
(QFT, QAOA) the scan never hits the proximity cutoff because relevant
gates keep appearing, so compilation was quadratic in practice.

:class:`FutureGateIndex` replaces the stream with a per-ion index built
once per compile from the :class:`~repro.circuits.dag.DependencyDAG`:

* for each qubit, flat parallel arrays of its upcoming two-qubit gates
  in pending order (DAG node id + partner qubit), consumed through a
  monotone cursor that skips the executed prefix in O(1) amortized;
* per-node arrays ``order_key`` (the gate's current pending position),
  ``rank2q`` (number of two-qubit gates before it in pending order) and
  ``node_layer``, which let any consumer reconstruct *exactly* the
  stream-scan semantics — gate gaps for the ``"gates"`` proximity
  metric, layer gaps for ``"layers"``, eviction windows — while walking
  only the relevant ions' gate lists;
* an O(hoist-distance) :meth:`splice` patch applied when Algorithm-1
  re-ordering hoists a gate to the front of the pending tail.

Bit-identity with the retired tail scan rests on one structural
invariant, asserted at construction and on every splice: **pending-tail
layers are non-decreasing**.  The earliest-ready-first topological
order is layer-sorted, and a hoisted candidate's layer never exceeds
the active gate's, so the invariant survives every splice.  Under it,
the stream scan's break conditions collapse to conditions on the
relevant gates alone (see DESIGN.md §8 for the proof sketch), which is
what makes the per-ion walk exact rather than approximate.

The index also hosts the per-``(gate, mapping-epoch)`` move-score memo
(:attr:`score_memo`): ``favoured``, ``_score_margin`` and ``decide``
all need the same scores for the active gate, and the
:class:`~repro.compiler.state.CompilerState` epoch counter tells the
memo precisely when a shuttle has invalidated them.
"""

from __future__ import annotations

from ..circuits.dag import DependencyDAG

_EMPTY: tuple = ()


class FutureView:
    """A read-only window onto the pending tail, as one consumer sees it.

    Parameters
    ----------
    index:
        The per-compile :class:`FutureGateIndex`.
    start:
        Pending position the scan starts at (``pos + 1`` for direction
        decisions and evictions, ``active_pos`` for Algorithm-1
        candidate scoring, which sees the active gate in its future).
    rank_start:
        Number of two-qubit gates at pending positions ``< start``
        (the ``"gates"``-metric origin and the eviction-window origin).
    exclude:
        DAG node id elided from the stream, or ``None`` — Algorithm 1
        scores a hoist candidate against a future that omits the
        candidate itself.

    Policies and the re-balancer accept a view anywhere a plain
    ``(gate, layer)`` iterable is accepted; the isinstance dispatch
    picks the indexed scan.  Views are cheap throwaway objects: all
    mutable state (cursors, memo, counters) lives on the index.
    """

    __slots__ = ("index", "start", "rank_start", "exclude")

    def __init__(
        self,
        index: "FutureGateIndex",
        start: int,
        rank_start: int,
        exclude: int | None = None,
    ) -> None:
        self.index = index
        self.start = start
        self.rank_start = rank_start
        self.exclude = exclude

    def __iter__(self):
        """Yield the ``(gate, layer)`` stream this view stands for.

        The compatibility path for consumers that still want to walk
        the full tail (none in the compiler proper — this keeps views
        drop-in for external callers of the policy API and is the
        reference the property tests compare against).
        """
        index = self.index
        dag = index.dag
        executed = index.executed
        for node in index.pending_order(self.start):
            if node == self.exclude or executed[node]:
                continue
            yield dag.gate(node), index.node_layer[node]


class FutureGateIndex:
    """Per-ion index of the pending two-qubit gate stream.

    Parameters
    ----------
    dag:
        The circuit's dependency DAG.
    pending:
        The compiler's pending list (DAG node ids in execution order).
        The index snapshots per-node positions from it; the compiler
        reports subsequent mutations via :meth:`mark_executed` and
        :meth:`splice`.
    num_qubits:
        Circuit width (sizes the per-qubit arrays).
    """

    __slots__ = (
        "dag",
        "order_key",
        "rank2q",
        "node_layer",
        "executed",
        "executed_2q",
        "score_memo",
        "memo_epoch",
        "num_score_passes",
        "num_memo_hits",
        "num_decision_points",
        "_pending",
        "_ion_nodes",
        "_ion_partners",
        "_ion_cursor",
    )

    def __init__(
        self,
        dag: DependencyDAG,
        pending: list[int],
        num_qubits: int,
    ) -> None:
        n = len(dag)
        self.dag = dag
        self._pending = pending
        self.order_key = [0] * n
        self.rank2q = [0] * n
        self.node_layer = [dag.layer_of(i) for i in range(n)]
        self.executed = bytearray(n)
        self.executed_2q = 0
        #: (ion_a, ion_b, start, exclude) -> MoveScores, valid for
        #: :attr:`memo_epoch` only.  The epoch is monotone, so on a
        #: mapping change every existing entry is unreachable — the
        #: scorer clears the dict instead of letting dead keys
        #: accumulate over the whole compile.
        self.score_memo: dict = {}
        self.memo_epoch = -1
        #: Actual (memo-missing) move-score computations performed.
        self.num_score_passes = 0
        #: Move-score queries answered from :attr:`score_memo`.
        self.num_memo_hits = 0
        #: Cross-trap decision sequences entered by the compiler.
        self.num_decision_points = 0

        self._ion_nodes: list[list[int]] = [[] for _ in range(num_qubits)]
        self._ion_partners: list[list[int]] = [[] for _ in range(num_qubits)]
        self._ion_cursor = [0] * num_qubits

        rank = 0
        previous_layer = -1
        layers = self.node_layer
        for position, node in enumerate(pending):
            layer = layers[node]
            if layer < previous_layer:
                raise ValueError(
                    "pending order is not layer-monotone; the future-gate "
                    "index requires an earliest-ready-first order"
                )
            previous_layer = layer
            self.order_key[node] = position
            self.rank2q[node] = rank
            gate = dag.gate(node)
            if gate.is_two_qubit:
                q0, q1 = gate.qubits
                self._ion_nodes[q0].append(node)
                self._ion_partners[q0].append(q1)
                self._ion_nodes[q1].append(node)
                self._ion_partners[q1].append(q0)
                rank += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(
        self, start: int, rank_start: int, exclude: int | None = None
    ) -> FutureView:
        """A :class:`FutureView` window starting at pending position
        ``start`` with ``rank_start`` two-qubit gates before it."""
        return FutureView(self, start, rank_start, exclude)

    def ion_stream(self, ion: int) -> tuple[list[int], list[int], int]:
        """``(nodes, partners, first_live)`` for one ion's gate list.

        ``nodes[first_live:]`` are the ion's unexecuted upcoming
        two-qubit gates in pending order; the executed prefix is
        skipped once and the cursor persisted (amortized O(1)).  The
        prefix property holds because per-ion lists stay sorted by
        pending position (same-qubit gates are dependency-chained, so a
        hoistable candidate is already first among them) and executed
        gates occupy exactly the positions before the program counter.
        """
        if ion >= len(self._ion_nodes):
            return _EMPTY, _EMPTY, 0
        nodes = self._ion_nodes[ion]
        cursor = self._ion_cursor[ion]
        executed = self.executed
        end = len(nodes)
        while cursor < end and executed[nodes[cursor]]:
            cursor += 1
        self._ion_cursor[ion] = cursor
        return nodes, self._ion_partners[ion], cursor

    def pending_order(self, start: int):
        """Unexecuted DAG nodes at pending positions ``>= start`` in
        order (compatibility iteration for :meth:`FutureView.__iter__`)."""
        pending = self._pending
        for position in range(start, len(pending)):
            yield pending[position]

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------
    def mark_executed(self, node: int, is_two_qubit: bool) -> None:
        """Record that the compiler emitted gate ``node``."""
        self.executed[node] = 1
        if is_two_qubit:
            self.executed_2q += 1

    def splice(self, active_pos: int, candidate_pos: int) -> None:
        """Patch the index for an Algorithm-1 hoist, in O(hoist-distance).

        Mirrors ``pending.pop(candidate_pos); pending.insert(active_pos,
        candidate)`` *before* the list is mutated: gates in
        ``[active_pos, candidate_pos)`` shift one position later and gain
        the (always two-qubit) candidate as a predecessor in rank;
        the candidate takes over the active position's key and rank.
        Per-ion lists need no patch — the candidate's dependency
        predecessors have all executed, so no gate in the shifted window
        shares a qubit with it and every per-ion order is preserved.
        """
        pending = self._pending
        order_key = self.order_key
        rank2q = self.rank2q
        candidate = pending[candidate_pos]
        first = pending[active_pos]
        if self.node_layer[candidate] > self.node_layer[first]:
            raise ValueError(
                "hoisting a later-layer gate would break the "
                "layer-monotone pending invariant"
            )
        new_key = order_key[first]
        new_rank = rank2q[first]
        for position in range(active_pos, candidate_pos):
            moved = pending[position]
            order_key[moved] += 1
            rank2q[moved] += 1
        order_key[candidate] = new_key
        rank2q[candidate] = new_rank
