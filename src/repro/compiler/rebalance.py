"""Traffic-block resolution (Section III-C).

When a trap is full it can neither receive a shuttled ion nor let one
pass through (Fig. 7).  Resolution evicts one ion from the full trap to
another trap with excess capacity.  Two choices parameterize this:

* **destination-trap search** —
  ``lowest-index``: the [7] behaviour; scan from trap 0 and take the
  first trap with EC > 0 (Fig. 7 shows this costing 4 shuttles where 1
  suffices).
  ``nearest``: Algorithm 2; among traps with EC > 0 pick the one at the
  smallest topology distance (ties toward the lower trap id).

* **evicted-ion selection** —
  ``chain-head``: naive; the first eligible ion of the chain.
  ``max-score``: Section III-C2; score every eligible ion as
  ``wd * #gates-in-destination - ws * #gates-in-source`` over the
  upcoming gates and evict the maximum (``wd = ws = 0.5``; when an ion's
  two counts tie, ``wd = 0.49 / ws = 0.51`` so the score cannot be 0).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..circuits.gate import Gate
from .config import (
    DEFAULT_WEIGHT_DEST,
    DEFAULT_WEIGHT_SOURCE,
    TIE_WEIGHT_DEST,
    TIE_WEIGHT_SOURCE,
)
from .future_index import FutureView
from .state import CompilationError, CompilerState


def select_destination_trap(
    state: CompilerState,
    source_trap: int,
    strategy: str,
    exclude: frozenset[int] = frozenset(),
) -> int:
    """Pick the trap that will receive the evicted ion.

    ``exclude`` removes traps from consideration (e.g. a trap that must
    keep room for the ion currently being routed).
    """
    candidates = [
        trap
        for trap in range(state.machine.num_traps)
        if trap != source_trap
        and trap not in exclude
        and state.excess_capacity(trap) > 0
    ]
    if not candidates:
        raise CompilationError(
            f"no trap can absorb an eviction from trap {source_trap}"
        )
    if strategy == "lowest-index":
        return candidates[0]
    if strategy == "nearest":
        topology = state.machine.topology
        return min(
            candidates,
            key=lambda trap: (topology.distance(source_trap, trap), trap),
        )
    raise ValueError(f"unknown rebalance strategy {strategy!r}")


def select_ion_chain_head(
    state: CompilerState, source_trap: int, pinned: frozenset[int]
) -> int:
    """Naive eviction: first ion of the chain not pinned in place."""
    for ion in state.chains[source_trap]:
        if ion not in pinned:
            return ion
    raise CompilationError(
        f"every ion in trap {source_trap} is pinned; cannot re-balance"
    )


def select_ion_max_score(
    state: CompilerState,
    source_trap: int,
    destination_trap: int,
    pinned: frozenset[int],
    upcoming: Iterable[Gate] | FutureView,
    window: int,
) -> int:
    """Max-score eviction (Section III-C2).

    For each eligible ion, count its upcoming gates whose partner sits in
    the destination trap versus the source trap (first ``window``
    two-qubit gates of ``upcoming``), then maximize
    ``wd * dest_count - ws * source_count``.  Ties between ions resolve
    toward the chain head for determinism.
    """
    ion, _score = max_score_with_value(
        state, source_trap, destination_trap, pinned, upcoming, window
    )
    return ion


def max_score_with_value(
    state: CompilerState,
    source_trap: int,
    destination_trap: int,
    pinned: frozenset[int],
    upcoming: Iterable[Gate] | FutureView,
    window: int,
) -> tuple[int, float]:
    """Like :func:`select_ion_max_score` but also returns the score.

    Used by the compiler's cheap-eviction check: an eviction is only
    worth taking when the best candidate has a non-negative score (no
    near-future gates anchoring it to the full trap).

    ``upcoming`` is either a plain gate stream (scanned until
    ``window`` two-qubit gates have passed) or a
    :class:`~repro.compiler.future_index.FutureView`, in which case
    each candidate ion's own indexed gate list is walked instead —
    O(window slice of that list) per candidate rather than one full
    stream re-iteration per eviction.  A plain stream is consumed in
    exactly one pass, so one-shot generators are fine.
    """
    eligible = [ion for ion in state.chains[source_trap] if ion not in pinned]
    if not eligible:
        raise CompilationError(
            f"every ion in trap {source_trap} is pinned; cannot re-balance"
        )
    if isinstance(upcoming, FutureView):
        dest_count, source_count = _window_counts_indexed(
            state, eligible, source_trap, destination_trap, upcoming, window
        )
    else:
        dest_count = {ion: 0 for ion in eligible}
        source_count = {ion: 0 for ion in eligible}
        eligible_set = set(eligible)
        seen = 0
        for item in upcoming:
            gate = item[0] if isinstance(item, tuple) else item
            if not gate.is_two_qubit:
                continue
            seen += 1
            if seen > window:
                break
            q0, q1 = gate.qubits
            for ion, partner in ((q0, q1), (q1, q0)):
                if ion not in eligible_set:
                    continue
                try:
                    partner_trap = state.trap_of(partner)
                except CompilationError:
                    continue
                if partner_trap == destination_trap:
                    dest_count[ion] += 1
                elif partner_trap == source_trap:
                    source_count[ion] += 1
    best_ion = eligible[0]
    best_score = float("-inf")
    for ion in eligible:
        dest = dest_count[ion]
        source = source_count[ion]
        if dest == source:
            score = TIE_WEIGHT_DEST * dest - TIE_WEIGHT_SOURCE * source
        else:
            score = DEFAULT_WEIGHT_DEST * dest - DEFAULT_WEIGHT_SOURCE * source
        if score > best_score:
            best_score = score
            best_ion = ion
    return best_ion, best_score


def _window_counts_indexed(
    state: CompilerState,
    eligible: Sequence[int],
    source_trap: int,
    destination_trap: int,
    view: FutureView,
    window: int,
) -> tuple[dict[int, int], dict[int, int]]:
    """Per-ion destination/source partner counts from the future index.

    Exactly the counts the stream scan produces: a gate is inside the
    window iff fewer than ``window`` two-qubit gates (of any ions — the
    window is a property of the stream, not of the candidate) precede
    it from the view's start, which is what the per-node two-qubit rank
    measures.  Partners currently in transit are skipped, mirroring the
    stream scan's ``CompilationError`` guard.
    """
    index = view.index
    order_key = index.order_key
    rank2q = index.rank2q
    start = view.start
    exclude = view.exclude
    exclude_key = order_key[exclude] if exclude is not None else None
    rank_limit = view.rank_start + window
    dest_count: dict[int, int] = {}
    source_count: dict[int, int] = {}
    for ion in eligible:
        nodes, partners, i = index.ion_stream(ion)
        dest = source = 0
        for j in range(i, len(nodes)):
            node = nodes[j]
            key = order_key[node]
            if key < start or node == exclude:
                continue
            rank = rank2q[node]
            if exclude_key is not None and exclude_key < key:
                rank -= 1
            if rank >= rank_limit:
                break
            try:
                partner_trap = state.trap_of(partners[j])
            except CompilationError:
                continue
            if partner_trap == destination_trap:
                dest += 1
            elif partner_trap == source_trap:
                source += 1
        dest_count[ion] = dest
        source_count[ion] = source
    return dest_count, source_count


def select_eviction(
    state: CompilerState,
    source_trap: int,
    strategy: str,
    ion_selection: str,
    pinned: frozenset[int],
    upcoming: Iterable[Gate] | FutureView,
    window: int,
    exclude_traps: frozenset[int] = frozenset(),
) -> tuple[int, int]:
    """Full re-balancing decision: (ion to evict, destination trap)."""
    destination = select_destination_trap(
        state, source_trap, strategy, exclude_traps
    )
    if ion_selection == "chain-head":
        ion = select_ion_chain_head(state, source_trap, pinned)
    elif ion_selection == "max-score":
        ion = select_ion_max_score(
            state, source_trap, destination, pinned, upcoming, window
        )
    else:
        raise ValueError(f"unknown ion selection {ion_selection!r}")
    return ion, destination
