"""Mutable machine state tracked during compilation.

The compiler shadows the machine: which trap each ion occupies, how full
every trap is.  This is the state both shuttle-direction policies and the
re-balancing logic query (excess capacities, chain membership).

Since the machine-semantics kernel landed, :class:`CompilerState` is a
thin façade over :class:`repro.core.state.MachineState` — the same
array-backed engine that executes schedules in the simulator and the
verifier.  The façade preserves the historical query/mutation API (and
its :class:`CompilationError` exception type) for the policies,
re-ordering and re-balancing modules.
"""

from __future__ import annotations

from ..arch.machine import QCCDMachine
from ..core.errors import MachineModelError
from ..core.state import MachineState


class CompilationError(MachineModelError):
    """Raised when a circuit cannot be compiled onto the machine."""


class CompilerState:
    """Ion placement state during compilation.

    Parameters
    ----------
    machine:
        Static machine description.
    initial_chains:
        Trap id -> ordered ion chain, as produced by the initial mapper.
    """

    __slots__ = ("machine", "chains", "epoch", "_state", "_lookup", "_capacities")

    def __init__(
        self, machine: QCCDMachine, initial_chains: dict[int, list[int]]
    ) -> None:
        self.machine = machine
        try:
            self._state = MachineState(machine, initial_chains)
        except MachineModelError as exc:
            raise CompilationError(str(exc)) from None
        # The kernel mutates these containers in place (extend/append),
        # never rebinds them, so caching the references is safe — and
        # the shuttle policies hammer trap_of/excess_capacity hard
        # enough that skipping two delegation frames is measurable.
        self.chains = self._state.chains
        self._lookup = self._state._trap_of
        self._capacities = self._state.capacities
        #: Mapping epoch: bumped on every mutation.  Anything derived
        #: from ion placement (the future-gate index's move-score memo)
        #: keys on it, so a shuttle invalidates exactly the memo
        #: entries it should and nothing else.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def trap_of(self, ion: int) -> int:
        """Trap currently holding ``ion``."""
        lookup = self._lookup
        if 0 <= ion < len(lookup):
            trap = lookup[ion]
            if trap >= 0:
                return trap
        raise CompilationError(f"ion {ion} is not mapped")

    def occupancy(self, trap: int) -> int:
        """Number of ions in a trap."""
        return len(self.chains[trap])

    def excess_capacity(self, trap: int) -> int:
        """EC = total capacity - occupancy (the paper's key quantity)."""
        return self._capacities[trap] - len(self.chains[trap])

    def is_full(self, trap: int) -> bool:
        """True when the trap cannot accept another ion."""
        return len(self.chains[trap]) >= self._capacities[trap]

    def chain(self, trap: int) -> list[int]:
        """Copy of the trap's ion chain."""
        return list(self.chains[trap])

    def co_located(self, ion_a: int, ion_b: int) -> bool:
        """True when both ions share a trap (gate directly executable)."""
        return self.trap_of(ion_a) == self.trap_of(ion_b)

    # ------------------------------------------------------------------
    # Mutations (mirroring split/merge)
    # ------------------------------------------------------------------
    def detach_ion(self, ion: int) -> int:
        """Remove an ion from its chain (split); returns the source trap."""
        self.epoch += 1
        try:
            return self._state.detach_ion(ion)
        except MachineModelError as exc:
            raise CompilationError(str(exc)) from None

    def attach_ion(self, ion: int, trap: int, position: int | None = None) -> None:
        """Attach an ion to a trap's chain (merge).

        ``position`` inserts at that chain index (0 = head); the default
        appends at the tail.
        """
        self.epoch += 1
        try:
            self._state.attach_ion(ion, trap, position)
        except MachineModelError as exc:
            raise CompilationError(str(exc)) from None

    def swap_adjacent(self, trap: int, index: int) -> tuple[int, int]:
        """Exchange the chain neighbours at ``index`` and ``index + 1``;
        returns the swapped ion pair."""
        self.epoch += 1
        try:
            return self._state.swap_adjacent(trap, index)
        except MachineModelError as exc:
            raise CompilationError(str(exc)) from None

    def snapshot_chains(self) -> dict[int, list[int]]:
        """Trap id -> chain copy (for simulator hand-off and reports)."""
        return self._state.chains_dict()
