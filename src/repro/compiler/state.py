"""Mutable machine state tracked during compilation.

The compiler shadows the machine: which trap each ion occupies, how full
every trap is.  This is the state both shuttle-direction policies and the
re-balancing logic query (excess capacities, chain membership).
"""

from __future__ import annotations

from ..arch.machine import QCCDMachine


class CompilationError(RuntimeError):
    """Raised when a circuit cannot be compiled onto the machine."""


class CompilerState:
    """Ion placement state during compilation.

    Parameters
    ----------
    machine:
        Static machine description.
    initial_chains:
        Trap id -> ordered ion chain, as produced by the initial mapper.
    """

    def __init__(
        self, machine: QCCDMachine, initial_chains: dict[int, list[int]]
    ) -> None:
        self.machine = machine
        self.chains: list[list[int]] = [
            list(initial_chains.get(t, [])) for t in range(machine.num_traps)
        ]
        self._trap_of: dict[int, int] = {}
        for trap_id, chain in enumerate(self.chains):
            capacity = machine.trap(trap_id).capacity
            if len(chain) > capacity:
                raise CompilationError(
                    f"initial chain of trap {trap_id} ({len(chain)} ions) "
                    f"exceeds capacity {capacity}"
                )
            for ion in chain:
                if ion in self._trap_of:
                    raise CompilationError(
                        f"ion {ion} mapped to multiple traps"
                    )
                self._trap_of[ion] = trap_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def trap_of(self, ion: int) -> int:
        """Trap currently holding ``ion``."""
        try:
            return self._trap_of[ion]
        except KeyError as exc:
            raise CompilationError(f"ion {ion} is not mapped") from exc

    def occupancy(self, trap: int) -> int:
        """Number of ions in a trap."""
        return len(self.chains[trap])

    def excess_capacity(self, trap: int) -> int:
        """EC = total capacity - occupancy (the paper's key quantity)."""
        return self.machine.trap(trap).capacity - len(self.chains[trap])

    def is_full(self, trap: int) -> bool:
        """True when the trap cannot accept another ion."""
        return self.excess_capacity(trap) <= 0

    def chain(self, trap: int) -> list[int]:
        """Copy of the trap's ion chain."""
        return list(self.chains[trap])

    def co_located(self, ion_a: int, ion_b: int) -> bool:
        """True when both ions share a trap (gate directly executable)."""
        return self.trap_of(ion_a) == self.trap_of(ion_b)

    # ------------------------------------------------------------------
    # Mutations (mirroring split/merge)
    # ------------------------------------------------------------------
    def detach_ion(self, ion: int) -> int:
        """Remove an ion from its chain (split); returns the source trap."""
        trap = self.trap_of(ion)
        self.chains[trap].remove(ion)
        del self._trap_of[ion]
        return trap

    def attach_ion(self, ion: int, trap: int, position: int | None = None) -> None:
        """Attach an ion to a trap's chain (merge).

        ``position`` inserts at that chain index (0 = head); the default
        appends at the tail.
        """
        if ion in self._trap_of:
            raise CompilationError(
                f"ion {ion} attached while still in trap {self._trap_of[ion]}"
            )
        if self.is_full(trap):
            raise CompilationError(
                f"ion {ion} attached to full trap {trap}"
            )
        if position is None:
            self.chains[trap].append(ion)
        else:
            self.chains[trap].insert(position, ion)
        self._trap_of[ion] = trap

    def swap_adjacent(self, trap: int, index: int) -> tuple[int, int]:
        """Exchange the chain neighbours at ``index`` and ``index + 1``;
        returns the swapped ion pair."""
        chain = self.chains[trap]
        if not 0 <= index < len(chain) - 1:
            raise CompilationError(
                f"no adjacent pair at position {index} in trap {trap}"
            )
        chain[index], chain[index + 1] = chain[index + 1], chain[index]
        return chain[index], chain[index + 1]

    def snapshot_chains(self) -> dict[int, list[int]]:
        """Trap id -> chain copy (for simulator hand-off and reports)."""
        return {t: list(chain) for t, chain in enumerate(self.chains)}
