"""Compiler configuration.

Two presets reproduce the paper's comparison:

* :meth:`CompilerConfig.baseline` — the QCCD compiler of Murali et
  al. [7]: excess-capacity shuttle direction (Listing 1), no gate
  re-ordering, re-balancing destination search starting from trap 0,
  naive evicted-ion choice.
* :meth:`CompilerConfig.optimized` — this work: future-ops shuttle
  direction with gate-proximity 6 (Section III-A), opportunistic gate
  re-ordering (Algorithm 1), nearest-neighbour-first re-balancing with
  max-score ion selection (Algorithm 2).

Each heuristic can also be toggled independently for the ablation study
(DESIGN.md experiment E5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Paper value of the gate-proximity design parameter (Section III-A3).
DEFAULT_PROXIMITY = 6

#: Max-score ion-selection weights (Section III-C2).
DEFAULT_WEIGHT_DEST = 0.5
DEFAULT_WEIGHT_SOURCE = 0.5
TIE_WEIGHT_DEST = 0.49
TIE_WEIGHT_SOURCE = 0.51


@dataclass(frozen=True)
class CompilerConfig:
    """Tunable knobs of the QCCD compiler.

    Parameters
    ----------
    shuttle_policy:
        ``"excess-capacity"`` (Listing 1 of [7]) or ``"future-ops"``
        (Section III-A2 of the paper).
    proximity:
        Gate-proximity cutoff for the future-ops scan; ``None`` disables
        the cutoff (scan the entire remaining program).
    reorder:
        Enable opportunistic gate re-ordering (Algorithm 1).
    max_reorder_attempts:
        Bound on re-order hoists per active gate (loop safety; the paper
        hoists once per full-destination event).
    rebalance:
        Destination-trap search for traffic-block resolution:
        ``"lowest-index"`` (the [7] behaviour: scan from trap 0) or
        ``"nearest"`` (Algorithm 2).
    ion_selection:
        Which ion to evict from a full trap: ``"chain-head"`` (naive) or
        ``"max-score"`` (Section III-C2).
    rebalance_window:
        Number of upcoming two-qubit gates inspected when scoring
        eviction candidates (the paper bounds this implicitly via its
        O(constant * n) argument; 64 keeps the scan cheap).
    tie_break:
        Future-ops tie handling: ``"excess-capacity"`` falls back to
        Listing 1, ``"first-ion"`` always moves the gate's first ion.
    proximity_metric:
        How the Fig. 5 gate distance is measured: ``"layers"``
        (DAG-layer difference, scale-invariant, default) or ``"gates"``
        (intervening gate count, the most literal reading); see
        :mod:`repro.compiler.policies`.
    capacity_guard:
        Future-ops directions never move an ion into a trap whose excess
        capacity is at or below this value (default 1: one slot of each
        trap stays free).  Measured in ablation E5 to prevent
        re-balancing storms; 0 disables the veto.
    score_decay:
        Geometric per-layer weight on future gates during scoring
        (default 1.0 = the paper's unweighted counts); an extension
        studied in ablation E4.
    cheap_evict:
        When the favourable destination is full and no re-order
        candidate exists, evict a max-score ion to a *directly
        neighbouring* free trap (one shuttle) so the favourable
        direction stays achievable — the Section III-C machinery applied
        at the destination.  Off by default: the E5 ablation measures it
        as a net loss (it feeds a revolving door at congested traps).
    post_passes:
        Post-compilation schedule-optimization passes
        (:mod:`repro.passes`) applied, in order, to the emitted
        schedule: each named pass rewrites the op stream (round-trip
        elision, merge/split fusion, congestion re-routing, gate
        hoisting), is verified for machine legality and circuit
        equivalence, and is rolled back when the simulated program
        fidelity regresses (guard simulated under the default
        parameter set).  Empty (the default) compiles exactly as the
        paper does; ``("default",)`` expands to the full pipeline.
        Part of the batch-cache fingerprint, so cached results stay
        sound across pass configurations.
    track_chain_order:
        Model physical ion order within chains (Fig. 3 step (i)): an
        ion must sit at the chain end facing its exit edge before it
        can split, so the router emits in-chain SWAP ops to reposition
        it, and merges record which end the ion entered.  Swaps are not
        shuttles (Table II counts are unchanged) but cost time and
        heating in the simulator.  Off by default.
    name:
        Label used in reports.
    """

    shuttle_policy: str = "future-ops"
    proximity: int | None = DEFAULT_PROXIMITY
    reorder: bool = True
    max_reorder_attempts: int = 4
    rebalance: str = "nearest"
    ion_selection: str = "max-score"
    rebalance_window: int = 64
    tie_break: str = "excess-capacity"
    proximity_metric: str = "layers"
    capacity_guard: int = 1
    score_decay: float = 1.0
    cheap_evict: bool = False
    post_passes: tuple[str, ...] = ()
    track_chain_order: bool = False
    name: str = "optimized"

    def __post_init__(self) -> None:
        if self.shuttle_policy not in ("excess-capacity", "future-ops"):
            raise ValueError(
                f"unknown shuttle_policy {self.shuttle_policy!r}"
            )
        if self.rebalance not in ("lowest-index", "nearest"):
            raise ValueError(f"unknown rebalance {self.rebalance!r}")
        if self.ion_selection not in ("chain-head", "max-score"):
            raise ValueError(f"unknown ion_selection {self.ion_selection!r}")
        if self.tie_break not in ("excess-capacity", "first-ion"):
            raise ValueError(f"unknown tie_break {self.tie_break!r}")
        if self.proximity_metric not in ("layers", "gates"):
            raise ValueError(
                f"unknown proximity_metric {self.proximity_metric!r}"
            )
        if self.proximity is not None and self.proximity < 0:
            raise ValueError("proximity must be non-negative or None")
        if self.max_reorder_attempts < 0:
            raise ValueError("max_reorder_attempts must be non-negative")
        if self.rebalance_window <= 0:
            raise ValueError("rebalance_window must be positive")
        if self.capacity_guard < 0:
            raise ValueError("capacity_guard must be non-negative")
        if not 0.0 < self.score_decay <= 1.0:
            raise ValueError("score_decay must be in (0, 1]")
        if self.post_passes:
            # Normalize to a validated tuple ("default"/"all" expand to
            # the full pipeline); unknown names raise here, not at the
            # end of a long compilation.
            from ..passes.registry import resolve_pass_names

            object.__setattr__(
                self, "post_passes", resolve_pass_names(self.post_passes)
            )
        elif not isinstance(self.post_passes, tuple):
            object.__setattr__(self, "post_passes", ())

    @classmethod
    def baseline(cls) -> "CompilerConfig":
        """The QCCD compiler of Murali et al. [7]."""
        return cls(
            shuttle_policy="excess-capacity",
            proximity=None,
            reorder=False,
            rebalance="lowest-index",
            ion_selection="chain-head",
            cheap_evict=False,
            name="baseline[7]",
        )

    @classmethod
    def optimized(cls, proximity: int = DEFAULT_PROXIMITY) -> "CompilerConfig":
        """This work: all three heuristics enabled (paper defaults)."""
        return cls(proximity=proximity, name="this-work")

    def variant(self, **kwargs) -> "CompilerConfig":
        """Copy with fields overridden (used by the ablation harness)."""
        return replace(self, **kwargs)
