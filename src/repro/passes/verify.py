"""Schedule legality verification and circuit-equivalence checks.

Every optimization pass rewrites the op stream; this module is the
safety net that makes those rewrites trustworthy.  :func:`verify_schedule`
replays a schedule op by op against the machine model — the same rules
the simulator enforces (ion placement, trap capacity, transit discipline,
in-chain adjacency) but without timing or noise, so a full legality check
costs one linear scan.  :func:`verify_equivalent` then checks that an
optimized schedule still executes the *same program*: the gate multiset
is unchanged and every qubit sees its gates in the original order (which
implies every dependency edge of the circuit DAG is respected).

The pass manager refuses to return any schedule that fails either check;
individual passes also use :func:`is_legal` as the accept/revert oracle
for speculative rewrites.
"""

from __future__ import annotations

from collections import Counter

from ..arch.machine import QCCDMachine
from ..sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.schedule import Schedule


class VerificationError(RuntimeError):
    """Raised when a schedule is illegal or not circuit-equivalent."""


def verify_schedule(
    machine: QCCDMachine,
    schedule: Schedule,
    initial_chains: dict[int, list[int]],
) -> dict[int, list[int]]:
    """Replay ``schedule`` against the machine model; raise on the first
    illegal op.  Returns the final per-trap chains of the replay.

    Checks (mirroring :class:`~repro.sim.simulator.Simulator`):

    * initial chains fit their traps and place each ion once,
    * gates execute only on co-located ions,
    * splits take ions that are present and not already in transit,
    * moves follow existing edges into traps with spare capacity,
    * merges land transit ions in the trap they actually reached,
    * swaps exchange *adjacent* chain members,
    * no ion is left in transit at the end.
    """
    chains: list[list[int]] = []
    placed: set[int] = set()
    for spec in machine.traps:
        chain = list(initial_chains.get(spec.trap_id, []))
        if len(chain) > spec.capacity:
            raise VerificationError(
                f"initial chain of trap {spec.trap_id} exceeds capacity"
            )
        overlap = placed.intersection(chain)
        if overlap:
            raise VerificationError(
                f"ions {sorted(overlap)} appear in multiple traps"
            )
        placed.update(chain)
        chains.append(chain)

    capacities = [spec.capacity for spec in machine.traps]
    topology = machine.topology
    transit: dict[int, int] = {}  # ion -> trap it is parked beside

    for position, op in enumerate(schedule):
        if isinstance(op, GateOp):
            chain = chains[op.trap]
            for qubit in op.gate.qubits:
                if qubit not in chain:
                    raise VerificationError(
                        f"op {position}: gate {op.gate} in trap {op.trap} "
                        f"but ion {qubit} is not there"
                    )
        elif isinstance(op, SplitOp):
            if op.ion in transit:
                raise VerificationError(
                    f"op {position}: ion {op.ion} split while in transit"
                )
            if op.ion not in chains[op.trap]:
                raise VerificationError(
                    f"op {position}: ion {op.ion} split from trap "
                    f"{op.trap} but it is not there"
                )
            chains[op.trap].remove(op.ion)
            transit[op.ion] = op.trap
        elif isinstance(op, MoveOp):
            at = transit.get(op.ion)
            if at is None:
                raise VerificationError(
                    f"op {position}: ion {op.ion} moved without a split"
                )
            if at != op.src:
                raise VerificationError(
                    f"op {position}: ion {op.ion} moved from trap "
                    f"{op.src} but it is at trap {at}"
                )
            if op.dst not in topology.neighbors(op.src):
                raise VerificationError(
                    f"op {position}: no shuttle path {op.src} -> {op.dst}"
                )
            if len(chains[op.dst]) >= capacities[op.dst]:
                raise VerificationError(
                    f"op {position}: ion {op.ion} moved into full trap "
                    f"{op.dst}"
                )
            transit[op.ion] = op.dst
        elif isinstance(op, MergeOp):
            at = transit.get(op.ion)
            if at is None:
                raise VerificationError(
                    f"op {position}: ion {op.ion} merged without a split"
                )
            if at != op.trap:
                raise VerificationError(
                    f"op {position}: ion {op.ion} merged into trap "
                    f"{op.trap} but it is at trap {at}"
                )
            if len(chains[op.trap]) >= capacities[op.trap]:
                raise VerificationError(
                    f"op {position}: ion {op.ion} merged into full trap "
                    f"{op.trap}"
                )
            if op.position is None:
                chains[op.trap].append(op.ion)
            else:
                chains[op.trap].insert(op.position, op.ion)
            del transit[op.ion]
        elif isinstance(op, SwapOp):
            chain = chains[op.trap]
            for ion in (op.ion_a, op.ion_b):
                if ion not in chain:
                    raise VerificationError(
                        f"op {position}: swap of ion {ion} in trap "
                        f"{op.trap} but it is not there"
                    )
            if abs(chain.index(op.ion_a) - chain.index(op.ion_b)) != 1:
                raise VerificationError(
                    f"op {position}: ions {op.ion_a} and {op.ion_b} "
                    f"not adjacent in trap {op.trap}"
                )
            a, b = chain.index(op.ion_a), chain.index(op.ion_b)
            chain[a], chain[b] = chain[b], chain[a]
        else:
            raise VerificationError(f"op {position}: unknown op {op!r}")

    if transit:
        raise VerificationError(
            f"schedule ended with ions in transit: {sorted(transit)}"
        )
    return {trap: chain for trap, chain in enumerate(chains)}


def is_legal(
    machine: QCCDMachine,
    schedule: Schedule,
    initial_chains: dict[int, list[int]],
) -> bool:
    """Boolean form of :func:`verify_schedule` (the pass accept oracle)."""
    try:
        verify_schedule(machine, schedule, initial_chains)
    except VerificationError:
        return False
    return True


def gate_multiset(schedule: Schedule) -> Counter:
    """Multiset of executed gates (name, qubits, params)."""
    return Counter(op.gate for op in schedule.gate_ops())


def qubit_gate_sequences(schedule: Schedule) -> dict[int, tuple]:
    """Per-qubit gate order: qubit -> tuple of gates touching it, in
    execution order.  Two schedules with equal sequences execute the
    same circuit up to reordering of independent gates — every
    dependency edge (gates sharing a qubit) keeps its direction."""
    sequences: dict[int, list] = {}
    for op in schedule:
        if isinstance(op, GateOp):
            for qubit in op.gate.qubits:
                sequences.setdefault(qubit, []).append(op.gate)
    return {qubit: tuple(gates) for qubit, gates in sequences.items()}


def verify_equivalent(before: Schedule, after: Schedule) -> None:
    """Raise unless ``after`` executes the same circuit as ``before``.

    Equivalence = identical gate multiset and identical per-qubit gate
    order (dependency edges preserved).  Shuttle structure is free to
    differ — that is what the passes rewrite.
    """
    if gate_multiset(before) != gate_multiset(after):
        raise VerificationError(
            "optimized schedule changed the gate multiset"
        )
    if qubit_gate_sequences(before) != qubit_gate_sequences(after):
        raise VerificationError(
            "optimized schedule reordered dependent gates"
        )
