"""Schedule legality verification and circuit-equivalence checks.

Every optimization pass rewrites the op stream; this module is the
safety net that makes those rewrites trustworthy.  :func:`verify_schedule`
replays a schedule through the machine-semantics kernel
(:mod:`repro.core`) — *the same engine* the simulator executes and the
compiler's forward state mutates, so the rules (ion placement, trap
capacity, transit discipline, in-chain adjacency) cannot drift between
layers — but without timing or noise observers, so a full legality
check costs one linear scan.  :func:`verify_equivalent` then checks
that an optimized schedule still executes the *same program*: the gate
multiset is unchanged and every qubit sees its gates in the original
order (which implies every dependency edge of the circuit DAG is
respected).

The pass manager refuses to return any schedule that fails either check;
individual passes also use :func:`is_legal` as the accept/revert oracle
for speculative rewrites.
"""

from __future__ import annotations

from collections import Counter

from ..arch.machine import QCCDMachine
from ..core.errors import MachineModelError
from ..core.replay import is_applicable, replay
from ..core.vector import batched_replay, vector_kernel_enabled
from ..sim.ops import GateOp
from ..sim.schedule import Schedule


class VerificationError(MachineModelError):
    """Raised when a schedule is illegal or not circuit-equivalent."""


def verify_schedule(
    machine: QCCDMachine,
    schedule: Schedule,
    initial_chains: dict[int, list[int]],
    use_vector_kernel: bool | None = None,
) -> dict[int, list[int]]:
    """Replay ``schedule`` against the machine model; raise on the first
    illegal op.  Returns the final per-trap chains of the replay.

    Checks (the kernel's rules, shared with
    :class:`~repro.sim.simulator.Simulator`):

    * initial chains fit their traps and place each ion once,
    * gates execute only on co-located ions,
    * splits take ions that are present and not already in transit,
    * moves follow existing edges into traps with spare capacity,
    * merges land transit ions in the trap they actually reached,
    * swaps exchange *adjacent* chain members,
    * no ion is left in transit at the end.
    """
    try:
        if vector_kernel_enabled(use_vector_kernel):
            state = batched_replay(machine, schedule, initial_chains)
        else:
            state = replay(machine, schedule, initial_chains)
    except MachineModelError as exc:
        raise VerificationError(str(exc)) from None
    return state.chains_dict()


def is_legal(
    machine: QCCDMachine,
    schedule: Schedule,
    initial_chains: dict[int, list[int]],
    use_vector_kernel: bool | None = None,
) -> bool:
    """Boolean form of :func:`verify_schedule` (the pass accept oracle)."""
    if vector_kernel_enabled(use_vector_kernel):
        try:
            batched_replay(machine, schedule, initial_chains)
        except MachineModelError:
            return False
        return True
    return is_applicable(machine, schedule, initial_chains)


def gate_multiset(schedule: Schedule) -> Counter:
    """Multiset of executed gates (name, qubits, params)."""
    return Counter(op.gate for op in schedule.gate_ops())


def qubit_gate_sequences(schedule: Schedule) -> dict[int, tuple]:
    """Per-qubit gate order: qubit -> tuple of gates touching it, in
    execution order.  Two schedules with equal sequences execute the
    same circuit up to reordering of independent gates — every
    dependency edge (gates sharing a qubit) keeps its direction."""
    sequences: dict[int, list] = {}
    for op in schedule:
        if isinstance(op, GateOp):
            for qubit in op.gate.qubits:
                sequences.setdefault(qubit, []).append(op.gate)
    return {qubit: tuple(gates) for qubit, gates in sequences.items()}


class EquivalenceReference:
    """Precomputed circuit-equivalence reference for one schedule.

    The pass manager compares every pass candidate against the *same*
    original schedule; rebuilding the original's gate multiset and
    per-qubit orders for each candidate doubled the equivalence cost.
    Build the reference once per optimization run, then
    :meth:`verify` each candidate against it — identical verdicts,
    half the work.
    """

    __slots__ = ("_multiset", "_sequences")

    def __init__(self, schedule: Schedule) -> None:
        self._multiset = gate_multiset(schedule)
        self._sequences = qubit_gate_sequences(schedule)

    def verify(self, candidate: Schedule) -> None:
        """Raise unless ``candidate`` executes the reference circuit."""
        if gate_multiset(candidate) != self._multiset:
            raise VerificationError(
                "optimized schedule changed the gate multiset"
            )
        if qubit_gate_sequences(candidate) != self._sequences:
            raise VerificationError(
                "optimized schedule reordered dependent gates"
            )


def verify_equivalent(before: Schedule, after: Schedule) -> None:
    """Raise unless ``after`` executes the same circuit as ``before``.

    Equivalence = identical gate multiset and identical per-qubit gate
    order (dependency edges preserved).  Shuttle structure is free to
    differ — that is what the passes rewrite.
    """
    EquivalenceReference(before).verify(after)
