"""The pass manager: composable, verified schedule optimization.

:class:`PassManager` applies a pipeline of
:class:`~repro.passes.base.SchedulePass` rewrites to a compiled
schedule.  Safety is non-negotiable:

* the input schedule is verified before any pass runs (garbage in is
  reported, not "optimized"),
* after every pass that rewrote anything, the output is re-verified for
  machine legality *and* circuit equivalence against the original
  schedule — a pass emitting an unverifiable stream is a bug and raises
  :class:`PassError`; the manager never returns an unverified schedule,
* a pass that *increased* the shuttle count is discarded (defense in
  depth — no shipped pass can, by construction),
* with ``fidelity_guard`` enabled, each pass's output is additionally
  scored for program fidelity and the pass is rolled back when fidelity
  dropped — heat-redistributing rewrites are kept only when they pay.

The verify-and-revert loop runs on the kernel's *incremental* replay:
the input schedule is replayed once into a
:class:`~repro.core.replay.CheckpointedReplay` (machine-state
checkpoints every √N ops, each carrying a
:class:`~repro.core.observers.HeatingObserver` snapshot when the
fidelity guard is on), and every pass output is then verified as a
``(start, end, replacement)`` splice: one scan from the checkpoint
nearest the first divergent op computes the legality verdict, the
final chains *and* the program log-fidelity — bit-identical floats to
a from-scratch replay, at a fraction of the work when the pass's
edits cluster late in the stream.  Circuit equivalence is checked
against a reference (gate multiset + per-qubit orders) precomputed
once from the input schedule.

The result records a per-pass stats delta so reports can attribute
savings to individual rewrites.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from ..arch.machine import QCCDMachine
from ..obs import active as _obs_active
from ..core.errors import MachineModelError
from ..core.observers import HeatingObserver
from ..core.replay import CheckpointedReplay
from ..sim.params import DEFAULT_PARAMS, MachineParams
from ..sim.schedule import Schedule
from .base import PassContext, SchedulePass
from .registry import make_passes
from .verify import EquivalenceReference, VerificationError

#: Log-fidelity slack below which a guarded pass counts as "no worse".
_LOG_FIDELITY_TOLERANCE = 1e-9


class PassError(RuntimeError):
    """Raised when a pass emits an illegal or non-equivalent schedule."""


def _diff_splice(
    current: list, candidate: tuple
) -> tuple[int, int, list]:
    """Describe ``candidate`` as a splice of ``current``.

    Returns ``(start, end, replacement)`` with
    ``candidate == current[:start] + replacement + current[end:]`` —
    the longest shared prefix and suffix are factored out, so the
    incremental engine verifies only the divergent window.  Untouched
    ops are shared by reference between the streams (passes copy
    references), so the scans are dominated by identity checks.
    """
    n_current, n_candidate = len(current), len(candidate)
    limit = min(n_current, n_candidate)
    start = 0
    while start < limit:
        a, b = current[start], candidate[start]
        if a is not b and a != b:
            break
        start += 1
    end_current, end_candidate = n_current, n_candidate
    while end_current > start and end_candidate > start:
        a, b = current[end_current - 1], candidate[end_candidate - 1]
        if a is not b and a != b:
            break
        end_current -= 1
        end_candidate -= 1
    return start, end_current, list(candidate[start:end_candidate])


@dataclass(frozen=True)
class PassStats:
    """What one pass did to the op stream."""

    name: str
    rewrites: int
    shuttles_removed: int = 0
    splits_removed: int = 0
    merges_removed: int = 0
    swaps_removed: int = 0
    ops_removed: int = 0
    #: True when the fidelity guard rolled the pass back (its rewrites
    #: were legal but made the simulated program fidelity worse).
    reverted: bool = False

    @property
    def effective(self) -> bool:
        """True when the pass changed the shipped schedule."""
        return self.rewrites > 0 and not self.reverted


@dataclass
class OptimizationResult:
    """Outcome of one pass-pipeline run."""

    schedule: Schedule
    raw_schedule: Schedule
    passes: tuple[PassStats, ...] = ()
    #: Per-trap chains after executing the optimized schedule (from the
    #: verification replay; pass rewrites can change final chain order).
    final_chains: dict[int, list[int]] | None = None

    @property
    def raw_num_shuttles(self) -> int:
        return self.raw_schedule.num_shuttles

    @property
    def num_shuttles(self) -> int:
        return self.schedule.num_shuttles

    @property
    def shuttles_removed(self) -> int:
        return self.raw_num_shuttles - self.num_shuttles

    @property
    def total_rewrites(self) -> int:
        return sum(s.rewrites for s in self.passes if not s.reverted)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        applied = [s.name for s in self.passes if s.effective]
        return (
            f"{self.raw_num_shuttles} -> {self.num_shuttles} shuttles "
            f"({self.shuttles_removed} removed, "
            f"{self.total_rewrites} rewrites via "
            f"{', '.join(applied) if applied else 'no passes'})"
        )


class PassManager:
    """Applies a verified pipeline of schedule-optimization passes.

    Parameters
    ----------
    passes:
        Pass names (see :mod:`repro.passes.registry`), pass instances,
        or ``None`` for the default pipeline.
    fidelity_guard:
        Score each pass's output for program fidelity and roll the
        pass back when it regressed.  Piggybacks on the verification
        replay (a heating observer on the same kernel scan), so the
        guard costs no extra replay; recommended (and the compiler's
        default) since heat-redistributing rewrites are not
        universally profitable.
    params:
        Timing/noise parameters used by the fidelity guard.
    """

    def __init__(
        self,
        passes: object = None,
        fidelity_guard: bool = True,
        params: MachineParams = DEFAULT_PARAMS,
        use_vector_kernel: bool | None = None,
    ) -> None:
        self.passes: list[SchedulePass] = make_passes(passes)
        self.fidelity_guard = fidelity_guard
        self.params = params
        #: Build the incremental engine's construction replay on the
        #: batched numpy kernel (None = on when numpy is available).
        self.use_vector_kernel = use_vector_kernel

    def run(
        self,
        schedule: Schedule,
        machine: QCCDMachine,
        initial_chains: dict[int, list[int]],
    ) -> OptimizationResult:
        """Optimize ``schedule``; never returns an unverified stream.

        When observability is enabled the run records an ``optimize``
        span with one child span per pass (splice verifications nest
        under the pass that triggered them), per-pass delta counters,
        and — with tracing on — one ``pass_candidate`` event per pass
        that produced rewrites.
        """
        obs = _obs_active()
        if obs is None:
            return self._run(schedule, machine, initial_chains, None)
        with obs.spans.span("optimize"):
            with obs.metrics.timer("phase.optimize_seconds"):
                return self._run(schedule, machine, initial_chains, obs)

    def _run(
        self,
        schedule: Schedule,
        machine: QCCDMachine,
        initial_chains: dict[int, list[int]],
        obs,
    ) -> OptimizationResult:
        # One verification replay of the input builds the incremental
        # engine: legality, final chains and (when the guard is on) the
        # log-fidelity of the input, plus the checkpoints every later
        # candidate scan restarts from.
        heat: HeatingObserver | None = None
        observers: tuple = ()
        if self.fidelity_guard:
            heat = HeatingObserver(machine.num_traps, self.params)
            observers = (heat,)
        try:
            engine = CheckpointedReplay(
                machine,
                schedule,  # cache-bearing: shares one compiled stream
                initial_chains,
                observers,
                use_vector_kernel=self.use_vector_kernel,
            )
        except MachineModelError as exc:
            raise VerificationError(str(exc)) from None
        final_chains = engine.final_chains
        current_log_fidelity = (
            heat.log_fidelity if heat is not None else None
        )
        reference = EquivalenceReference(schedule)
        ctx = PassContext(machine=machine, initial_chains=initial_chains)

        current = schedule
        stats: list[PassStats] = []

        for schedule_pass in self.passes:
            pass_span = (
                obs.spans.span(schedule_pass.name)
                if obs is not None
                else nullcontext()
            )
            with pass_span:
                candidate, rewrites = schedule_pass.run(current, ctx)
                if rewrites == 0:
                    stats.append(PassStats(schedule_pass.name, 0))
                    continue

                try:
                    start, end, replacement = _diff_splice(
                        engine.ops, candidate.ops
                    )
                    if heat is not None:
                        verdict = engine.replay_splice(
                            start, end, replacement
                        )
                        candidate_log_fidelity = heat.log_fidelity
                    else:
                        verdict = engine.verify_splice(
                            start, end, replacement
                        )
                        candidate_log_fidelity = None
                    if not verdict.ok:
                        raise VerificationError(verdict.error)
                    candidate_chains = verdict.final_chains
                    reference.verify(candidate)
                except Exception as exc:
                    raise PassError(
                        f"pass {schedule_pass.name!r} produced an invalid "
                        f"schedule: {exc}"
                    ) from exc

                reverted = False
                reason = "applied"
                if candidate.num_shuttles > current.num_shuttles:
                    # Defense in depth; see module docstring.
                    reverted = True
                    reason = "shuttles-increased"
                elif self.fidelity_guard:
                    if (
                        candidate_log_fidelity
                        < current_log_fidelity - _LOG_FIDELITY_TOLERANCE
                    ):
                        reverted = True
                        reason = "fidelity-regressed"
                    else:
                        current_log_fidelity = candidate_log_fidelity

                shuttles_removed = (
                    current.num_shuttles - candidate.num_shuttles
                )
                stats.append(
                    PassStats(
                        name=schedule_pass.name,
                        rewrites=rewrites,
                        shuttles_removed=shuttles_removed,
                        splits_removed=(
                            current.num_splits - candidate.num_splits
                        ),
                        merges_removed=(
                            current.num_merges - candidate.num_merges
                        ),
                        swaps_removed=(
                            current.num_swaps - candidate.num_swaps
                        ),
                        ops_removed=len(current) - len(candidate),
                        reverted=reverted,
                    )
                )
                if obs is not None:
                    name = schedule_pass.name
                    obs.metrics.inc(f"passes.{name}.rewrites", rewrites)
                    if reverted:
                        obs.metrics.inc(f"passes.{name}.reverted")
                    else:
                        obs.metrics.inc(
                            f"passes.{name}.shuttles_removed",
                            shuttles_removed,
                        )
                        obs.metrics.inc(
                            f"passes.{name}.ops_removed",
                            len(current) - len(candidate),
                        )
                    if obs.trace is not None:
                        obs.trace.emit(
                            "pass_candidate",
                            **{"pass": name},
                            rewrites=rewrites,
                            accepted=not reverted,
                            reason=reason,
                            shuttles_removed=shuttles_removed,
                        )
                if not reverted:
                    engine.commit(verdict)
                    current = candidate
                    final_chains = candidate_chains

        return OptimizationResult(
            schedule=current,
            raw_schedule=schedule,
            passes=tuple(stats),
            final_chains=final_chains,
        )


def optimize_schedule(
    schedule: Schedule,
    machine: QCCDMachine,
    initial_chains: dict[int, list[int]],
    passes: object = None,
    fidelity_guard: bool = True,
    params: MachineParams = DEFAULT_PARAMS,
    use_vector_kernel: bool | None = None,
) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`PassManager`."""
    return PassManager(
        passes, fidelity_guard, params, use_vector_kernel
    ).run(schedule, machine, initial_chains)
