"""Shared infrastructure for schedule-optimization passes.

A pass is a pure rewrite: it receives a compiled
:class:`~repro.sim.schedule.Schedule` plus the compilation context
(machine model, initial chains) and returns a rewritten schedule with a
count of the rewrites it performed.  Passes never mutate their input —
the :class:`~repro.passes.manager.PassManager` decides whether the
output is kept (after verification) or discarded.

This module also provides the stream analyses every shuttle-rewriting
pass needs:

* :func:`extract_excursions` — group each ion's SPLIT/MOVE.../MERGE
  chains into :class:`Excursion` records (one per trip between traps),
* :func:`gate_indices_by_ion` / :func:`has_gate_on_ion_between` — fast
  "did a gate touch this ion inside this window?" queries,
* :func:`occupancy_timeline` / :func:`occupancy_at` — trap-occupancy
  queries over the stream, delegating to the kernel's
  :class:`~repro.core.observers.OccupancyTraceObserver`,
* :func:`estimate_makespan` — the kernel's timing-only clock replay
  (gates serial per trap, moves synchronize endpoints) used by passes
  that optimize duration rather than op counts,
* :class:`SpliceEditor` — the bridge between a pass's speculative
  edits (delete these indices, insert these ops) and the kernel's
  incremental verification engine
  (:class:`~repro.core.replay.CheckpointedReplay`): each candidate is
  folded into one ``(start, end, replacement)`` splice and verified in
  O(window) instead of a full O(schedule) replay per trial.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..arch.machine import QCCDMachine
from ..core.observers import OccupancyTraceObserver
from ..core.observers import estimate_makespan as _kernel_makespan
from ..core.observers import occupancy_at as _kernel_occupancy_at
from ..core.replay import CheckpointedReplay
from ..sim.ops import GateOp, MachineOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.params import TimingParams
from ..sim.schedule import Schedule


@dataclass(frozen=True)
class PassContext:
    """Everything a pass may consult besides the op stream itself."""

    machine: QCCDMachine
    initial_chains: dict[int, list[int]]


class SchedulePass(ABC):
    """One composable schedule rewrite.

    Subclasses define ``name`` (the registry/CLI identifier) and
    ``description`` (one line, shown by ``repro info``), and implement
    :meth:`run`.
    """

    name: str = "pass"
    description: str = ""

    @abstractmethod
    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        """Rewrite ``schedule``; return (new schedule, rewrite count).

        A rewrite count of 0 means the pass found nothing to do and the
        returned schedule is (semantically) the input.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class Excursion:
    """One ion trip: SPLIT, one MOVE per hop, MERGE.

    ``prep_swap_indices`` are the in-chain SWAP ops emitted immediately
    before the split to walk the ion to its exit end of the chain
    (``track_chain_order`` compilations only) — they belong to the trip
    and die with it.
    """

    ion: int
    split_index: int
    move_indices: list[int] = field(default_factory=list)
    merge_index: int = -1
    prep_swap_indices: list[int] = field(default_factory=list)
    start_trap: int = -1
    end_trap: int = -1

    def op_indices(self, include_prep_swaps: bool = True) -> list[int]:
        """Every stream index belonging to this trip, ascending."""
        indices = (
            list(self.prep_swap_indices) if include_prep_swaps else []
        )
        indices.append(self.split_index)
        indices.extend(self.move_indices)
        indices.append(self.merge_index)
        return sorted(indices)

    @property
    def num_moves(self) -> int:
        return len(self.move_indices)


def extract_excursions(ops: Sequence[MachineOp]) -> list[Excursion]:
    """All complete excursions of the op stream, in merge order.

    Incomplete trips (split without merge — illegal anyway) are dropped.
    """
    open_trips: dict[int, Excursion] = {}
    # SWAPs directly preceding a split and involving the split ion are
    # that trip's chain-end repositioning; remember the trailing run.
    trailing_swaps: list[tuple[int, SwapOp]] = []
    excursions: list[Excursion] = []

    for index, op in enumerate(ops):
        if isinstance(op, SwapOp):
            trailing_swaps.append((index, op))
            continue
        if isinstance(op, SplitOp):
            trip = Excursion(
                ion=op.ion, split_index=index, start_trap=op.trap
            )
            for swap_index, swap in reversed(trailing_swaps):
                if op.ion in (swap.ion_a, swap.ion_b):
                    trip.prep_swap_indices.insert(0, swap_index)
                else:
                    break
            open_trips[op.ion] = trip
        elif isinstance(op, MoveOp):
            trip = open_trips.get(op.ion)
            if trip is not None:
                trip.move_indices.append(index)
        elif isinstance(op, MergeOp):
            trip = open_trips.pop(op.ion, None)
            if trip is not None:
                trip.merge_index = index
                trip.end_trap = op.trap
                excursions.append(trip)
        trailing_swaps.clear()
    return excursions


def gate_indices_by_ion(
    ops: Sequence[MachineOp],
) -> dict[int, list[int]]:
    """For each qubit, the ascending stream indices of gates touching it."""
    indices: dict[int, list[int]] = {}
    for index, op in enumerate(ops):
        if isinstance(op, GateOp):
            for qubit in op.gate.qubits:
                indices.setdefault(qubit, []).append(index)
    return indices


def has_gate_on_ion_between(
    gate_indices: dict[int, list[int]], ion: int, lo: int, hi: int
) -> bool:
    """True when a gate touches ``ion`` at a stream index in (lo, hi)."""
    positions = gate_indices.get(ion)
    if not positions:
        return False
    return bisect_left(positions, hi) > bisect_right(positions, lo)


def occupancy_timeline(
    ops: Sequence[MachineOp],
) -> list[tuple[int, int, int]]:
    """Occupancy deltas as (stream index, trap, delta) events.

    Transit ions occupy no trap (matching the kernel); only splits and
    merges change occupancy.  Delegates to the kernel's
    :class:`~repro.core.observers.OccupancyTraceObserver`.
    """
    return OccupancyTraceObserver.events_of(ops)


def occupancy_at(
    events: Sequence[tuple[int, int, int]],
    machine: QCCDMachine,
    initial_chains: dict[int, list[int]],
    position: int,
) -> list[int]:
    """Per-trap ion counts just before stream index ``position``."""
    return _kernel_occupancy_at(
        events,
        (len(initial_chains.get(t, [])) for t in range(machine.num_traps)),
        position,
    )


def estimate_makespan(
    machine: QCCDMachine,
    schedule: Schedule,
    timing: TimingParams | None = None,
) -> float:
    """Makespan of a (legal) schedule under the kernel's clock model.

    Gates and split/merge/swap ops advance their trap's clock; a move
    synchronizes both endpoint clocks then advances them together.
    Noise is irrelevant to timing, so this is a cheap scalar objective
    for duration-oriented passes.  Delegates to the kernel's
    :class:`~repro.core.observers.ClockObserver` fast scan.
    """
    return _kernel_makespan(machine.num_traps, schedule, timing)


class SpliceEditor:
    """Verify-and-commit speculative edits through the splice engine.

    Shuttle-rewriting passes enumerate candidates in *sweep-start*
    coordinates — stream indices of the op list they analysed at the
    top of a sweep — while accepted rewrites accumulate in the
    engine's current stream.  The editor maps between the two index
    spaces, folds each trial (a set of deleted indices plus optional
    insertions) into a single contiguous ``(start, end, replacement)``
    splice, asks the :class:`~repro.core.replay.CheckpointedReplay`
    engine for the verdict a full legality replay would reach — in
    O(window + √N) instead of O(schedule) — and commits accepted
    edits so later trials verify against the up-to-date stream.

    The candidate streams submitted to the engine are, by
    construction, exactly the ones :func:`rebuild` + full replay used
    to produce, so accept/revert decisions are unchanged.

    ``schedule`` tracks the engine's current stream as a
    :class:`~repro.sim.schedule.Schedule`, advanced through
    :meth:`Schedule.spliced` on every committed edit — op-kind tallies
    are derived per splice in O(window), so the pass's result carries
    its statistics without a from-scratch recount.
    """

    def __init__(
        self, engine: CheckpointedReplay, schedule: Schedule
    ) -> None:
        self.engine = engine
        self.schedule = schedule
        self._deleted: list[int] = []
        self._ins_pos: list[int] = []
        self._ins_counts: list[int] = []
        self._ins_prefix: list[int] = []

    def begin_sweep(self) -> None:
        """Reset the coordinate map: the engine's *current* stream
        becomes the new sweep-start index space."""
        self._deleted.clear()
        self._ins_pos.clear()
        self._ins_counts.clear()
        self._ins_prefix.clear()

    def current_index(self, index: int) -> int:
        """Current-stream position of the surviving sweep-start op
        ``index`` (earlier accepted deletions shift it left, earlier
        accepted insertions shift it right)."""
        position = index - bisect_left(self._deleted, index)
        k = bisect_right(self._ins_pos, index)
        if k:
            position += self._ins_prefix[k - 1]
        return position

    def try_edit(
        self,
        deletions,
        insertions: dict[int, list[MachineOp]] | None = None,
    ) -> bool:
        """Verify one speculative edit; commit and return True when the
        rewritten stream is legal.

        ``deletions`` are sweep-start indices of surviving ops to drop;
        ``insertions`` maps a sweep-start anchor (which must itself be
        deleted by this edit) to ops emitted in its place.  On False the
        engine and the coordinate map are untouched.
        """
        dels = sorted(deletions)
        current = [self.current_index(i) for i in dels]
        delete_set = set(current)
        insert_at: dict[int, list[MachineOp]] = {}
        if insertions:
            for anchor, new_ops in insertions.items():
                insert_at[self.current_index(anchor)] = list(new_ops)
        start, end = current[0], current[-1] + 1
        ops = self.engine.ops
        replacement: list[MachineOp] = []
        for position in range(start, end):
            added = insert_at.get(position)
            if added is not None:
                replacement.extend(added)
            if position not in delete_set:
                replacement.append(ops[position])
        verdict = self.engine.verify_splice(start, end, replacement)
        if not verdict.ok:
            return False
        self.engine.commit(verdict)
        self.schedule = self.schedule.spliced(start, end, replacement)
        for index in dels:
            insort(self._deleted, index)
        if insertions:
            for anchor, new_ops in insertions.items():
                position = bisect_left(self._ins_pos, anchor)
                self._ins_pos.insert(position, anchor)
                self._ins_counts.insert(position, len(new_ops))
            total = 0
            self._ins_prefix.clear()
            for count in self._ins_counts:
                total += count
                self._ins_prefix.append(total)
        return True


def rebuild(
    ops: Sequence[MachineOp],
    deleted: set[int],
    insertions: dict[int, list[MachineOp]] | None = None,
) -> Schedule:
    """Materialize an edited op stream.

    ``deleted`` indices are dropped; ``insertions[i]`` ops are emitted
    at position ``i`` (before the original op there, which is normally
    itself deleted).

    This is the *reference implementation* of the edit semantics the
    passes used to verify with a full replay per candidate.
    :class:`SpliceEditor` reproduces exactly these streams through the
    incremental engine — the property suite
    (``tests/test_incremental_replay.py``) uses ``rebuild`` as the
    ground truth when constructing candidates to compare against.
    """
    out: list[MachineOp] = []
    for index, op in enumerate(ops):
        if insertions and index in insertions:
            out.extend(insertions[index])
        if index not in deleted:
            out.append(op)
    if insertions:
        tail = insertions.get(len(ops))
        if tail:
            out.extend(tail)
    return Schedule(out)
