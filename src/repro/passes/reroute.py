"""Route re-selection through less-congested equal-length paths.

The router commits to one BFS shortest path per journey; on topologies
with path diversity (rings, grids) several routes of the same hop count
exist, and the deterministic tie-break can drag traffic through crowded
traps — every hop into a full trap forces a re-balancing eviction.
This pass replays per-trap occupancy from the op stream and, for each
multi-hop journey, re-scores every equal-length shortest path by the
occupancy of its intermediate traps at the moment the journey departs;
when a strictly less-congested route exists the MoveOps are rewritten
in place (same hop count — shuttle totals never change, but the
traffic avoids the hot spots).

On linear machines (the paper's L6) shortest paths are unique and the
pass is a provable no-op.  Rewrites are verified through the
checkpointed splice engine — each alternative route is one
``(start, end, replacement)`` splice replayed from the nearest state
checkpoint, the full-replay verdict at O(window) cost — and reverted
when the alternative route is blocked at the stream position the
journey actually crosses it.
"""

from __future__ import annotations

from .base import (
    PassContext,
    SchedulePass,
    SpliceEditor,
    extract_excursions,
    occupancy_at,
    occupancy_timeline,
)
from ..core.replay import CheckpointedReplay
from ..sim.ops import MoveOp
from ..sim.schedule import Schedule

#: Cap on enumerated equal-length paths per journey (grids explode
#: combinatorially; 32 lexicographically-first paths is plenty).
_MAX_PATHS = 32


def equal_shortest_paths(
    topology, src: int, dst: int, cap: int = _MAX_PATHS
) -> list[list[int]]:
    """All shortest ``src -> dst`` trap sequences, lexicographic order,
    capped at ``cap``."""
    paths: list[list[int]] = []

    def expand(node: int, prefix: list[int]) -> None:
        if len(paths) >= cap:
            return
        if node == dst:
            paths.append(prefix)
            return
        remaining = topology.distance(node, dst)
        for neighbor in topology.neighbors(node):
            if topology.distance(neighbor, dst) == remaining - 1:
                expand(neighbor, prefix + [neighbor])

    expand(src, [src])
    return paths


class RouteReselection(SchedulePass):
    """Re-route multi-hop journeys around congested intermediate traps."""

    name = "reroute"
    description = (
        "re-route multi-hop moves through less-congested equal-length "
        "paths (occupancy replay; no-op on linear machines)"
    )

    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        ops = list(schedule.ops)
        events = occupancy_timeline(ops)
        machine = ctx.machine
        topology = machine.topology

        editor = SpliceEditor(
            CheckpointedReplay(machine, schedule.ops, ctx.initial_chains),
            schedule,
        )
        rewrites = 0

        for trip in extract_excursions(ops):
            if trip.num_moves < 2:
                continue  # single hops have no alternative
            merge = ops[trip.merge_index]
            if merge.position is not None or trip.prep_swap_indices:
                continue  # chain-order entry semantics tied to the route
            current = [trip.start_trap] + [
                ops[i].dst for i in trip.move_indices
            ]
            if len(current) - 1 != topology.distance(
                trip.start_trap, trip.end_trap
            ):
                continue  # not a shortest route (shouldn't happen)
            alternatives = equal_shortest_paths(
                topology, trip.start_trap, trip.end_trap
            )
            if len(alternatives) < 2:
                continue
            occupancy = occupancy_at(
                events, machine, ctx.initial_chains, trip.split_index
            )

            def congestion(path: list[int]) -> int:
                return sum(occupancy[t] for t in path[1:-1])

            best = min(alternatives, key=lambda p: (congestion(p), p))
            if best == current or congestion(best) >= congestion(current):
                continue
            reason = ops[trip.move_indices[0]].reason
            replacement = [
                MoveOp(ion=trip.ion, src=a, dst=b, reason=reason)
                for a, b in zip(best, best[1:])
            ]
            if editor.try_edit(
                set(trip.move_indices),
                {trip.move_indices[0]: replacement},
            ):
                rewrites += 1

        if not rewrites:
            return Schedule(ops), 0
        return editor.schedule, rewrites
