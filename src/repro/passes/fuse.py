"""Merge/split fusion (with opportunistic route shortening).

A parked ion is one the compiler merged into a trap and split right
back out before any gate touched it there — the classic shape of a
re-balancing eviction that immediately resumed its journey.  The merge
and split were pure overhead: fusing the two excursions lets the ion
pass *through* the trap in transit, saving a split and a merge (time
and heating; transit ions do not even occupy a chain slot).

Fusion also exposes a stronger rewrite: once the two legs are one
journey from the first leg's origin ``S`` to the second leg's
destination ``D``, the concatenated hop sequence may be longer than the
machine's shortest ``S -> D`` route (an ion evicted two traps right and
then needed one trap left walks 3 hops where 1 suffices).  When it is,
the whole journey is re-emitted along a shortest path — strictly fewer
MoveOps, i.e. fewer shuttles in the paper's Table II accounting.

Every rewrite is speculative and individually verified through the
checkpointed splice engine (each candidate is one
``(start, end, replacement)`` splice replayed from the nearest state
checkpoint — the full-replay verdict at O(window) cost): the shortened
route occupies different traps at different stream positions, so a
candidate is kept only when the machine model accepts it.  The late
anchor (emitting the journey where the original second leg ended) is
tried before the early anchor (where the first leg began), because
keeping the ion home longest is the least disruptive to capacity.
Chain-order schedules with explicit merge positions are fused but never
re-routed (entry-edge semantics would change).
"""

from __future__ import annotations

from .base import (
    Excursion,
    PassContext,
    SchedulePass,
    SpliceEditor,
    extract_excursions,
    gate_indices_by_ion,
    has_gate_on_ion_between,
)
from ..core.replay import CheckpointedReplay
from ..sim.ops import MachineOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.schedule import Schedule

#: Safety cap on fusion sweeps (each sweep must accept at least one
#: rewrite to continue; real schedules converge in a handful).
_MAX_SWEEPS = 64


class MergeSplitFusion(SchedulePass):
    """Fuse merge/split pairs; shorten the fused route when possible."""

    name = "fuse-merge-split"
    description = (
        "an ion merged and re-split with no gate in between keeps "
        "moving instead, re-routed via a shortest path when shorter"
    )

    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        engine = CheckpointedReplay(
            ctx.machine, schedule.ops, ctx.initial_chains
        )
        editor = SpliceEditor(engine, schedule)
        ops = list(schedule.ops)
        rewrites = 0
        for _ in range(_MAX_SWEEPS):
            editor.begin_sweep()
            accepted = self._sweep(ops, editor, ctx)
            if not accepted:
                break
            rewrites += accepted
            ops[:] = engine.ops
        return editor.schedule, rewrites

    def _sweep(
        self, ops: list, editor: SpliceEditor, ctx: PassContext
    ) -> int:
        gate_index = gate_indices_by_ion(ops)
        by_ion: dict[int, list[Excursion]] = {}
        for trip in extract_excursions(ops):
            by_ion.setdefault(trip.ion, []).append(trip)

        touched: set[int] = set()  # split indices of consumed trips
        accepted = 0

        for ion, trips in sorted(by_ion.items()):
            for first, second in zip(trips, trips[1:]):
                if (
                    first.split_index in touched
                    or second.split_index in touched
                ):
                    continue
                if has_gate_on_ion_between(
                    gate_index, ion, first.merge_index, second.split_index
                ):
                    continue
                if self._blocked_by_swaps(
                    ops, ion, first.merge_index, second.split_index, second
                ):
                    continue
                if self._fuse(ops, editor, ctx, first, second):
                    touched.add(first.split_index)
                    touched.add(second.split_index)
                    accepted += 1
        return accepted

    @staticmethod
    def _blocked_by_swaps(
        ops: list,
        ion: int,
        merge_index: int,
        split_index: int,
        second: Excursion,
    ) -> bool:
        """True when the parked ion took part in an in-chain swap that
        is *not* the second leg's own exit repositioning — deleting the
        park would strand that swap."""
        prep = set(second.prep_swap_indices)
        for index in range(merge_index + 1, split_index):
            op = ops[index]
            if (
                isinstance(op, SwapOp)
                and ion in (op.ion_a, op.ion_b)
                and index not in prep
            ):
                return True
        return False

    def _fuse(
        self,
        ops: list,
        editor: SpliceEditor,
        ctx: PassContext,
        first: Excursion,
        second: Excursion,
    ) -> bool:
        """Try shortened-route fusion, then plain fusion; first legal
        candidate wins (committed into the splice engine)."""
        machine = ctx.machine
        origin, destination = first.start_trap, second.end_trap
        total_moves = first.num_moves + second.num_moves
        chain_order_free = (
            ops[first.merge_index].position is None
            and ops[second.merge_index].position is None
            and not first.prep_swap_indices
            and not second.prep_swap_indices
        )

        if (
            chain_order_free
            and machine.topology.distance(origin, destination) < total_moves
        ):
            replacement = self._route_ops(
                machine, first.ion, origin, destination,
                ops[second.split_index].reason,
                ops[second.merge_index].reason,
            )
            span = set(first.op_indices()) | set(second.op_indices())
            for anchor in (second.merge_index, first.split_index):
                if editor.try_edit(span, {anchor: replacement}):
                    return True

        # Plain fusion: drop the merge, the re-split and the re-split's
        # exit repositioning; the ion passes through in transit.
        span = {first.merge_index, second.split_index}
        span.update(second.prep_swap_indices)
        return editor.try_edit(span)

    @staticmethod
    def _route_ops(
        machine,
        ion: int,
        origin: int,
        destination: int,
        split_reason,
        merge_reason,
    ) -> list[MachineOp]:
        """A fresh shortest-path journey ``origin -> destination``.

        Empty when they coincide (the fused trip degenerates to a full
        round trip — pure deletion, same as elision would do).
        """
        if origin == destination:
            return []
        path = machine.topology.shortest_path(origin, destination)
        journey: list[MachineOp] = [
            SplitOp(ion=ion, trap=origin, reason=split_reason)
        ]
        journey.extend(
            MoveOp(ion=ion, src=a, dst=b, reason=merge_reason)
            for a, b in zip(path, path[1:])
        )
        journey.append(
            MergeOp(ion=ion, trap=destination, reason=merge_reason)
        )
        return journey
