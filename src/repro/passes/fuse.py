"""Merge/split fusion (with opportunistic route shortening).

A parked ion is one the compiler merged into a trap and split right
back out before any gate touched it there — the classic shape of a
re-balancing eviction that immediately resumed its journey.  The merge
and split were pure overhead: fusing the two excursions lets the ion
pass *through* the trap in transit, saving a split and a merge (time
and heating; transit ions do not even occupy a chain slot).

Fusion also exposes a stronger rewrite: once the two legs are one
journey from the first leg's origin ``S`` to the second leg's
destination ``D``, the concatenated hop sequence may be longer than the
machine's shortest ``S -> D`` route (an ion evicted two traps right and
then needed one trap left walks 3 hops where 1 suffices).  When it is,
the whole journey is re-emitted along a shortest path — strictly fewer
MoveOps, i.e. fewer shuttles in the paper's Table II accounting.

Every rewrite is speculative and individually verified: the shortened
route occupies different traps at different stream positions, so a
candidate is kept only when the full legality replay accepts it.  The
late anchor (emitting the journey where the original second leg ended)
is tried before the early anchor (where the first leg began), because
keeping the ion home longest is the least disruptive to capacity.
Chain-order schedules with explicit merge positions are fused but never
re-routed (entry-edge semantics would change).
"""

from __future__ import annotations

from .base import (
    Excursion,
    PassContext,
    SchedulePass,
    extract_excursions,
    gate_indices_by_ion,
    has_gate_on_ion_between,
    rebuild,
)
from .verify import is_legal
from ..sim.ops import MachineOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.schedule import Schedule

#: Safety cap on fusion sweeps (each sweep must accept at least one
#: rewrite to continue; real schedules converge in a handful).
_MAX_SWEEPS = 64


class MergeSplitFusion(SchedulePass):
    """Fuse merge/re-split pairs; shorten the fused route when possible."""

    name = "fuse-merge-split"
    description = (
        "an ion merged and re-split with no gate in between keeps "
        "moving instead, re-routed via a shortest path when shorter"
    )

    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        ops = list(schedule.ops)
        rewrites = 0
        for _ in range(_MAX_SWEEPS):
            accepted = self._sweep(ops, ctx)
            if not accepted:
                break
            rewrites += accepted
        return Schedule(ops), rewrites

    def _sweep(self, ops: list, ctx: PassContext) -> int:
        gate_index = gate_indices_by_ion(ops)
        by_ion: dict[int, list[Excursion]] = {}
        for trip in extract_excursions(ops):
            by_ion.setdefault(trip.ion, []).append(trip)

        deleted: set[int] = set()
        insertions: dict[int, list[MachineOp]] = {}
        touched: set[int] = set()  # split indices of consumed trips
        accepted = 0

        for ion, trips in sorted(by_ion.items()):
            for first, second in zip(trips, trips[1:]):
                if (
                    first.split_index in touched
                    or second.split_index in touched
                ):
                    continue
                if has_gate_on_ion_between(
                    gate_index, ion, first.merge_index, second.split_index
                ):
                    continue
                if self._blocked_by_swaps(
                    ops, ion, first.merge_index, second.split_index, second
                ):
                    continue
                if self._fuse(
                    ops, ctx, deleted, insertions, first, second
                ):
                    touched.add(first.split_index)
                    touched.add(second.split_index)
                    accepted += 1

        if deleted or insertions:
            ops[:] = rebuild(ops, deleted, insertions).ops
        return accepted

    @staticmethod
    def _blocked_by_swaps(
        ops: list,
        ion: int,
        merge_index: int,
        split_index: int,
        second: Excursion,
    ) -> bool:
        """True when the parked ion took part in an in-chain swap that
        is *not* the second leg's own exit repositioning — deleting the
        park would strand that swap."""
        prep = set(second.prep_swap_indices)
        for index in range(merge_index + 1, split_index):
            op = ops[index]
            if (
                isinstance(op, SwapOp)
                and ion in (op.ion_a, op.ion_b)
                and index not in prep
            ):
                return True
        return False

    def _fuse(
        self,
        ops: list,
        ctx: PassContext,
        deleted: set[int],
        insertions: dict[int, list[MachineOp]],
        first: Excursion,
        second: Excursion,
    ) -> bool:
        """Try shortened-route fusion, then plain fusion; first legal
        candidate wins.  Mutates ``deleted``/``insertions`` on success."""
        machine = ctx.machine
        origin, destination = first.start_trap, second.end_trap
        total_moves = first.num_moves + second.num_moves
        chain_order_free = (
            ops[first.merge_index].position is None
            and ops[second.merge_index].position is None
            and not first.prep_swap_indices
            and not second.prep_swap_indices
        )

        if (
            chain_order_free
            and machine.topology.distance(origin, destination) < total_moves
        ):
            replacement = self._route_ops(
                machine, first.ion, origin, destination,
                ops[second.split_index].reason,
                ops[second.merge_index].reason,
            )
            span = set(first.op_indices()) | set(second.op_indices())
            for anchor in (second.merge_index, first.split_index):
                trial_deleted = deleted | span
                trial_insertions = dict(insertions)
                trial_insertions[anchor] = replacement
                if is_legal(
                    machine,
                    rebuild(ops, trial_deleted, trial_insertions),
                    ctx.initial_chains,
                ):
                    deleted |= span
                    insertions[anchor] = replacement
                    return True

        # Plain fusion: drop the merge, the re-split and the re-split's
        # exit repositioning; the ion passes through in transit.
        span = {first.merge_index, second.split_index}
        span.update(second.prep_swap_indices)
        trial_deleted = deleted | span
        if is_legal(
            machine,
            rebuild(ops, trial_deleted, insertions),
            ctx.initial_chains,
        ):
            deleted |= span
            return True
        return False

    @staticmethod
    def _route_ops(
        machine,
        ion: int,
        origin: int,
        destination: int,
        split_reason,
        merge_reason,
    ) -> list[MachineOp]:
        """A fresh shortest-path journey ``origin -> destination``.

        Empty when they coincide (the fused trip degenerates to a full
        round trip — pure deletion, same as elision would do).
        """
        if origin == destination:
            return []
        path = machine.topology.shortest_path(origin, destination)
        journey: list[MachineOp] = [
            SplitOp(ion=ion, trap=origin, reason=split_reason)
        ]
        journey.extend(
            MoveOp(ion=ion, src=a, dst=b, reason=merge_reason)
            for a, b in zip(path, path[1:])
        )
        journey.append(
            MergeOp(ion=ion, trap=destination, reason=merge_reason)
        )
        return journey
