"""Pass registry: names, docs, default pipeline.

The registry is the single source of truth for which passes exist —
``CompilerConfig.post_passes`` validation, the CLI's ``--passes``
flags, ``repro info`` listings and the :class:`PassManager` default
pipeline all resolve through it.
"""

from __future__ import annotations

from collections.abc import Iterable

from .base import SchedulePass
from .elide import RoundTripElision
from .fuse import MergeSplitFusion
from .reroute import RouteReselection
from .tighten import GateHoisting

#: name -> pass class, in default pipeline order: shuttle deletion
#: first (elide), then journey fusion/shortening, then congestion
#: re-routing, then clock tightening on the final op stream.
PASS_REGISTRY: dict[str, type[SchedulePass]] = {
    RoundTripElision.name: RoundTripElision,
    MergeSplitFusion.name: MergeSplitFusion,
    RouteReselection.name: RouteReselection,
    GateHoisting.name: GateHoisting,
}

#: The pipeline run by ``post_passes=("default",)`` shortcuts and the
#: PassManager when no passes are named.
DEFAULT_PIPELINE: tuple[str, ...] = tuple(PASS_REGISTRY)


def available_passes() -> list[tuple[str, str]]:
    """(name, one-line description) for every registered pass."""
    return [
        (name, cls.description) for name, cls in PASS_REGISTRY.items()
    ]


def resolve_pass_names(names: Iterable[str] | None) -> tuple[str, ...]:
    """Normalize a pass-name list: ``None``/``"default"``/``"all"``
    expand to the default pipeline; unknown names raise ``ValueError``."""
    if names is None:
        return DEFAULT_PIPELINE
    if isinstance(names, str):
        names = (names,)
    resolved: list[str] = []
    for name in names:
        if name in ("default", "all"):
            resolved.extend(DEFAULT_PIPELINE)
        elif name in PASS_REGISTRY:
            resolved.append(name)
        else:
            raise ValueError(
                f"unknown pass {name!r}; choose from "
                f"{sorted(PASS_REGISTRY)} (or 'default'/'all')"
            )
    # Deduplicate while preserving first occurrence.
    seen: set[str] = set()
    return tuple(
        n for n in resolved if not (n in seen or seen.add(n))
    )


def make_passes(passes: object = None) -> list[SchedulePass]:
    """Instantiate a pipeline from names, classes, instances or None."""
    if passes is None:
        return [PASS_REGISTRY[name]() for name in DEFAULT_PIPELINE]
    if isinstance(passes, (str, SchedulePass)) or (
        isinstance(passes, type) and issubclass(passes, SchedulePass)
    ):
        passes = (passes,)
    pipeline: list[SchedulePass] = []
    for item in passes:  # type: ignore[union-attr]
        if isinstance(item, SchedulePass):
            pipeline.append(item)
        elif isinstance(item, type) and issubclass(item, SchedulePass):
            pipeline.append(item())
        elif isinstance(item, str):
            for name in resolve_pass_names((item,)):
                pipeline.append(PASS_REGISTRY[name]())
        else:
            raise TypeError(
                f"expected pass name, class or instance, got "
                f"{type(item).__name__}"
            )
    return pipeline
