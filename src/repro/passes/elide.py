"""Round-trip shuttle elision.

The greedy compiler evicts ions out of congested traps (Section III-C)
and later routes them back when a gate finally needs them — or another
eviction pushes them home.  When an ion leaves a trap and returns to it
*without serving a single gate while away*, the whole journey was dead
weight: deleting its SPLIT/MOVE.../MERGE ops (possibly spanning several
consecutive excursions) executes the same circuit with strictly fewer
shuttles, less heating and less time.

Deletion is speculative: while the ion was away its home trap had one
more free slot, which other traffic may have relied on, so every
candidate round trip is verified against the machine model and
reverted when removing it would overfill a trap (or break in-chain
swap adjacency under ``track_chain_order``).  Verification runs
through the kernel's checkpointed splice engine
(:class:`~repro.core.replay.CheckpointedReplay` via
:class:`~repro.passes.base.SpliceEditor`): each candidate deletion is
one splice replayed from the nearest state checkpoint instead of a
full O(schedule) replay — same verdicts, a fraction of the work.
"""

from __future__ import annotations

from .base import (
    PassContext,
    SchedulePass,
    SpliceEditor,
    extract_excursions,
    gate_indices_by_ion,
    has_gate_on_ion_between,
)
from ..core.replay import CheckpointedReplay
from ..sim.schedule import Schedule

#: How many round-trip endpoints to attempt per starting excursion
#: (longest first); bounds the number of verification splices.
_MAX_ATTEMPTS_PER_START = 4


class RoundTripElision(SchedulePass):
    """Delete shuttle round trips that return an ion home unused."""

    name = "elide-roundtrips"
    description = (
        "delete SPLIT/MOVE/MERGE chains that return an ion to its "
        "origin with no gate served in between"
    )

    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        engine = CheckpointedReplay(
            ctx.machine, schedule.ops, ctx.initial_chains
        )
        editor = SpliceEditor(engine, schedule)
        ops = list(schedule.ops)
        rewrites = 0
        # Re-sweep until a pass over the stream elides nothing: removing
        # one trip can join its neighbours into a new round trip.
        while True:
            editor.begin_sweep()
            accepted = self._sweep(ops, editor)
            if not accepted:
                break
            rewrites += accepted
            ops[:] = engine.ops
        return editor.schedule, rewrites

    def _sweep(self, ops: list, editor: SpliceEditor) -> int:
        """One pass over the sweep-start stream ``ops``; accepted
        deletions are committed into the editor's engine."""
        gate_index = gate_indices_by_ion(ops)
        by_ion: dict[int, list] = {}
        for trip in extract_excursions(ops):
            by_ion.setdefault(trip.ion, []).append(trip)

        accepted = 0
        for ion, trips in sorted(by_ion.items()):
            start = 0
            while start < len(trips):
                chosen = self._elide_from(
                    editor, gate_index, ion, trips, start
                )
                if chosen is None:
                    start += 1
                else:
                    accepted += 1
                    start = chosen + 1
        return accepted

    def _elide_from(
        self,
        editor: SpliceEditor,
        gate_index: dict[int, list[int]],
        ion: int,
        trips: list,
        start: int,
    ) -> int | None:
        """Try to elide trips ``start..k`` for the largest viable ``k``.

        Returns the accepted end index, or None.  An accepted deletion
        is committed into the splice engine before returning.
        """
        first = trips[start]
        # Collect candidate endpoints: consecutive trips with no gate on
        # the ion in between, ending back at the starting trap.
        candidates: list[int] = []
        for k in range(start, len(trips)):
            if k > start and has_gate_on_ion_between(
                gate_index,
                ion,
                trips[k - 1].merge_index,
                trips[k].split_index,
            ):
                break
            if trips[k].end_trap == first.start_trap:
                candidates.append(k)
        for k in reversed(candidates[-_MAX_ATTEMPTS_PER_START:]):
            span = set()
            for trip in trips[start : k + 1]:
                span.update(trip.op_indices(include_prep_swaps=True))
            if editor.try_edit(span):
                return k
            # Keeping the repositioning swaps sometimes preserves a
            # chain order that later swaps depend on; retry without
            # deleting them.
            span_no_swaps = set()
            for trip in trips[start : k + 1]:
                span_no_swaps.update(
                    trip.op_indices(include_prep_swaps=False)
                )
            if span_no_swaps != span and editor.try_edit(span_no_swaps):
                return k
        return None
