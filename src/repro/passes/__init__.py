"""Post-compilation schedule optimization (``repro.passes``).

The compiler commits every SPLIT/MOVE/MERGE greedily; this package
revisits the emitted :class:`~repro.sim.schedule.Schedule` with
composable, individually-toggleable rewrite passes — round-trip
elision, merge/split fusion, congestion re-routing, gate hoisting —
each verified for machine legality and circuit equivalence before its
output is accepted.  See :class:`PassManager` for the pipeline driver
and :mod:`repro.passes.registry` for the pass catalogue.
"""

from .base import Excursion, PassContext, SchedulePass, estimate_makespan
from .elide import RoundTripElision
from .fuse import MergeSplitFusion
from .manager import (
    OptimizationResult,
    PassError,
    PassManager,
    PassStats,
    optimize_schedule,
)
from .registry import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    available_passes,
    make_passes,
    resolve_pass_names,
)
from .reroute import RouteReselection
from .tighten import GateHoisting
from .verify import (
    VerificationError,
    gate_multiset,
    is_legal,
    verify_equivalent,
    verify_schedule,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "Excursion",
    "GateHoisting",
    "MergeSplitFusion",
    "OptimizationResult",
    "PASS_REGISTRY",
    "PassContext",
    "PassError",
    "PassManager",
    "PassStats",
    "RouteReselection",
    "RoundTripElision",
    "SchedulePass",
    "VerificationError",
    "available_passes",
    "estimate_makespan",
    "gate_multiset",
    "is_legal",
    "make_passes",
    "optimize_schedule",
    "resolve_pass_names",
    "verify_equivalent",
    "verify_schedule",
]
