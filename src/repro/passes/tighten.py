"""Intra-trap clock tightening by dependency-safe gate hoisting.

Gates run serially inside a trap but in parallel across traps; a MOVE
synchronizes its two endpoint clocks (Section II-B1).  The compiler
emits each gate the moment it becomes executable in *program* order,
which often places a trap-local gate after an unrelated shuttle that
stalls the trap on a busy neighbour — the gate then runs after the
synchronization barrier even though its ions were sitting idle before
it.  Hoisting the gate in front of the barrier fills the wait with
useful work and tightens the makespan.

A gate is hoisted only past ops it provably commutes with:

* gates in *other* traps acting on disjoint qubits (no shared clock, no
  shared dependency edge — DAG order is preserved),
* split/merge/swap ops of *other* traps with disjoint ions,
* MOVE ops of disjoint ions (any endpoints — this crossing is the one
  that buys time).

It never crosses ops touching its own qubits (placement and dependency
edges stay intact) nor non-move ops of its own trap (the trap's heat
event order is preserved, so every gate sees exactly the n̄ it saw
before — the rewrite is fidelity-neutral by construction and only the
clock interleaving changes).  The hoisted order is checked against the
circuit's :class:`~repro.circuits.dag.DependencyDAG` and the whole pass
reverts itself unless the timing replay confirms the makespan did not
regress.
"""

from __future__ import annotations

from .base import PassContext, SchedulePass, estimate_makespan
from .verify import VerificationError
from ..circuits.circuit import Circuit
from ..circuits.dag import DependencyDAG
from ..sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.schedule import Schedule


def _commutes(op, gate_op: GateOp) -> bool:
    """True when ``gate_op`` may hoist from after ``op`` to before it."""
    qubits = gate_op.gate.qubits
    if isinstance(op, GateOp):
        return op.trap != gate_op.trap and not (
            set(op.gate.qubits) & set(qubits)
        )
    if isinstance(op, MoveOp):
        return op.ion not in qubits
    if isinstance(op, (SplitOp, MergeOp)):
        return op.trap != gate_op.trap and op.ion not in qubits
    if isinstance(op, SwapOp):
        return op.trap != gate_op.trap and not (
            {op.ion_a, op.ion_b} & set(qubits)
        )
    return False  # pragma: no cover - exhaustive over MachineOp


class GateHoisting(SchedulePass):
    """Hoist gates ahead of unrelated shuttles to tighten trap clocks."""

    name = "tighten-gates"
    description = (
        "hoist trap-local gates ahead of unrelated shuttle barriers "
        "(dependency-safe, fidelity-neutral, makespan-guarded)"
    )

    #: Bound on timing-replay evaluations per run (each is one linear
    #: scan; a hoist that crosses a barrier but does not shorten the
    #: critical path is evaluated once and undone).
    max_evaluations = 512

    #: Bound on how far back one gate may bubble.  Keeps the commute
    #: scan O(n * window) on gate-dense schedules — without it a long
    #: run of mutually-independent gates costs a quadratic scan that
    #: never even reaches a move to justify it.
    max_hoist_distance = 256

    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        # Pair each op with its original position so the DAG check can
        # recover the gate permutation afterwards.
        indexed = list(enumerate(schedule.ops))
        rewrites = 0
        evaluations = 0
        makespan = estimate_makespan(ctx.machine, schedule)

        position = 1
        while position < len(indexed):
            _, op = indexed[position]
            if (
                not isinstance(op, GateOp)
                or evaluations >= self.max_evaluations
            ):
                position += 1
                continue
            target = position
            horizon = max(0, position - self.max_hoist_distance)
            while target > horizon and _commutes(
                indexed[target - 1][1], op
            ):
                target -= 1
            # A hoist only matters when it crosses an op that can stall
            # this trap's clock: a move touching it.  Each candidate is
            # applied, timed, and kept only on strict improvement — the
            # makespan is monotone over the sweep by construction.
            if target < position and any(
                isinstance(x, MoveOp) and op.trap in (x.src, x.dst)
                for _, x in indexed[target:position]
            ):
                indexed.insert(target, indexed.pop(position))
                evaluations += 1
                hoisted_makespan = estimate_makespan(
                    ctx.machine, Schedule(x for _, x in indexed)
                )
                if hoisted_makespan < makespan - 1e-15:
                    makespan = hoisted_makespan
                    rewrites += 1
                else:
                    indexed.insert(position, indexed.pop(target))
            position += 1

        if not rewrites:
            return schedule, 0
        hoisted = Schedule(op for _, op in indexed)
        self._check_dag_order(schedule, indexed)
        return hoisted, rewrites

    @staticmethod
    def _check_dag_order(original: Schedule, indexed: list) -> None:
        """Assert the hoisted gate order is a topological order of the
        original circuit's dependency DAG (belt and braces on top of
        the commutation rules)."""
        gate_ops = original.gate_ops()
        if not gate_ops:
            return
        num_qubits = (
            max(q for op in gate_ops for q in op.gate.qubits) + 1
        )
        circuit = Circuit(num_qubits, (op.gate for op in gate_ops))
        dag = DependencyDAG(circuit)
        # Original gate index per stream position, then the permutation
        # induced by the hoisted stream order.
        gate_number: dict[int, int] = {}
        counter = 0
        for stream_index, op in enumerate(original.ops):
            if isinstance(op, GateOp):
                gate_number[stream_index] = counter
                counter += 1
        order = [
            gate_number[original_index]
            for original_index, op in indexed
            if isinstance(op, GateOp)
        ]
        if not dag.is_valid_order(order):
            raise VerificationError(
                "gate hoisting produced an order violating the "
                "dependency DAG"
            )
