"""Intra-trap clock tightening by dependency-safe gate hoisting.

Gates run serially inside a trap but in parallel across traps; a MOVE
synchronizes its two endpoint clocks (Section II-B1).  The compiler
emits each gate the moment it becomes executable in *program* order,
which often places a trap-local gate after an unrelated shuttle that
stalls the trap on a busy neighbour — the gate then runs after the
synchronization barrier even though its ions were sitting idle before
it.  Hoisting the gate in front of the barrier fills the wait with
useful work and tightens the makespan.

A gate is hoisted only past ops it provably commutes with:

* gates in *other* traps acting on disjoint qubits (no shared clock, no
  shared dependency edge — DAG order is preserved),
* split/merge/swap ops of *other* traps with disjoint ions,
* MOVE ops of disjoint ions (any endpoints — this crossing is the one
  that buys time).

It never crosses ops touching its own qubits (placement and dependency
edges stay intact) nor non-move ops of its own trap (the trap's heat
event order is preserved, so every gate sees exactly the n̄ it saw
before — the rewrite is fidelity-neutral by construction and only the
clock interleaving changes).  The hoisted order is checked against the
circuit's :class:`~repro.circuits.dag.DependencyDAG` and each
candidate hoist is kept only when the timing replay confirms a strict
makespan improvement.

The makespan guard is incremental: the pass keeps
:class:`~repro.core.observers.ClockObserver` snapshots every K ops
(K = √N) over the current stream, scores a candidate by resuming the
snapshot nearest its hoist window and driving only the remainder, and
abandons the scan early the moment the candidate's clock vector
re-converges with a stored baseline snapshot — identical clocks from
identical remaining ops mean an identical makespan, i.e. a rejection,
without ever touching the tail.  Clock restoration is float-exact, so
every accept/reject decision (and the final stream) matches what a
from-scratch :func:`~repro.passes.base.estimate_makespan` per
candidate used to produce.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from math import isqrt

from .base import PassContext, SchedulePass
from .verify import VerificationError
from ..circuits.circuit import Circuit
from ..circuits.dag import DependencyDAG
from ..core.observers import ClockObserver
from ..sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from ..sim.schedule import Schedule


def _commutes(op, gate_op: GateOp) -> bool:
    """True when ``gate_op`` may hoist from after ``op`` to before it."""
    qubits = gate_op.gate.qubits
    if isinstance(op, GateOp):
        return op.trap != gate_op.trap and not (
            set(op.gate.qubits) & set(qubits)
        )
    if isinstance(op, MoveOp):
        return op.ion not in qubits
    if isinstance(op, (SplitOp, MergeOp)):
        return op.trap != gate_op.trap and op.ion not in qubits
    if isinstance(op, SwapOp):
        return op.trap != gate_op.trap and not (
            {op.ion_a, op.ion_b} & set(qubits)
        )
    return False  # pragma: no cover - exhaustive over MachineOp


class GateHoisting(SchedulePass):
    """Hoist gates ahead of unrelated shuttles to tighten trap clocks."""

    name = "tighten-gates"
    description = (
        "hoist trap-local gates ahead of unrelated shuttle barriers "
        "(dependency-safe, fidelity-neutral, makespan-guarded)"
    )

    #: Bound on timing-replay evaluations per run (each is now an
    #: incremental scan from the nearest clock checkpoint; a hoist that
    #: crosses a barrier but does not shorten the critical path is
    #: evaluated once and discarded).
    max_evaluations = 512

    #: Bound on how far back one gate may bubble.  Keeps the commute
    #: scan O(n * window) on gate-dense schedules — without it a long
    #: run of mutually-independent gates costs a quadratic scan that
    #: never even reaches a move to justify it.
    max_hoist_distance = 256

    def run(
        self, schedule: Schedule, ctx: PassContext
    ) -> tuple[Schedule, int]:
        # Pair each op with its original position so the DAG check can
        # recover the gate permutation afterwards; `plain` mirrors the
        # bare op sequence so the timing scans drive list slices
        # instead of per-op tuple unpacking.
        indexed = list(enumerate(schedule.ops))
        plain = list(schedule.ops)
        n = len(indexed)
        if not n:
            return schedule, 0
        rewrites = 0
        evaluations = 0

        clock = ClockObserver(ctx.machine.num_traps)
        interval = max(32, isqrt(n))
        # Baseline clock snapshots every `interval` ops over the
        # current stream (index -> clocks after ops[:index]), plus the
        # exact baseline makespan — identical floats to one
        # uninterrupted estimate_makespan scan.
        cp_indices: list[int] = [0]
        cp_clocks: list[tuple] = [clock.snapshot()]
        for i in range(0, n, interval):
            clock.drive(plain[i : i + interval])
            if i + interval < n:
                cp_indices.append(i + interval)
                cp_clocks.append(clock.snapshot())
        makespan = clock.makespan

        # Sorted stream positions of the moves touching each trap: the
        # "does the hoist cross a barrier of this trap?" probe is two
        # bisects instead of an O(window) scan per gate.
        moves_of_trap: dict[int, list[int]] = {}
        for j, op in enumerate(plain):
            if isinstance(op, MoveOp):
                moves_of_trap.setdefault(op.src, []).append(j)
                moves_of_trap.setdefault(op.dst, []).append(j)

        position = 1
        while position < n:
            op = plain[position]
            if (
                not isinstance(op, GateOp)
                or evaluations >= self.max_evaluations
            ):
                position += 1
                continue
            target = position
            horizon = max(0, position - self.max_hoist_distance)
            while target > horizon and _commutes(
                plain[target - 1], op
            ):
                target -= 1
            # A hoist only matters when it crosses an op that can stall
            # this trap's clock: a move touching it.  Each candidate is
            # timed incrementally and kept only on strict improvement —
            # the makespan is monotone over the sweep by construction.
            if target < position and self._crosses_move(
                moves_of_trap, op.trap, target, position
            ):
                evaluations += 1
                accepted, cand_makespan, cand_cps = self._evaluate(
                    clock, plain, target, position,
                    cp_indices, cp_clocks, makespan,
                )
                if accepted:
                    indexed.insert(target, indexed.pop(position))
                    plain.insert(target, plain.pop(position))
                    makespan = cand_makespan
                    rewrites += 1
                    self._apply_accept(
                        cp_indices, cp_clocks, cand_cps,
                        moves_of_trap, target, position,
                    )
            position += 1

        if not rewrites:
            return schedule, 0
        hoisted = Schedule(op for _, op in indexed)
        self._check_dag_order(schedule, indexed)
        return hoisted, rewrites

    @staticmethod
    def _crosses_move(
        moves_of_trap: dict[int, list[int]],
        trap: int,
        target: int,
        position: int,
    ) -> bool:
        """True when a move touching ``trap`` sits in [target, position)."""
        positions = moves_of_trap.get(trap)
        if not positions:
            return False
        k = bisect_left(positions, target)
        return k < len(positions) and positions[k] < position

    def _evaluate(
        self,
        clock: ClockObserver,
        plain: list,
        target: int,
        position: int,
        cp_indices: list[int],
        cp_clocks: list[tuple],
        makespan: float,
    ) -> tuple[bool, float, list[tuple[int, tuple]]]:
        """Score hoisting the gate at ``position`` to ``target``.

        Returns (accepted, candidate makespan, candidate snapshots) —
        the snapshots (taken at the baseline checkpoint indices beyond
        the window) replace the stale ones when the hoist is accepted.
        The scan resumes from the checkpoint nearest ``target`` and
        abandons rejected candidates early, on either of two sound
        exits checked at every checkpoint boundary:

        * *re-convergence* — the candidate's clock vector equals the
          baseline's, so identical remaining ops yield an identical
          (not strictly better) makespan;
        * *bound* — clocks are nondecreasing (every op adds a
          non-negative duration; a move syncs to the max), so once the
          running maximum reaches ``makespan - 1e-15`` the final
          makespan cannot dip back below the strict-improvement guard.

        Neither exit can fire for a candidate that would be accepted,
        so accept/reject decisions (and the accepted makespan floats)
        are identical to scoring every candidate from scratch.
        """
        # Clocks entering the hoist window (exact prefix floats).
        cp_pos = bisect_right(cp_indices, target) - 1
        clock.resume(cp_clocks[cp_pos])
        if cp_indices[cp_pos] < target:
            clock.drive(plain[cp_indices[cp_pos] : target])
        # The reordered window: the hoisted gate first, then the ops it
        # bubbled past.  The candidate's op sequence beyond `position`
        # is unchanged.
        clock.drive((plain[position],))
        clock.drive(plain[target:position])

        clocks = clock.clocks
        bound = makespan - 1e-15
        cand_cps: list[tuple[int, tuple]] = []
        scan = position + 1
        for k in range(bisect_right(cp_indices, position), len(cp_indices)):
            stop = cp_indices[k]
            clock.drive(plain[scan:stop])
            scan = stop
            snapshot = tuple(clocks)
            if snapshot == cp_clocks[k] or max(clocks) >= bound:
                return False, makespan, cand_cps
            cand_cps.append((stop, snapshot))
        clock.drive(plain[scan:])
        cand_makespan = clock.makespan
        return cand_makespan < bound, cand_makespan, cand_cps

    @staticmethod
    def _apply_accept(
        cp_indices: list[int],
        cp_clocks: list[tuple],
        cand_cps: list[tuple[int, tuple]],
        moves_of_trap: dict[int, list[int]],
        target: int,
        position: int,
    ) -> None:
        """Fold an accepted hoist into the incremental structures.

        Baseline snapshots inside (target, position] described the old
        op order and are replaced by the candidate's; move positions in
        [target, position) shift one slot right (the hoisted gate now
        precedes them).
        """
        keep = bisect_right(cp_indices, target)
        del cp_indices[keep:]
        del cp_clocks[keep:]
        for index, snapshot in cand_cps:
            cp_indices.append(index)
            cp_clocks.append(snapshot)
        for positions in moves_of_trap.values():
            lo = bisect_left(positions, target)
            hi = bisect_left(positions, position)
            for k in range(lo, hi):
                positions[k] += 1

    @staticmethod
    def _check_dag_order(original: Schedule, indexed: list) -> None:
        """Assert the hoisted gate order is a topological order of the
        original circuit's dependency DAG (belt and braces on top of
        the commutation rules)."""
        gate_ops = original.gate_ops()
        if not gate_ops:
            return
        num_qubits = (
            max(q for op in gate_ops for q in op.gate.qubits) + 1
        )
        circuit = Circuit(num_qubits, (op.gate for op in gate_ops))
        dag = DependencyDAG(circuit)
        # Original gate index per stream position, then the permutation
        # induced by the hoisted stream order.
        gate_number: dict[int, int] = {}
        counter = 0
        for stream_index, op in enumerate(original.ops):
            if isinstance(op, GateOp):
                gate_number[stream_index] = counter
                counter += 1
        order = [
            gate_number[original_index]
            for original_index, op in indexed
            if isinstance(op, GateOp)
        ]
        if not dag.is_valid_order(order):
            raise VerificationError(
                "gate hoisting produced an order violating the "
                "dependency DAG"
            )
