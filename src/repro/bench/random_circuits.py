"""Random-circuit workload (Table II row 6).

The paper tests 120 random circuits: 30 each at 60, 65, 70 and 75
qubits, averaging 1438 two-qubit gates with sigma ~ 413.  The exact
generator is not specified; two standard families are provided:

* ``"uniform"`` (default) — every gate couples a uniformly random qubit
  pair.  Maximally unstructured.
* ``"layered"`` — random-circuit-sampling style: layers of disjoint
  random pairings, so every qubit participates once per layer.

Gate counts per circuit are drawn from N(1438, 413), clamped, so the
ensemble matches the paper's reported statistics.  Everything is
deterministic given the seed.
"""

from __future__ import annotations

import random

from ..circuits.circuit import Circuit
from ..circuits.gate import Gate

#: Paper ensemble statistics (Section IV-A).
PAPER_SIZES = (60, 65, 70, 75)
PAPER_CIRCUITS_PER_SIZE = 30
PAPER_MEAN_GATES = 1438
PAPER_STD_GATES = 413

_MIN_GATES = 400
_MAX_GATES = 2600


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int,
    family: str = "uniform",
) -> Circuit:
    """One random circuit of exactly ``num_gates`` MS gates."""
    rng = random.Random(seed)
    name = f"Random-{family}-{num_qubits}q-s{seed}"
    circuit = Circuit(num_qubits, name=name)
    if family == "uniform":
        while circuit.num_two_qubit_gates < num_gates:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.append(Gate("ms", (a, b)))
    elif family == "layered":
        while circuit.num_two_qubit_gates < num_gates:
            order = list(range(num_qubits))
            rng.shuffle(order)
            for k in range(0, num_qubits - 1, 2):
                if circuit.num_two_qubit_gates >= num_gates:
                    break
                circuit.append(Gate("ms", (order[k], order[k + 1])))
    else:
        raise ValueError(f"unknown random-circuit family {family!r}")
    return circuit


def sample_gate_count(rng: random.Random) -> int:
    """Draw a circuit size from the paper's N(1438, 413), clamped."""
    value = int(round(rng.gauss(PAPER_MEAN_GATES, PAPER_STD_GATES)))
    return max(_MIN_GATES, min(_MAX_GATES, value))


def paper_random_suite(
    circuits_per_size: int = PAPER_CIRCUITS_PER_SIZE,
    family: str = "uniform",
    seed: int = 2022,
) -> list[Circuit]:
    """The paper's random ensemble: ``circuits_per_size`` per qubit size.

    With the default ``circuits_per_size=30`` this is the full
    120-circuit suite; the quick harness uses 3 per size.
    """
    rng = random.Random(seed)
    suite: list[Circuit] = []
    for num_qubits in PAPER_SIZES:
        for index in range(circuits_per_size):
            gates = sample_gate_count(rng)
            circuit_seed = rng.randrange(1 << 30)
            suite.append(
                random_circuit(num_qubits, gates, circuit_seed, family)
            )
            suite[-1].name = (
                f"Random-{num_qubits}q-{index:02d}"
            )
    return suite
