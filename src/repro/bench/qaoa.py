"""QAOA MaxCut benchmark (Table II row 2).

The paper reports QAOA with 64 qubits and 1260 two-qubit gates.  The
QCCDSim suite uses QAOA for MaxCut on random regular graphs; with a
random 3-regular graph on 64 vertices (96 edges) and the standard
ZZ-interaction lowering of 2 CNOTs (2 MS gates) per edge per round,
7 rounds give 1344 two-qubit gates — the closest round count to the
paper's 1260 (within 7%).  An exact-count preset using a 63-edge path
graph is also provided; the random-graph instance is the default since
its scattered interactions match the paper's reported shuttle-to-gate
ratio (1552 shuttles for 1260 gates on the baseline compiler).
"""

from __future__ import annotations

import random

from ..circuits.circuit import Circuit
from ..circuits.decompose import decompose_circuit
from ..circuits.gate import Gate


def random_regular_graph(
    num_vertices: int, degree: int, seed: int = 7
) -> list[tuple[int, int]]:
    """Sample a random d-regular graph via the configuration model.

    Re-samples on self-loops or duplicate edges, so the result is a
    simple graph.  Deterministic for a given seed.
    """
    if num_vertices * degree % 2 != 0:
        raise ValueError("num_vertices * degree must be even")
    rng = random.Random(seed)
    while True:
        stubs = [v for v in range(num_vertices) for _ in range(degree)]
        rng.shuffle(stubs)
        edges: set[tuple[int, int]] = set()
        valid = True
        for i in range(0, len(stubs), 2):
            a, b = stubs[i], stubs[i + 1]
            if a == b or (min(a, b), max(a, b)) in edges:
                valid = False
                break
            edges.add((min(a, b), max(a, b)))
        if valid:
            return sorted(edges)


def qaoa_circuit(
    num_qubits: int = 64,
    rounds: int = 7,
    degree: int = 3,
    seed: int = 7,
    gamma: float = 0.42,
    beta: float = 0.27,
    native: bool = True,
    with_single_qubit: bool = False,
    edges: list[tuple[int, int]] | None = None,
) -> Circuit:
    """Build a QAOA MaxCut circuit on a random regular graph.

    Each round applies exp(-i gamma Z.Z) per edge (2 CNOTs + RZ) and an
    RX mixer per qubit.  ``edges`` overrides the random graph.
    """
    if edges is None:
        edges = random_regular_graph(num_qubits, degree, seed)
    circuit = Circuit(num_qubits, name="QAOA")
    if with_single_qubit:
        for q in range(num_qubits):
            circuit.append(Gate("h", (q,)))
    for _ in range(rounds):
        for a, b in edges:
            # ZZ(gamma) = CX . RZ(2 gamma) . CX  (2 two-qubit gates)
            circuit.append(Gate("cx", (a, b)))
            circuit.append(Gate("rz", (b,), (2.0 * gamma,)))
            circuit.append(Gate("cx", (a, b)))
        if with_single_qubit:
            for q in range(num_qubits):
                circuit.append(Gate("rx", (q,), (2.0 * beta,)))
    if native:
        return decompose_circuit(circuit, keep_one_qubit=with_single_qubit)
    return circuit


def qaoa_path_circuit(
    num_qubits: int = 64, rounds: int = 10, native: bool = True
) -> Circuit:
    """Exact-gate-count preset: path graph, 63 edges x 2 MS x 10 = 1260."""
    edges = [(q, q + 1) for q in range(num_qubits - 1)]
    circuit = qaoa_circuit(
        num_qubits, rounds=rounds, native=native, edges=edges
    )
    circuit.name = "QAOA-path"
    return circuit
