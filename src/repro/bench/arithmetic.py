"""Reversible-arithmetic building blocks.

Substrate for the SquareRoot benchmark (and reusable for any arithmetic
workload): the Cuccaro/CDKM ripple-carry adder built from MAJ/UMA cells,
and V-chain multi-controlled gates.  Everything is expressed in
{x, cx, ccx}, so circuits built from these blocks are classical
reversible networks — the test suite verifies them by running the gate
stream on classical basis states (see ``tests/test_arithmetic.py``).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from ..circuits.circuit import Circuit
from ..circuits.gate import Gate


def majority(a: int, b: int, c: int) -> Iterator[Gate]:
    """MAJ cell of the Cuccaro adder (Cuccaro et al. 2004)."""
    yield Gate("cx", (c, b))
    yield Gate("cx", (c, a))
    yield Gate("ccx", (a, b, c))


def unmajority(a: int, b: int, c: int) -> Iterator[Gate]:
    """UMA (2-CNOT version) cell of the Cuccaro adder."""
    yield Gate("ccx", (a, b, c))
    yield Gate("cx", (c, a))
    yield Gate("cx", (a, b))


def ripple_adder(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    carry_in: int,
    carry_out: int | None = None,
) -> Iterator[Gate]:
    """Cuccaro ripple-carry adder: ``b += a`` (mod 2^n without carry_out).

    ``a_bits``/``b_bits`` are LSB-first.  ``carry_in`` must be a clean
    ancilla (restored to 0).  With ``carry_out`` the final carry is
    XORed onto that qubit.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("register widths differ")
    n = len(a_bits)
    if n == 0:
        return
    yield from majority(carry_in, b_bits[0], a_bits[0])
    for i in range(1, n):
        yield from majority(a_bits[i - 1], b_bits[i], a_bits[i])
    if carry_out is not None:
        yield Gate("cx", (a_bits[-1], carry_out))
    for i in range(n - 1, 0, -1):
        yield from unmajority(a_bits[i - 1], b_bits[i], a_bits[i])
    yield from unmajority(carry_in, b_bits[0], a_bits[0])


def ripple_subtractor(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    carry_in: int,
    carry_out: int | None = None,
) -> Iterator[Gate]:
    """``b -= a`` (two's complement) via X-conjugated addition.

    b - a = ~(~b + a); the borrow appears (inverted) on ``carry_out``.
    """
    for q in b_bits:
        yield Gate("x", (q,))
    yield from ripple_adder(a_bits, b_bits, carry_in, carry_out)
    for q in b_bits:
        yield Gate("x", (q,))


def mct_vchain(
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> Iterator[Gate]:
    """Multi-controlled X via the standard Toffoli V-chain.

    Requires ``len(controls) - 2`` ancillas for >2 controls.  The chain
    computes the AND of all controls into the last ancilla, applies a
    CX onto the target, then uncomputes — 2(k-2) + 1 Toffolis for k
    controls.
    """
    k = len(controls)
    if k == 0:
        yield Gate("x", (target,))
        return
    if k == 1:
        yield Gate("cx", (controls[0], target))
        return
    if k == 2:
        yield Gate("ccx", (controls[0], controls[1], target))
        return
    needed = k - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"{k}-control Toffoli needs {needed} ancillas, got {len(ancillas)}"
        )
    work = list(ancillas[:needed])
    uncompute: list[Gate] = []

    first = Gate("ccx", (controls[0], controls[1], work[0]))
    yield first
    uncompute.append(first)
    for i in range(2, k - 1):
        gate = Gate("ccx", (controls[i], work[i - 2], work[i - 1]))
        yield gate
        uncompute.append(gate)
    yield Gate("ccx", (controls[-1], work[-1], target))
    for gate in reversed(uncompute):
        yield gate


def mcz_vchain(
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> Iterator[Gate]:
    """Multi-controlled Z: H-conjugated :func:`mct_vchain`."""
    yield Gate("h", (target,))
    yield from mct_vchain(controls, target, ancillas)
    yield Gate("h", (target,))


def run_classical(gates, num_qubits: int, input_bits: int) -> int:
    """Evaluate an {x, cx, ccx}-only gate stream on a basis state.

    Bit ``q`` of the integer state corresponds to qubit ``q``.  Used by
    tests to verify the arithmetic blocks without matrix exponentials.
    """
    state = input_bits
    for gate in gates:
        if gate.name == "x":
            state ^= 1 << gate.qubits[0]
        elif gate.name in ("cx", "cnot"):
            control, targ = gate.qubits
            if state >> control & 1:
                state ^= 1 << targ
        elif gate.name in ("ccx", "toffoli"):
            c1, c2, targ = gate.qubits
            if (state >> c1 & 1) and (state >> c2 & 1):
                state ^= 1 << targ
        else:
            raise ValueError(f"non-classical gate {gate.name!r}")
    if state >= 1 << num_qubits:
        raise ValueError("state exceeded register width")
    return state


def adder_circuit(n_bits: int) -> Circuit:
    """Standalone ``b += a`` circuit (layout: a | b | carry)."""
    a = list(range(n_bits))
    b = list(range(n_bits, 2 * n_bits))
    carry = 2 * n_bits
    circuit = Circuit(2 * n_bits + 1, name=f"adder{n_bits}")
    circuit.extend(ripple_adder(a, b, carry))
    return circuit
