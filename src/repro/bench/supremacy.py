"""Google quantum-supremacy-style benchmark (Table II row 1).

The paper uses the "circuit from Google's supremacy experiment" of the
QCCDSim suite: 64 qubits, 560 two-qubit gates, nearest-neighbour gate
pattern on a 2-D grid.  This generator reproduces that structure: an
8x8 qubit grid, CZ layers alternating between the four half-patterns
(even/odd horizontal pairs, even/odd vertical pairs — the Boixo et
al. scheduling discipline), 20 cycles x 28 CZs = 560 two-qubit gates
after decomposition (each CZ lowers to one MS gate).

Qubits are numbered row-major, so horizontal neighbours are 1 apart and
vertical neighbours are ``cols`` apart — the latter straddle trap
boundaries on a linear machine, which is what makes this benchmark
shuttle-heavy.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from ..circuits.decompose import decompose_circuit
from ..circuits.gate import Gate


def supremacy_patterns(rows: int, cols: int) -> list[list[tuple[int, int]]]:
    """The four alternating CZ half-patterns of the supremacy schedule."""

    def qubit(r: int, c: int) -> int:
        return r * cols + c

    patterns: list[list[tuple[int, int]]] = []
    for parity in (0, 1):
        patterns.append(
            [
                (qubit(r, c), qubit(r, c + 1))
                for r in range(rows)
                for c in range(parity, cols - 1, 2)
            ]
        )
    for parity in (0, 1):
        patterns.append(
            [
                (qubit(r, c), qubit(r + 1, c))
                for c in range(cols)
                for r in range(parity, rows - 1, 2)
            ]
        )
    return patterns


def supremacy_circuit(
    rows: int = 8,
    cols: int = 8,
    cycles: int = 20,
    native: bool = True,
    with_single_qubit: bool = False,
) -> Circuit:
    """Build the supremacy benchmark.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (paper: 8x8 = 64 qubits).
    cycles:
        Number of CZ layers (paper: 20, giving 560 two-qubit gates).
    native:
        Decompose to the trapped-ion native set (default).  When False
        the raw CZ circuit is returned.
    with_single_qubit:
        Insert the supremacy-style random single-qubit layer before each
        CZ layer (sqrt(X)/sqrt(Y) alternation).  Off by default because
        shuttle counts depend only on two-qubit structure.
    """
    circuit = Circuit(rows * cols, name="Supremacy")
    patterns = supremacy_patterns(rows, cols)
    sq_toggle = 0
    for cycle in range(cycles):
        if with_single_qubit:
            name = "sx" if sq_toggle == 0 else "h"
            sq_toggle ^= 1
            for q in range(rows * cols):
                circuit.append(Gate(name, (q,)))
        for a, b in patterns[cycle % len(patterns)]:
            circuit.append(Gate("cz", (a, b)))
    if native:
        return decompose_circuit(circuit, keep_one_qubit=with_single_qubit)
    return circuit
