"""Benchmark circuit generators matching the paper's suite."""

from .arithmetic import (
    adder_circuit,
    majority,
    mct_vchain,
    mcz_vchain,
    ripple_adder,
    ripple_subtractor,
    run_classical,
    unmajority,
)
from .qaoa import qaoa_circuit, qaoa_path_circuit, random_regular_graph
from .qft import qft_circuit
from .quadraticform import quadratic_form_circuit
from .random_circuits import (
    PAPER_CIRCUITS_PER_SIZE,
    PAPER_MEAN_GATES,
    PAPER_SIZES,
    paper_random_suite,
    random_circuit,
)
from .squareroot import squareroot_circuit
from .suite import (
    PAPER_FIG8_IMPROVEMENT,
    PAPER_NISQ_SIZES,
    PAPER_TABLE2_SHUTTLES,
    PAPER_TABLE3_SECONDS,
    full_random_requested,
    nisq_suite,
    paper_suite,
)
from .supremacy import supremacy_circuit, supremacy_patterns

__all__ = [
    "PAPER_CIRCUITS_PER_SIZE",
    "PAPER_FIG8_IMPROVEMENT",
    "PAPER_MEAN_GATES",
    "PAPER_NISQ_SIZES",
    "PAPER_SIZES",
    "PAPER_TABLE2_SHUTTLES",
    "PAPER_TABLE3_SECONDS",
    "adder_circuit",
    "full_random_requested",
    "majority",
    "mct_vchain",
    "mcz_vchain",
    "nisq_suite",
    "paper_random_suite",
    "paper_suite",
    "qaoa_circuit",
    "qaoa_path_circuit",
    "qft_circuit",
    "quadratic_form_circuit",
    "random_circuit",
    "random_regular_graph",
    "ripple_adder",
    "ripple_subtractor",
    "run_classical",
    "squareroot_circuit",
    "supremacy_circuit",
    "supremacy_patterns",
    "unmajority",
]
