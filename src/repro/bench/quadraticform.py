"""QuadraticForm benchmark (Table II row 5).

The paper takes QuadraticForm from the Qiskit circuit library [11]
(Gilliam et al., Grover adaptive search for constrained polynomial
binary optimization): the circuit computes ``Q(x) = x^T A x + b^T x``
into an ``m``-qubit result register by phase accumulation followed by
an inverse QFT.

Structure reproduced here (Draper-style QFT arithmetic):

* H layer on the result register (phase basis),
* for every result bit ``k``: a controlled phase from each nonzero
  linear term ``b_i`` (input ``i`` -> result ``k``) and a
  doubly-controlled phase from each nonzero quadratic term ``A_ij``
  (inputs ``i, j`` -> result ``k``),
* inverse QFT on the result register.

With 56 input + 8 result qubits, 21 nonzero linear terms and 47 nonzero
off-diagonal quadratic terms, the native-decomposed circuit has exactly
``8 * (21*2 + 47*8) + 56 = 3400`` two-qubit gates — the paper's count
(cp lowers to 2 MS, ccp to 8 MS).  The sparse random A/b reflect the
constrained-optimization instances the benchmark targets; the resulting
interaction pattern is all-to-all, as the paper notes.
"""

from __future__ import annotations

import math
import random

from ..circuits.circuit import Circuit
from ..circuits.decompose import decompose_circuit
from ..circuits.gate import Gate


def ccp_gates(theta: float, a: int, b: int, c: int):
    """Doubly-controlled phase from cp and cx (standard construction)."""
    yield Gate("cp", (b, c), (theta / 2,))
    yield Gate("cx", (a, b))
    yield Gate("cp", (b, c), (-theta / 2,))
    yield Gate("cx", (a, b))
    yield Gate("cp", (a, c), (theta / 2,))


def quadratic_form_circuit(
    num_input: int = 56,
    num_result: int = 8,
    num_linear: int = 21,
    num_quadratic: int = 47,
    seed: int = 11,
    native: bool = True,
    with_single_qubit: bool = False,
) -> Circuit:
    """Build the QuadraticForm benchmark.

    ``num_linear`` input indices get a nonzero linear coefficient and
    ``num_quadratic`` index pairs a nonzero quadratic coefficient, both
    sampled deterministically from ``seed``.  Coefficients are small
    integers; their values only affect rotation angles, not gate counts.
    """
    rng = random.Random(seed)
    if num_linear > num_input:
        raise ValueError("more linear terms than inputs")
    max_pairs = num_input * (num_input - 1) // 2
    if num_quadratic > max_pairs:
        raise ValueError("more quadratic terms than input pairs")

    linear_terms = sorted(rng.sample(range(num_input), num_linear))
    all_pairs = [
        (i, j) for i in range(num_input) for j in range(i + 1, num_input)
    ]
    quadratic_terms = sorted(rng.sample(all_pairs, num_quadratic))
    linear_coeff = {i: rng.randint(1, 7) for i in linear_terms}
    quadratic_coeff = {p: rng.randint(1, 7) for p in quadratic_terms}

    num_qubits = num_input + num_result
    result = list(range(num_input, num_qubits))
    circuit = Circuit(num_qubits, name="QuadraticForm")

    if with_single_qubit:
        for q in result:
            circuit.append(Gate("h", (q,)))

    # Term-major order (result bit k as the inner loop), matching the
    # Qiskit implementation: all result-bit phases of one term are
    # applied back to back, so the compiler consolidates each input
    # (pair) with the result register exactly once per term — this is
    # what gives the benchmark its low shuttle-to-gate ratio in the
    # paper (228 shuttles for 3400 gates).
    scale = 2.0 * math.pi / (1 << num_result)
    for i in linear_terms:
        for k, result_qubit in enumerate(result):
            theta = scale * linear_coeff[i] * (1 << k)
            circuit.append(Gate("cp", (i, result_qubit), (theta,)))
    for (i, j) in quadratic_terms:
        for k, result_qubit in enumerate(result):
            theta = scale * quadratic_coeff[(i, j)] * (1 << k)
            circuit.extend(ccp_gates(theta, i, j, result_qubit))

    # Inverse QFT on the result register.
    for i in reversed(range(num_result)):
        for j in reversed(range(i + 1, num_result)):
            theta = -math.pi / (1 << (j - i))
            circuit.append(Gate("cp", (result[i], result[j]), (theta,)))
        if with_single_qubit:
            circuit.append(Gate("h", (result[i],)))

    if native:
        return decompose_circuit(circuit, keep_one_qubit=with_single_qubit)
    return circuit
