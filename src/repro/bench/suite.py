"""The paper's benchmark suite (Section IV-A), assembled.

``nisq_suite()`` returns the five named benchmarks with the paper's
sizes; ``paper_suite()`` adds the random ensemble (120 circuits when
``full=True``, a 12-circuit sample otherwise — set the environment
variable ``REPRO_FULL=1`` to default to the full ensemble).
"""

from __future__ import annotations

import os

from ..circuits.circuit import Circuit
from .qaoa import qaoa_circuit
from .qft import qft_circuit
from .quadraticform import quadratic_form_circuit
from .random_circuits import paper_random_suite
from .squareroot import squareroot_circuit
from .supremacy import supremacy_circuit

#: Paper-reported (qubits, 2q gates) per NISQ benchmark, for validation.
PAPER_NISQ_SIZES = {
    "Supremacy": (64, 560),
    "QAOA": (64, 1260),
    "SquareRoot": (78, 1028),
    "QFT": (64, 4032),
    "QuadraticForm": (64, 3400),
}

#: Paper Table II shuttle counts: name -> (baseline [7], this work).
PAPER_TABLE2_SHUTTLES = {
    "Supremacy": (365, 223),
    "QAOA": (1552, 957),
    "SquareRoot": (717, 355),
    "QFT": (241, 196),
    "QuadraticForm": (228, 164),
    "Random": (1048, 775),
}

#: Paper Fig. 8 fidelity improvements (x).
PAPER_FIG8_IMPROVEMENT = {
    "Supremacy": 1.25,
    "QAOA": 22.68,
    "SquareRoot": 3.21,
    "QFT": 1.47,
    "QuadraticForm": 1.28,
    "Random": 3.22,
}

#: Paper Table III compile times in seconds: name -> (this work, [7]).
PAPER_TABLE3_SECONDS = {
    "Supremacy": (2.6, 1.1),
    "QAOA": (12.99, 3.88),
    "SquareRoot": (6.29, 1.83),
    "QFT": (18.42, 4.22),
    "QuadraticForm": (24.55, 3.74),
    "Random": (19.15, 3.53),
}


def nisq_suite() -> list[Circuit]:
    """The five named NISQ benchmarks at paper sizes."""
    return [
        supremacy_circuit(),
        qaoa_circuit(),
        squareroot_circuit(),
        qft_circuit(),
        quadratic_form_circuit(),
    ]


def full_random_requested() -> bool:
    """True when REPRO_FULL=1 asks for the complete 120-circuit ensemble."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def paper_suite(full: bool | None = None) -> list[Circuit]:
    """NISQ benchmarks plus the random ensemble.

    ``full=None`` consults ``REPRO_FULL``; the reduced ensemble keeps
    3 circuits per size (12 total) so the default harness stays fast.
    """
    if full is None:
        full = full_random_requested()
    per_size = 30 if full else 3
    return nisq_suite() + paper_random_suite(circuits_per_size=per_size)
