"""Quantum Fourier transform benchmark (Table II row 4).

QFT on 64 qubits: the textbook cascade of controlled-phase rotations.
n(n-1)/2 = 2016 controlled phases, each lowering to exactly 2 MS gates,
gives the paper's 4032 two-qubit gates.  The final qubit-reversal swaps
are omitted — including them would add 3x63 more MS gates and break the
paper's count, and QCCDSim's QFT likewise relabels instead of swapping.

The all-to-all interaction pattern makes this the benchmark where
"moving one ion satisfies many future gates" (Section IV-B): each qubit
``i`` interacts with every later qubit in ascending order, so the
compiler can ride qubit ``i`` across the trap line.
"""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit
from ..circuits.decompose import decompose_circuit
from ..circuits.gate import Gate


def qft_circuit(
    num_qubits: int = 64,
    native: bool = True,
    with_single_qubit: bool = False,
    approximation_degree: int | None = None,
) -> Circuit:
    """Build the QFT benchmark.

    Parameters
    ----------
    num_qubits:
        Register width (paper: 64).
    native:
        Decompose controlled phases to MS + rotations (default).
    with_single_qubit:
        Keep the Hadamard ladder in the output.
    approximation_degree:
        Standard approximate-QFT truncation: drop controlled phases with
        angle below pi/2^approximation_degree (None = exact QFT).
    """
    circuit = Circuit(num_qubits, name="QFT")
    for i in range(num_qubits):
        if with_single_qubit:
            circuit.append(Gate("h", (i,)))
        for j in range(i + 1, num_qubits):
            k = j - i
            if approximation_degree is not None and k > approximation_degree:
                continue
            circuit.append(Gate("cp", (i, j), (math.pi / 2**k,)))
    if native:
        return decompose_circuit(circuit, keep_one_qubit=with_single_qubit)
    return circuit
