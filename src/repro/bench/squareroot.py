"""Square Root benchmark (Table II row 3).

The paper takes "Square Root" from the QCCDSim suite (originally the
ScaffCC benchmark): computing an integer square root by Grover-searching
for ``x`` with ``x^2 = N`` — 78 qubits, 1028 two-qubit gates, and a mix
of short- and long-range gates (Section IV-B notes this pattern gives
the best shuttle reductions).

The dominant arithmetic of that benchmark is *squaring by shift-add*:
for each bit ``x_i`` of the candidate, conditionally add ``x << i``
into an accumulator, then compare against ``N``.  This generator
reproduces exactly that structure:

* registers: candidate ``x`` (16) | accumulator (32) | mask ancillas
  (16) | comparison constant (12) | carry | flag = 78 qubits,
* each squarer iteration masks ``x`` into the ancilla register under
  control of ``x_i`` (long-range Toffolis across registers), ripple-adds
  the mask into the accumulator window (short-range carries), and
  uncomputes the mask,
* a final ripple comparison borrows onto the flag qubit.

Two squarer iterations plus the comparison give 1025 two-qubit gates
after native decomposition (paper: 1028; the 0.3%% difference is the
unknown internals of the original oracle).  The cross-register fan-out
of the mask step is what generates the long-range shuttle traffic the
paper describes.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from ..circuits.decompose import decompose_circuit
from ..circuits.gate import Gate
from .arithmetic import ripple_adder, ripple_subtractor

#: Default register widths (chosen to hit the paper's 78 qubits).
_X_BITS = 16
_ACC_BITS = 32
_CMP_BITS = 12


def squareroot_circuit(
    x_bits: int = _X_BITS,
    squarer_iterations: int = 2,
    native: bool = True,
    with_single_qubit: bool = False,
) -> Circuit:
    """Build the SquareRoot benchmark.

    Parameters
    ----------
    x_bits:
        Candidate register width (default 16; total qubits =
        ``x_bits*4 + 14`` = 78 at the default).
    squarer_iterations:
        Shift-add iterations included (default 2, matching the paper's
        1028-gate count; the full squarer would use ``x_bits``).
    native:
        Decompose to the trapped-ion native set (default).
    with_single_qubit:
        Keep the superposition-preparation H layer in the output.
    """
    if x_bits < 8:
        raise ValueError("x register must have at least 8 bits")
    acc_bits = 2 * x_bits
    # Comparison width tuned so the default hits the paper's 1028-gate
    # count; the remaining qubits up to the ScaffCC allocation (78 at
    # the default size) are untouched oracle workspace, as in the
    # original benchmark.
    cmp_bits = max(2, x_bits - 7)

    x = list(range(x_bits))
    acc = list(range(x_bits, x_bits + acc_bits))
    mask = list(range(x_bits + acc_bits, 2 * x_bits + acc_bits))
    cmp_reg = list(
        range(2 * x_bits + acc_bits, 2 * x_bits + acc_bits + cmp_bits)
    )
    carry = 2 * x_bits + acc_bits + cmp_bits
    flag = carry + 1
    num_qubits = flag + 1 + 3  # + idle oracle workspace (ScaffCC layout)

    circuit = Circuit(num_qubits, name="SquareRoot")

    if with_single_qubit:
        for q in x:
            circuit.append(Gate("h", (q,)))

    for i in range(squarer_iterations):
        control = x[i]
        # Mask step: copy x into the mask register under x_i
        # (long-range Toffolis: control and targets live in different
        # registers, hence different traps).  x_i AND x_i degenerates
        # to a plain copy.
        for j in range(x_bits):
            if j == i:
                circuit.append(Gate("cx", (control, mask[j])))
            else:
                circuit.append(Gate("ccx", (control, x[j], mask[j])))
        # Accumulate: acc[i : i + x_bits] += mask (short-range carries).
        window = acc[i : i + x_bits]
        circuit.extend(ripple_adder(mask, window, carry))
        # Uncompute the mask.
        for j in reversed(range(x_bits)):
            if j == i:
                circuit.append(Gate("cx", (control, mask[j])))
            else:
                circuit.append(Gate("ccx", (control, x[j], mask[j])))

    # Compare the low accumulator bits against the constant register:
    # borrow lands on the flag qubit (the Grover-oracle phase source).
    circuit.extend(
        ripple_subtractor(
            cmp_reg,
            acc[: len(cmp_reg)],
            carry_in=carry,
            carry_out=flag,
        )
    )

    if native:
        return decompose_circuit(circuit, keep_one_qubit=with_single_qubit)
    return circuit
