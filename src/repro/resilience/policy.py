"""Retry/backoff/quarantine policy for the hardened batch runner.

:class:`RetryPolicy` is the *defense* half of the resilience layer
(:class:`~repro.resilience.faults.FaultPlan` is the attack half): how
many attempts a job gets, how long to back off between them, and when
a job is declared poisoned.  Like the fault plan it is frozen data,
JSON round-trippable, and its backoff schedule is a pure function of
``(policy, job key, attempt)`` — seeded jitter, no shared RNG — so a
retried run is reproducible.

Semantics (DESIGN.md §12):

* ``failed`` / ``timeout`` / ``crashed`` attempts are retried while
  attempts remain; ``ok`` is terminal, and a genuine compiler error
  that recurs simply exhausts its attempts and lands as ``failed``.
* **Poisoned-job rule**: a job whose attempts have killed
  ``poison_threshold`` workers is marked ``poisoned`` and *never*
  retried again, whatever its attempt budget says — a job that
  reliably takes workers down must not be allowed to grind the pool
  forever.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from .faults import _draw

#: Attempt outcomes that are eligible for retry.
RETRYABLE_OUTCOMES = ("failed", "timeout", "crashed")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget, exponential backoff with seeded jitter, and the
    poisoned-job threshold."""

    #: Total attempts per job (1 = no retries).
    max_attempts: int = 3
    #: First backoff delay, seconds; attempt ``n`` (1-based retry
    #: count) waits ``backoff_base * 2**(n-1)`` before jitter.
    backoff_base: float = 0.05
    #: Upper bound on any single backoff delay, seconds.
    backoff_cap: float = 2.0
    #: Jitter fraction: the delay is scaled by a deterministic factor
    #: drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.5
    #: Worker deaths attributable to one job before it is quarantined.
    poison_threshold: int = 2
    #: Seed for the jitter draws (independent of any fault plan seed).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )

    def backoff(self, key: str, attempt: int) -> float:
        """Delay before attempt ``attempt`` (1-based retries) of job
        ``key``: capped exponential with seeded jitter; pure in all
        inputs."""
        if attempt < 1:
            return 0.0
        delay = min(
            self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap
        )
        if self.jitter:
            unit = _draw(self.seed, "backoff", key, attempt)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return min(delay, self.backoff_cap)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able policy document (``from_dict`` round-trips)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Build a policy from a :meth:`to_dict`-shaped document."""
        return cls(**data)
