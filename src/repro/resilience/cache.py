"""Cache-corruption injection: :class:`ChaosCache`.

Wraps a :class:`~repro.batch.cache.ResultCache` and garbles entry
*files* on disk per a :class:`~repro.resilience.faults.FaultPlan` —
write corruption right after a ``put``, read corruption right before a
``get``.  The corruption is real (the bytes on disk are truncated and
prefixed with garbage), so what gets exercised is the cache's own
defense: :meth:`ResultCache.get` must quarantine the unreadable entry,
count ``cache.corrupt``, report a miss, and let the runner recompute —
zero lost jobs, merely colder caches.

Like worker faults, corruption decisions are pure functions of
``(plan seed, key)`` — a chaos run corrupts the same entries no matter
the timing.
"""

from __future__ import annotations

from ..batch.cache import CacheStats, ResultCache
from .faults import FaultPlan

#: Prefix stamped onto a garbled entry file (makes chaos-corrupted
#: files recognizable in a post-mortem, unlike genuine bit rot).
GARBLE_PREFIX = b"\x00REPRO-CHAOS\x00"


class ChaosCache:
    """A :class:`ResultCache` proxy that injects entry-file corruption.

    Duck-types the cache protocol (``get`` / ``put`` / ``stats`` /
    ``__len__``), so :class:`~repro.batch.runner.BatchRunner` uses it
    unchanged.
    """

    def __init__(self, inner: ResultCache, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        #: Per-key read counter driving the read-corruption stream.
        self._lookups: dict[str, int] = {}
        self.corrupted_reads = 0
        self.corrupted_writes = 0

    @property
    def stats(self) -> CacheStats:
        return self.inner.stats

    def get(self, key: str):
        lookup = self._lookups.get(key, 0)
        self._lookups[key] = lookup + 1
        if self.plan.corrupt_read(key, lookup) and self._garble(key):
            self.corrupted_reads += 1
        return self.inner.get(key)

    def put(self, key: str, value) -> None:
        self.inner.put(key, value)
        if self.plan.corrupt_write(key) and self._garble(key):
            self.corrupted_writes += 1

    def _garble(self, key: str) -> bool:
        """Truncate-and-prefix the entry file for ``key``; True if an
        entry existed to corrupt."""
        path = self.inner._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return False
        path.write_bytes(GARBLE_PREFIX + data[: len(data) // 2])
        return True

    def __len__(self) -> int:
        return len(self.inner)
