"""Worker-side task execution: chaos injection + deadline guard.

:func:`execute_task` is what a :class:`~repro.resilience.pool.SupervisedPool`
worker runs per task.  It wraps the batch engine's single execution
path (:func:`repro.batch.runner._execute_indexed`, so the obs-collect
protocol and failure formatting are byte-for-byte those of the plain
runner) with the two resilience concerns that must live *inside* the
worker process:

* **fault injection** — the task's :class:`~repro.resilience.faults.FaultPlan`
  decides (purely, from the job key and attempt) whether this attempt
  raises, hard-exits, or stalls;
* **deadline enforcement** — ``SIGALRM`` arms a wall-clock budget
  around the attempt; an expiring timer raises
  :class:`~repro.resilience.faults.JobTimeoutError`, which the
  executor classifies as a ``timeout`` outcome.  Platforms without
  ``SIGALRM`` fall back to the parent-side kill in the pool.
"""

from __future__ import annotations

import os
import signal
import traceback
from dataclasses import dataclass

from ..batch.jobs import CompileJob
from ..batch.runner import JobResult, _execute_indexed
from .faults import (
    FAULT_CRASH,
    INJECTED_EXIT_CODE,
    FaultPlan,
    JobTimeoutError,
)


@dataclass(frozen=True)
class Task:
    """One attempt of one job, as shipped to a supervised worker."""

    #: Parent-side submission id (one per job *instance*, stable across
    #: that instance's retry attempts).
    task_id: int
    index: int
    job: CompileJob
    key: str
    observed: bool
    #: 0-based attempt number (drives the fault decision).
    attempt: int = 0
    #: Wall-clock budget, seconds; ``None`` means unbounded.
    deadline: float | None = None
    chaos: FaultPlan | None = None


def _raise_timeout(signum, frame):  # pragma: no cover - signal frame
    raise JobTimeoutError("job deadline exceeded")


def execute_task(task: Task) -> JobResult:
    """Run one attempt under its fault decision and deadline budget.

    Never raises (an injected ``crash`` fault hard-exits the process
    instead — that is the point); every other path returns a
    :class:`JobResult`.
    """
    fault = (
        task.chaos.decide(task.key, task.attempt)
        if task.chaos is not None
        else None
    )
    if fault == FAULT_CRASH:
        # A hard worker death: no cleanup, no result, no goodbye —
        # exactly what a OOM-kill or segfault looks like from the
        # parent's side of the pipe.
        os._exit(INJECTED_EXIT_CODE)
    armed = task.deadline is not None and hasattr(signal, "SIGALRM")
    if armed:
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, task.deadline)
    try:
        return _execute_indexed(
            (task.index, task.job, task.key, task.observed),
            fault=fault,
            chaos=task.chaos,
        )
    except BaseException as exc:
        # _execute_indexed formats job failures itself; reaching here
        # means the timer fired outside the guarded window (or the
        # interpreter is being torn down) — still return a record.
        outcome = "timeout" if isinstance(exc, JobTimeoutError) else "failed"
        return JobResult(
            task.index,
            task.key,
            None,
            error=traceback.format_exc(),
            outcome=outcome,
        )
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
