"""A crash-aware process pool with per-worker pipes.

``multiprocessing.Pool`` cannot tell *which* job a dead worker was
holding, and a vanished worker leaves ``apply_async`` callbacks that
simply never fire — the exact hang this layer exists to remove.
:class:`SupervisedPool` instead gives every worker its own duplex
:func:`multiprocessing.Pipe` and keeps **one task in flight per
worker**, which makes three things trivial that ``Pool`` makes
impossible:

* **crash attribution** — EOF on a worker's pipe names the task it was
  running;
* **bounded waits** — the parent blocks in
  :func:`multiprocessing.connection.wait` with a timeout clamped to the
  nearest deadline, never in an unbounded queue ``get``;
* **deadline kills + replenishment** — an overdue worker is SIGKILLed
  and a replacement spawned without corrupting any shared queue state.

The pool is mechanism only: it reports ``result`` / ``crashed`` /
``killed`` events and keeps itself at full strength.  Retry, backoff
and quarantine policy live in :class:`~repro.resilience.supervisor.Supervisor`.
"""

from __future__ import annotations

import multiprocessing
import signal
import sys
import traceback
from collections import deque
from multiprocessing import connection
from time import monotonic

from ..batch.runner import JobResult
from .execute import Task, execute_task

#: Event kinds yielded by :meth:`SupervisedPool.poll`.
EVENT_RESULT = "result"    # worker returned a JobResult
EVENT_CRASHED = "crashed"  # worker died while holding the task
EVENT_KILLED = "killed"    # parent killed the worker past its deadline


def _worker_main(conn) -> None:
    """Worker loop: recv a :class:`Task`, run it, send the result.

    A ``None`` task is the shutdown sentinel.  The loop guarantees that
    every received task is answered unless the process dies — including
    when the result itself will not pickle, which degrades to an
    errored :class:`JobResult` rather than a poisoned pipe.
    """
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group, workers included.  The parent owns interruption (it stops
    # dispatching and drains); a worker must finish its in-flight task,
    # not die mid-compile and turn a graceful drain into a crash.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        try:
            job_result = execute_task(task)
        except BaseException:  # belt and braces: execute_task shouldn't raise
            job_result = JobResult(
                task.index,
                task.key,
                None,
                error=traceback.format_exc(),
                outcome="failed",
            )
        try:
            conn.send((task.task_id, job_result))
        except KeyboardInterrupt:
            return
        except Exception:
            try:
                conn.send(
                    (
                        task.task_id,
                        JobResult(
                            task.index,
                            task.key,
                            None,
                            error=(
                                "result could not cross the pool "
                                f"boundary:\n{traceback.format_exc()}"
                            ),
                            outcome="failed",
                        ),
                    )
                )
            except Exception:
                return


class _Worker:
    """Parent-side view of one worker process."""

    __slots__ = ("process", "conn", "task", "kill_at")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task: Task | None = None
        self.kill_at: float | None = None

    @property
    def busy(self) -> bool:
        return self.task is not None


class SupervisedPool:
    """Fixed-size pool of supervised workers (see module docstring).

    ``submit`` enqueues; tasks are dispatched to idle workers in FIFO
    order.  ``poll`` blocks (bounded) for events and transparently
    replaces dead or killed workers so capacity never decays.
    """

    def __init__(self, processes: int):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if (
            sys.platform.startswith("linux") and "fork" in methods
        ) else None
        self._ctx = multiprocessing.get_context(method)
        self._backlog: deque[tuple[Task, float | None]] = deque()
        #: Workers lost mid-task (crashes and deadline kills alike).
        self.worker_deaths = 0
        self._closed = False
        self._workers = [self._spawn() for _ in range(processes)]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        # The parent must drop its copy of the child end or a dead
        # worker never reads as EOF (the socket peer would still be
        # open in this process).
        child_conn.close()
        return _Worker(process, parent_conn)

    def _retire(self, worker: _Worker) -> None:
        """Kill/reap ``worker`` and put a fresh one in its slot."""
        self.worker_deaths += 1
        try:
            worker.process.kill()
        except Exception:
            pass
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except Exception:
            pass
        self._workers[self._workers.index(worker)] = self._spawn()

    # ------------------------------------------------------------------
    # Submission and dispatch
    # ------------------------------------------------------------------
    def submit(self, task: Task, kill_after: float | None = None) -> None:
        """Queue ``task``; the parent kills the worker ``kill_after``
        seconds after dispatch if no result has arrived (the backstop
        behind the worker-side SIGALRM guard)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        self._backlog.append((task, kill_after))
        self._dispatch()

    def _dispatch(self) -> None:
        for worker in self._workers:
            if not self._backlog:
                return
            if worker.busy:
                continue
            task, kill_after = self._backlog[0]
            try:
                worker.conn.send(task)
            except Exception:
                # Worker died while idle; replace it and let the loop
                # retry the same task on the fresh worker.  Not a
                # mid-task death, so no event and the task survives.
                self.worker_deaths += 1
                worker.process.kill()
                worker.process.join(timeout=5.0)
                self._workers[self._workers.index(worker)] = self._spawn()
                continue
            self._backlog.popleft()
            worker.task = task
            worker.kill_at = (
                monotonic() + kill_after if kill_after is not None else None
            )

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Tasks currently in flight or queued."""
        return sum(1 for w in self._workers if w.busy) + len(self._backlog)

    def poll(self, timeout: float) -> list[tuple[str, Task, JobResult | None]]:
        """Wait (at most ``timeout`` seconds) for events.

        Returns ``(kind, task, result)`` tuples where ``kind`` is one
        of :data:`EVENT_RESULT` / :data:`EVENT_CRASHED` /
        :data:`EVENT_KILLED`; ``result`` is ``None`` unless the kind is
        ``result``.  Every wait is bounded by both ``timeout`` and the
        nearest pending deadline — there is no code path that blocks
        forever on a worker that will never answer.
        """
        events: list[tuple[str, Task, JobResult | None]] = []
        stop_at = monotonic() + max(timeout, 0.0)
        while True:
            busy = [w for w in self._workers if w.busy]
            if not busy:
                self._dispatch()
                return events
            now = monotonic()
            horizon = min(
                [stop_at]
                + [w.kill_at for w in busy if w.kill_at is not None]
            )
            ready = connection.wait(
                [w.conn for w in busy], timeout=max(horizon - now, 0.0)
            )
            for conn in ready:
                worker = next(w for w in self._workers if w.conn is conn)
                task = worker.task
                try:
                    _task_id, job_result = conn.recv()
                except Exception:
                    # EOF (worker died) or an unreadable payload; the
                    # task it was holding is reported as crashed and
                    # the slot replenished.
                    events.append((EVENT_CRASHED, task, None))
                    self._retire(worker)
                    continue
                worker.task = None
                worker.kill_at = None
                events.append((EVENT_RESULT, task, job_result))
            now = monotonic()
            for worker in list(self._workers):
                if (
                    worker.busy
                    and worker.kill_at is not None
                    and now >= worker.kill_at
                ):
                    events.append((EVENT_KILLED, worker.task, None))
                    self._retire(worker)
            self._dispatch()
            if events or now >= stop_at:
                return events

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all workers: sentinel to the idle, SIGKILL to the busy."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.busy:
                worker.process.kill()
            else:
                try:
                    worker.conn.send(None)
                except Exception:
                    worker.process.kill()
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers = []
        self._backlog.clear()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
