"""Retry, backoff and quarantine orchestration over a SupervisedPool.

:class:`Supervisor` is the policy half of the hardened execution
layer: it owns per-job attempt state, classifies pool events into
outcomes (``ok`` / ``failed`` / ``timeout`` / ``crashed``), schedules
retries on the :class:`~repro.resilience.policy.RetryPolicy` backoff
curve, quarantines poisoned jobs, and emits the resilience counters
(``batch.retries`` / ``batch.timeouts`` / ``batch.worker_deaths`` /
``batch.quarantined`` plus ``chaos.injected.*``) into the active
observation.

Determinism note: the supervisor never needs the worker to *report*
an injected fault — :meth:`FaultPlan.decide` is pure in (seed, key,
attempt), so the parent replays the decision the worker is about to
make and counts ``chaos.*`` at dispatch time.  This is what keeps the
injection ledger exact even for ``crash`` faults, where the worker is
dead before it could say anything.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from time import monotonic, sleep

from ..batch.jobs import CompileJob
from ..batch.runner import JobResult
from ..obs import active as _obs_active
from .execute import Task
from .faults import FaultPlan
from .policy import RetryPolicy
from .pool import EVENT_CRASHED, EVENT_RESULT, SupervisedPool


@dataclass
class _JobState:
    """Attempt bookkeeping for one submitted job instance."""

    sid: int
    index: int
    job: CompileJob
    key: str
    observed: bool
    deadline: float | None
    attempts_started: int = 0
    crashes: int = 0
    attempt_seconds: list[float] = field(default_factory=list)
    dispatched_at: float = 0.0


class Supervisor:
    """Drive jobs to a terminal :class:`JobResult` despite failures.

    Parameters
    ----------
    processes:
        Worker count for the underlying :class:`SupervisedPool`.
    retry:
        Retry/quarantine policy; ``None`` means a single attempt with
        the default poison threshold.
    timeout:
        Default per-job wall-clock budget, seconds; a job's own
        :attr:`CompileJob.deadline` overrides it.  ``None`` = unbounded.
    chaos:
        Optional :class:`FaultPlan` shipped to workers (and replayed
        parent-side for the injection counters).
    grace:
        Extra seconds past the deadline before the parent SIGKILLs the
        worker (the backstop behind the worker-side SIGALRM guard).
        Defaults to ``max(0.5, 0.25 * deadline)``.
    """

    def __init__(
        self,
        processes: int,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        chaos: FaultPlan | None = None,
        grace: float | None = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=1)
        self.timeout = timeout
        self.chaos = chaos
        self.grace = grace
        self.pool = SupervisedPool(processes)
        self._states: dict[int, _JobState] = {}
        #: Min-heap of ``(due_monotonic, sid)`` retry launches.
        self._retry_heap: list[tuple[float, int]] = []
        self._next_sid = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        index: int,
        job: CompileJob,
        key: str,
        observed: bool,
    ) -> None:
        """Accept a job; it *will* reach a terminal result eventually."""
        deadline = job.deadline if job.deadline is not None else self.timeout
        state = _JobState(
            sid=self._next_sid,
            index=index,
            job=job,
            key=key,
            observed=observed,
            deadline=deadline,
        )
        self._next_sid += 1
        self._states[state.sid] = state
        self._launch(state)

    def _launch(self, state: _JobState) -> None:
        attempt = state.attempts_started
        state.attempts_started += 1
        if self.chaos is not None:
            # Replay the worker's (pure) fault decision to keep the
            # injection ledger, crash faults included.
            fault = self.chaos.decide(state.key, attempt)
            if fault is not None:
                self._inc("chaos.injected")
                self._inc(f"chaos.injected.{fault}")
        kill_after = None
        if state.deadline is not None:
            grace = (
                self.grace
                if self.grace is not None
                else max(0.5, 0.25 * state.deadline)
            )
            kill_after = state.deadline + grace
        state.dispatched_at = monotonic()
        self.pool.submit(
            Task(
                task_id=state.sid,
                index=state.index,
                job=state.job,
                key=state.key,
                observed=state.observed,
                attempt=attempt,
                deadline=state.deadline,
                chaos=self.chaos,
            ),
            kill_after,
        )

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Jobs without a terminal result yet."""
        return len(self._states)

    def poll(self, timeout: float = 0.25) -> list[JobResult]:
        """Advance the world for at most ``timeout`` seconds and return
        any newly *terminal* results (retried attempts stay internal)."""
        terminals: list[JobResult] = []
        now = monotonic()
        self._release_due(now)
        horizon = max(timeout, 0.0)
        if self._retry_heap:
            horizon = min(horizon, max(self._retry_heap[0][0] - now, 0.0))
        if self.pool.active:
            events = self.pool.poll(horizon)
        else:
            events = []
            if self._retry_heap and horizon > 0:
                sleep(horizon)
        self._release_due(monotonic())
        for kind, task, job_result in events:
            terminal = self._absorb(kind, task, job_result)
            if terminal is not None:
                terminals.append(terminal)
        return terminals

    def _release_due(self, now: float) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _due, sid = heapq.heappop(self._retry_heap)
            self._launch(self._states[sid])

    def _absorb(
        self,
        kind: str,
        task: Task,
        job_result: JobResult | None,
    ) -> JobResult | None:
        """Fold one pool event into job state; return the terminal
        result if this attempt ended the job."""
        state = self._states[task.task_id]
        elapsed = monotonic() - state.dispatched_at
        if kind == EVENT_RESULT:
            assert job_result is not None
            if job_result.metrics is not None:
                obs = _obs_active()
                if obs is not None:
                    obs.metrics.merge(job_result.metrics)
                job_result = replace(job_result, metrics=None)
            outcome = job_result.outcome
            seconds = (
                job_result.seconds if job_result.seconds is not None else elapsed
            )
        elif kind == EVENT_CRASHED:
            state.crashes += 1
            self._inc("batch.worker_deaths")
            outcome = "crashed"
            seconds = elapsed
            job_result = JobResult(
                state.index,
                state.key,
                None,
                error=(
                    f"worker process died while running attempt "
                    f"{state.attempts_started} of job {state.key[:12]}"
                ),
                outcome="crashed",
                seconds=seconds,
            )
        else:  # EVENT_KILLED
            state.crashes += 1
            self._inc("batch.worker_deaths")
            outcome = "timeout"
            seconds = elapsed
            job_result = JobResult(
                state.index,
                state.key,
                None,
                error=(
                    f"deadline of {state.deadline:.3g}s exceeded on attempt "
                    f"{state.attempts_started}; worker killed by supervisor"
                ),
                outcome="timeout",
                seconds=seconds,
            )
        if outcome == "timeout":
            self._inc("batch.timeouts")
        state.attempt_seconds.append(seconds)

        if outcome == "ok":
            terminal = True
        elif state.crashes >= self.retry.poison_threshold:
            # The poisoned-job rule: a job that keeps taking workers
            # down is quarantined no matter its remaining budget.
            outcome = "poisoned"
            self._inc("batch.quarantined")
            job_result = replace(
                job_result,
                outcome="poisoned",
                error=(
                    (job_result.error or "")
                    + f"\njob quarantined as poisoned after "
                    f"{state.crashes} worker deaths"
                ),
            )
            terminal = True
        elif state.attempts_started >= self.retry.max_attempts:
            terminal = True
        else:
            self._inc("batch.retries")
            due = monotonic() + self.retry.backoff(
                state.key, state.attempts_started
            )
            heapq.heappush(self._retry_heap, (due, state.sid))
            return None
        del self._states[state.sid]
        return replace(
            job_result,
            attempts=state.attempts_started,
            attempt_seconds=tuple(state.attempt_seconds),
        )

    @staticmethod
    def _inc(name: str) -> None:
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc(name)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
