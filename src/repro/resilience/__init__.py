"""repro.resilience — hardened execution + deterministic chaos.

Two halves, by design:

* **Defense** — :class:`RetryPolicy`, :class:`Supervisor`,
  :class:`SupervisedPool`: per-job deadlines, retry with seeded
  exponential backoff, worker-crash detection with pool
  replenishment, poisoned-job quarantine.  :class:`BatchRunner`
  engages this path only when a resilience option is set; without
  one it runs the legacy pool byte-for-byte (the inertness gate in
  ``benchmarks/bench_load.py`` holds it to ≤5% overhead even with
  the machinery on and injection off).
* **Attack** — :class:`FaultPlan`, :class:`ChaosCache`: seeded,
  JSON round-trippable fault injection whose every decision is a
  pure function of (plan, job key, attempt), so chaos runs are
  reproducible and the parent can account for injections it never
  hears back from.

Import structure: :mod:`.faults` and :mod:`.policy` are dependency-free
and imported eagerly (``repro.batch.runner`` needs the error types);
the pool/supervisor/execute/cache layers import :mod:`repro.batch` and
are loaded lazily to keep the package cycle-free.
"""

from __future__ import annotations

from .faults import (
    CHAOS_PRESETS,
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_KINDS,
    FAULT_STALL,
    INJECTED_EXIT_CODE,
    FaultPlan,
    InjectedFaultError,
    JobTimeoutError,
    load_fault_plan,
)
from .policy import RETRYABLE_OUTCOMES, RetryPolicy

__all__ = [
    "CHAOS_PRESETS",
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_KINDS",
    "FAULT_STALL",
    "INJECTED_EXIT_CODE",
    "FaultPlan",
    "InjectedFaultError",
    "JobTimeoutError",
    "load_fault_plan",
    "RETRYABLE_OUTCOMES",
    "RetryPolicy",
    "ChaosCache",
    "SupervisedPool",
    "Supervisor",
    "Task",
    "execute_task",
]

_LAZY = {
    "ChaosCache": ("repro.resilience.cache", "ChaosCache"),
    "SupervisedPool": ("repro.resilience.pool", "SupervisedPool"),
    "Supervisor": ("repro.resilience.supervisor", "Supervisor"),
    "Task": ("repro.resilience.execute", "Task"),
    "execute_task": ("repro.resilience.execute", "execute_task"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
