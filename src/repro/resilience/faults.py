"""Deterministic fault injection: the :class:`FaultPlan` model.

A fault plan describes *attacks* on the batch engine — worker
exceptions, worker hard-exits, job stalls, cache corruption — as
per-job probabilities.  Like :class:`~repro.loadgen.scenario.Scenario`,
a plan is plain frozen data, JSON round-trippable, and its effect is a
**pure function of (plan, job key, attempt)**: :meth:`FaultPlan.decide`
hashes ``(seed, key, attempt)`` into a uniform draw and compares it
against the cumulative rates, so

* the same plan against the same job list injects the *same* faults no
  matter the worker count, dispatch order, or wall-clock timing;
* the parent can *predict* every injection without a side channel —
  the supervisor counts ``chaos.*`` metrics by replaying the decision
  it knows the worker will make;
* chaos runs are debuggable: a failing seed reproduces exactly.

``max_faults_per_job`` bounds how many *attempts* of one job fault
(attempts at or beyond the bound run clean), which is what makes the
zero-lost-jobs invariant provable: with a retry budget above the fault
budget, every chaos-hit job eventually executes the unmodified code
path, so its result is bit-identical to a fault-free run.

This module is deliberately dependency-free (stdlib only): the error
types defined here are raised inside pool workers and caught by
:mod:`repro.batch.runner`, which must stay importable without pulling
in the whole resilience stack.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

#: Fault kinds, in cumulative-rate order (the order is part of the
#: decision function: changing it re-maps draws, like reordering a
#: scenario mix).
FAULT_ERROR = "error"      # worker raises InjectedFaultError
FAULT_CRASH = "crash"      # worker hard-exits (os._exit) mid-job
FAULT_STALL = "stall"      # worker sleeps stall_seconds before running

FAULT_KINDS = (FAULT_ERROR, FAULT_CRASH, FAULT_STALL)

#: Exit code of an injected worker hard-exit — distinguishable in
#: diagnostics from a real segfault (negative signal codes) or an
#: uncaught SystemExit (1).
INJECTED_EXIT_CODE = 86


class InjectedFaultError(RuntimeError):
    """The exception an ``error`` fault raises inside a worker.

    Picklable (plain message payload), so it crosses the pool boundary
    intact and shows up as :attr:`JobResult.exception` — chaos tests
    can tell an injected failure from a genuine compiler bug.
    """


class JobTimeoutError(RuntimeError):
    """Raised (via ``SIGALRM``) when a job exceeds its deadline budget."""


def _draw(seed: int, stream: str, key: str, attempt: int) -> float:
    """Uniform [0, 1) draw, pure in all arguments.

    SHA-256 rather than ``random.Random`` so the draw is independent of
    call order and stable across Python versions and processes.
    """
    digest = hashlib.sha256(
        f"{seed}:{stream}:{key}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative fault-injection rates (see module docstring).

    ``error_rate`` / ``crash_rate`` / ``stall_rate`` are per-attempt
    probabilities of the worker-side faults; their sum must stay ≤ 1.
    ``cache_read_corrupt_rate`` / ``cache_write_corrupt_rate`` drive
    :class:`~repro.resilience.cache.ChaosCache` entry-file corruption.
    """

    seed: int = 0
    error_rate: float = 0.0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    #: How long a stalled job sleeps; pair with a runner deadline below
    #: this value so stalls surface as ``timeout`` outcomes.
    stall_seconds: float = 2.0
    cache_read_corrupt_rate: float = 0.0
    cache_write_corrupt_rate: float = 0.0
    #: Attempts ``0 .. max_faults_per_job-1`` of a job may fault;
    #: attempts at or beyond the bound always run clean, so a retry
    #: budget of ``max_faults_per_job + 1`` guarantees success for any
    #: job the fault-free path can compile.
    max_faults_per_job: int = 1

    def __post_init__(self) -> None:
        for name in (
            "error_rate",
            "crash_rate",
            "stall_rate",
            "cache_read_corrupt_rate",
            "cache_write_corrupt_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.error_rate + self.crash_rate + self.stall_rate
        if total > 1.0:
            raise ValueError(
                f"worker fault rates sum to {total:.3f} > 1"
            )
        if self.stall_seconds <= 0:
            raise ValueError(
                f"stall_seconds must be > 0, got {self.stall_seconds}"
            )
        if self.max_faults_per_job < 0:
            raise ValueError(
                "max_faults_per_job must be >= 0, "
                f"got {self.max_faults_per_job}"
            )

    @property
    def worker_fault_rate(self) -> float:
        """Total per-attempt probability of any worker-side fault."""
        return self.error_rate + self.crash_rate + self.stall_rate

    def decide(self, key: str, attempt: int) -> str | None:
        """The worker-side fault for ``(key, attempt)``, or ``None``.

        Pure in all inputs: workers and the supervising parent call
        this independently and always agree.
        """
        if attempt >= self.max_faults_per_job:
            return None
        draw = _draw(self.seed, "worker", key, attempt)
        edge = 0.0
        for kind, rate in (
            (FAULT_ERROR, self.error_rate),
            (FAULT_CRASH, self.crash_rate),
            (FAULT_STALL, self.stall_rate),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    def corrupt_write(self, key: str) -> bool:
        """Whether the cache entry written under ``key`` gets garbled."""
        return (
            _draw(self.seed, "cache-write", key, 0)
            < self.cache_write_corrupt_rate
        )

    def corrupt_read(self, key: str, lookup: int) -> bool:
        """Whether the ``lookup``-th read of ``key`` sees a garbled file."""
        return (
            _draw(self.seed, "cache-read", key, lookup)
            < self.cache_read_corrupt_rate
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able plan document (``from_dict`` round-trips)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from a :meth:`to_dict`-shaped document."""
        return cls(**data)


#: Bundled plans (``repro load --chaos <name>``).  ``ci-smoke`` is the
#: bench-smoke CI step's plan: ≥10% of jobs hit, all fault kinds
#: represented, stalls short enough for a tight deadline budget.
CHAOS_PRESETS: dict[str, FaultPlan] = {
    "light": FaultPlan(
        seed=2022,
        error_rate=0.05,
        crash_rate=0.03,
        stall_rate=0.03,
        stall_seconds=2.0,
        cache_write_corrupt_rate=0.05,
    ),
    "heavy": FaultPlan(
        seed=2022,
        error_rate=0.15,
        crash_rate=0.10,
        stall_rate=0.05,
        stall_seconds=2.0,
        cache_read_corrupt_rate=0.10,
        cache_write_corrupt_rate=0.10,
        max_faults_per_job=2,
    ),
    # Seed chosen so the `smoke` scenario's 9 unique fingerprints draw
    # one error, one crash and one stall (decide() is pure, so this is
    # a stable property, not luck of the run).
    "ci-smoke": FaultPlan(
        seed=20220312,
        error_rate=0.10,
        crash_rate=0.08,
        stall_rate=0.08,
        stall_seconds=2.0,
        cache_write_corrupt_rate=0.10,
    ),
}


def load_fault_plan(spec: str) -> FaultPlan:
    """Resolve a chaos argument: a preset name or a JSON file path."""
    preset = CHAOS_PRESETS.get(spec)
    if preset is not None:
        return preset
    if spec.endswith(".json"):
        with open(spec, encoding="utf-8") as handle:
            return FaultPlan.from_dict(json.load(handle))
    raise ValueError(
        f"unknown fault plan {spec!r}; choose a preset "
        f"({', '.join(sorted(CHAOS_PRESETS))}) or a .json plan file"
    )
