"""Timing and noise parameters (compatibility re-export).

The parameter dataclasses moved into the machine-semantics kernel
(:mod:`repro.core.params`) so the kernel's observers can consume them
without importing the simulator layer; this module keeps the
historical import path ``repro.sim.params`` working.
"""

from ..core.params import (
    DEFAULT_PARAMS,
    MachineParams,
    NoiseParams,
    TimingParams,
)

__all__ = [
    "DEFAULT_PARAMS",
    "MachineParams",
    "NoiseParams",
    "TimingParams",
]
