"""Machine-level ops, schedules, and the QCCD heating/fidelity simulator."""

from .ops import (
    GateOp,
    MachineOp,
    MergeOp,
    MoveOp,
    ShuttleReason,
    SplitOp,
    SwapOp,
)
from .params import DEFAULT_PARAMS, MachineParams, NoiseParams, TimingParams
from .schedule import Schedule
from .simulator import SimulationError, SimulationReport, Simulator

__all__ = [
    "DEFAULT_PARAMS",
    "GateOp",
    "MachineOp",
    "MachineParams",
    "MergeOp",
    "MoveOp",
    "NoiseParams",
    "Schedule",
    "ShuttleReason",
    "SimulationError",
    "SimulationReport",
    "Simulator",
    "SplitOp",
    "SwapOp",
    "TimingParams",
]
