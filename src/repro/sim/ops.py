"""Machine-level operations (compatibility re-export).

The op vocabulary moved into the machine-semantics kernel
(:mod:`repro.core.ops`) so the kernel owns both the ops and their
application rules; this module keeps the historical import path
``repro.sim.ops`` working.  The classes are the same objects —
``repro.sim.ops.GateOp is repro.core.ops.GateOp``.
"""

from ..core.ops import (
    GateOp,
    MachineOp,
    MergeOp,
    MoveOp,
    ShuttleReason,
    SplitOp,
    SwapOp,
)

__all__ = [
    "GateOp",
    "MachineOp",
    "MergeOp",
    "MoveOp",
    "ShuttleReason",
    "SplitOp",
    "SwapOp",
]
