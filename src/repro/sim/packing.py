"""Columnar (de)serialization of machine-op streams.

Every sweep job ships a :class:`~repro.sim.schedule.Schedule` across
the worker-pool boundary and into the on-disk result cache; the
default pickle pays one object reduce per op — tens of thousands of
tiny dataclass records per schedule.  :func:`pack_ops` flattens the
stream into a handful of typed ndarrays plus small vocabularies (gate
names, shuttle reasons), and :func:`unpack_ops` reconstructs the exact
dataclass instances, so ``packed == unpacked`` op-for-op: equality,
hashing and content fingerprints (:mod:`repro.batch.fingerprint`) are
preserved.

Ops that are not exact-class kernel ops — subclasses, foreign ops, or
fields outside the int64 range — travel verbatim in an ``other`` side
list keyed by stream position.  Without numpy, :func:`pack_ops`
returns ``None`` and callers fall back to the default pickle.
"""

from __future__ import annotations

from ..core.ops import GateOp, MergeOp, MoveOp, ShuttleReason, SplitOp, SwapOp

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Op-kind codes in the packed form (order is part of the format).
_K_GATE, _K_MOVE, _K_SPLIT, _K_MERGE, _K_SWAP, _K_OTHER = range(6)

#: Format marker so a future layout change can stay loadable.
_VERSION = 1


def _fits(value) -> bool:
    return isinstance(value, int) and _INT64_MIN <= value <= _INT64_MAX


def pack_ops(ops) -> dict | None:
    """Pack an op sequence into a picklable columnar document, or
    ``None`` when numpy is unavailable."""
    if not HAVE_NUMPY:
        return None
    kinds = []
    gate_name_codes: list[int] = []
    gate_names: list[str] = []
    name_code: dict[str, int] = {}
    gate_traps: list[int] = []
    gate_qubits: list[int] = []
    gate_qcounts: list[int] = []
    gate_params: list[float] = []
    gate_pcounts: list[int] = []
    shuttle_ints: list[int] = []  # ion/src/dst | ion/trap | ion_a/ion_b/trap
    reason_codes: list[int] = []
    reasons: list[ShuttleReason] = []
    reason_code: dict[ShuttleReason, int] = {}
    merge_positions: list[int] = []
    merge_has_position: list[bool] = []
    other: list[tuple[int, object]] = []

    for index, op in enumerate(ops):
        cls = type(op)
        if cls is GateOp:
            gate = op.gate
            trap = op.trap
            if _fits(trap) and all(_fits(q) for q in gate.qubits):
                kinds.append(_K_GATE)
                code = name_code.get(gate.name)
                if code is None:
                    code = name_code[gate.name] = len(gate_names)
                    gate_names.append(gate.name)
                gate_name_codes.append(code)
                gate_traps.append(trap)
                gate_qcounts.append(len(gate.qubits))
                gate_qubits.extend(gate.qubits)
                gate_pcounts.append(len(gate.params))
                gate_params.extend(gate.params)
                continue
        elif cls is MoveOp:
            if _fits(op.ion) and _fits(op.src) and _fits(op.dst):
                kinds.append(_K_MOVE)
                shuttle_ints.extend((op.ion, op.src, op.dst))
                code = reason_code.get(op.reason)
                if code is None:
                    code = reason_code[op.reason] = len(reasons)
                    reasons.append(op.reason)
                reason_codes.append(code)
                continue
        elif cls is SplitOp:
            if _fits(op.ion) and _fits(op.trap):
                kinds.append(_K_SPLIT)
                shuttle_ints.extend((op.ion, op.trap))
                code = reason_code.get(op.reason)
                if code is None:
                    code = reason_code[op.reason] = len(reasons)
                    reasons.append(op.reason)
                reason_codes.append(code)
                continue
        elif cls is MergeOp:
            position = op.position
            if _fits(op.ion) and _fits(op.trap) and (
                position is None or _fits(position)
            ):
                kinds.append(_K_MERGE)
                shuttle_ints.extend((op.ion, op.trap))
                code = reason_code.get(op.reason)
                if code is None:
                    code = reason_code[op.reason] = len(reasons)
                    reasons.append(op.reason)
                reason_codes.append(code)
                merge_has_position.append(position is not None)
                merge_positions.append(0 if position is None else position)
                continue
        elif cls is SwapOp:
            if _fits(op.ion_a) and _fits(op.ion_b) and _fits(op.trap):
                kinds.append(_K_SWAP)
                shuttle_ints.extend((op.ion_a, op.ion_b, op.trap))
                code = reason_code.get(op.reason)
                if code is None:
                    code = reason_code[op.reason] = len(reasons)
                    reasons.append(op.reason)
                reason_codes.append(code)
                continue
        kinds.append(_K_OTHER)
        other.append((index, op))

    return {
        "version": _VERSION,
        "kinds": np.array(kinds, dtype=np.uint8),
        "gate_names": gate_names,
        "gate_name_codes": np.array(gate_name_codes, dtype=np.int32),
        "gate_traps": np.array(gate_traps, dtype=np.int64),
        "gate_qcounts": np.array(gate_qcounts, dtype=np.int16),
        "gate_qubits": np.array(gate_qubits, dtype=np.int64),
        "gate_pcounts": np.array(gate_pcounts, dtype=np.int16),
        "gate_params": np.array(gate_params, dtype=np.float64),
        "shuttle_ints": np.array(shuttle_ints, dtype=np.int64),
        "reasons": reasons,
        "reason_codes": np.array(reason_codes, dtype=np.uint8),
        "merge_positions": np.array(merge_positions, dtype=np.int64),
        "merge_has_position": np.array(merge_has_position, dtype=bool),
        "other": other,
    }


def unpack_ops(packed: dict) -> list:
    """Rebuild the exact op list from a :func:`pack_ops` document."""
    from ..circuits.gate import Gate

    kinds = packed["kinds"].tolist()
    gate_names = packed["gate_names"]
    gate_name_codes = packed["gate_name_codes"].tolist()
    gate_traps = packed["gate_traps"].tolist()
    gate_qcounts = packed["gate_qcounts"].tolist()
    gate_qubits = packed["gate_qubits"].tolist()
    gate_pcounts = packed["gate_pcounts"].tolist()
    gate_params = packed["gate_params"].tolist()
    shuttle_ints = packed["shuttle_ints"].tolist()
    reasons = packed["reasons"]
    reason_codes = packed["reason_codes"].tolist()
    merge_positions = packed["merge_positions"].tolist()
    merge_has_position = packed["merge_has_position"].tolist()
    other = dict(packed["other"])

    ops: list = []
    g = q = p = s = r = m = 0  # per-column cursors
    for index, kind in enumerate(kinds):
        if kind == _K_GATE:
            nq = gate_qcounts[g]
            npar = gate_pcounts[g]
            gate = Gate(
                gate_names[gate_name_codes[g]],
                tuple(gate_qubits[q : q + nq]),
                tuple(gate_params[p : p + npar]),
            )
            ops.append(GateOp(gate, gate_traps[g]))
            g += 1
            q += nq
            p += npar
        elif kind == _K_MOVE:
            ops.append(
                MoveOp(
                    shuttle_ints[s],
                    shuttle_ints[s + 1],
                    shuttle_ints[s + 2],
                    reasons[reason_codes[r]],
                )
            )
            s += 3
            r += 1
        elif kind == _K_SPLIT:
            ops.append(
                SplitOp(
                    shuttle_ints[s],
                    shuttle_ints[s + 1],
                    reasons[reason_codes[r]],
                )
            )
            s += 2
            r += 1
        elif kind == _K_MERGE:
            position = (
                merge_positions[m] if merge_has_position[m] else None
            )
            ops.append(
                MergeOp(
                    shuttle_ints[s],
                    shuttle_ints[s + 1],
                    reasons[reason_codes[r]],
                    position,
                )
            )
            s += 2
            r += 1
            m += 1
        elif kind == _K_SWAP:
            ops.append(
                SwapOp(
                    shuttle_ints[s],
                    shuttle_ints[s + 1],
                    shuttle_ints[s + 2],
                    reasons[reason_codes[r]],
                )
            )
            s += 3
            r += 1
        else:
            ops.append(other[index])
    return ops
