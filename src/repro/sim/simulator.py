"""QCCD machine simulator.

Replays a compiled :class:`~repro.sim.schedule.Schedule` against the
machine model, validating every instruction (a malformed schedule raises
:class:`SimulationError` rather than producing garbage numbers) and
tracking:

* per-trap ion chains (occupancy limits enforced op by op),
* per-chain motional mode ``n̄`` under the additive heating model of
  :class:`~repro.sim.params.NoiseParams` (Fig. 3's qualitative behaviour:
  splits heat the source chain, moves heat the ion in transit, merges
  deposit that transit energy plus a fixed overhead into the destination
  chain — total system heat is the sum of per-op contributions),
* per-trap clocks — gates are serial within a trap and parallel across
  traps (Section II-B1), moves synchronize the two endpoint traps,
* per-gate fidelity under ``F = 1 - Γτ - A(2n̄+1)`` accumulated in log
  space into a program fidelity (Section II-B3).

Model simplifications versus the authors' testbed are documented in
DESIGN.md §4; both compilers are evaluated under the identical model so
improvement *ratios* (Fig. 8) remain comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..arch.machine import QCCDMachine
from .ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from .params import DEFAULT_PARAMS, MachineParams
from .schedule import Schedule

#: Fidelity floor used when accumulating logs (a 0-fidelity gate would
#: otherwise produce -inf and drown every other effect).
_FIDELITY_FLOOR = 1e-12


class SimulationError(RuntimeError):
    """Raised when a schedule is not executable on the machine."""


@dataclass
class SimulationReport:
    """Outcome of simulating one schedule."""

    program_log_fidelity: float  # natural log of product of gate fidelities
    duration: float  # makespan in seconds (max trap clock)
    num_gates: int
    num_two_qubit_gates: int
    num_shuttles: int
    num_splits: int
    num_merges: int
    min_gate_fidelity: float
    max_nbar: float
    mean_gate_nbar: float
    gate_fidelities: list[float] = field(default_factory=list, repr=False)

    @property
    def program_fidelity(self) -> float:
        """Product of gate fidelities (may underflow to 0.0 for large
        circuits — use :attr:`program_log_fidelity` for comparisons)."""
        return math.exp(self.program_log_fidelity)

    @property
    def log10_fidelity(self) -> float:
        """Program fidelity exponent in base 10."""
        return self.program_log_fidelity / math.log(10.0)

    def improvement_over(self, baseline: "SimulationReport") -> float:
        """Fidelity ratio self/baseline (the Fig. 8 ``X`` metric)."""
        return math.exp(self.program_log_fidelity - baseline.program_log_fidelity)


class Simulator:
    """Validating executor for compiled schedules."""

    def __init__(
        self, machine: QCCDMachine, params: MachineParams = DEFAULT_PARAMS
    ) -> None:
        self.machine = machine
        self.params = params

    def run(
        self,
        schedule: Schedule,
        initial_chains: dict[int, list[int]],
    ) -> SimulationReport:
        """Execute a schedule starting from the given trap chains.

        ``initial_chains`` maps trap id to the ordered ion chain produced
        by the initial mapping.
        """
        state = _SimState(self.machine, initial_chains)
        timing = self.params.timing
        noise = self.params.noise

        log_fidelity = 0.0
        gate_fidelities: list[float] = []
        nbar_samples: list[float] = []
        max_nbar = 0.0
        min_fidelity = 1.0

        for position, op in enumerate(schedule):
            try:
                if isinstance(op, GateOp):
                    trap = state.traps[op.trap]
                    for qubit in op.gate.qubits:
                        if qubit not in trap.chain_set:
                            raise SimulationError(
                                f"gate {op.gate} scheduled in trap {op.trap} "
                                f"but ion {qubit} is not there"
                            )
                    tau = timing.gate_time(op.gate.num_qubits)
                    if op.gate.is_two_qubit:
                        fidelity = noise.gate_fidelity(
                            tau, trap.nbar, len(trap.chain)
                        )
                        nbar_samples.append(trap.nbar)
                    else:
                        fidelity = 1.0 - noise.one_qubit_infidelity
                    trap.clock += tau
                    trap.nbar += noise.background_heating_rate * tau
                    max_nbar = max(max_nbar, trap.nbar)
                    if noise.recool_enabled and op.gate.is_two_qubit:
                        # Sympathetic co-cooling relaxes the chain.
                        trap.nbar = noise.recool_floor + (
                            trap.nbar - noise.recool_floor
                        ) * noise.recool_decay
                    fidelity = max(fidelity, _FIDELITY_FLOOR)
                    min_fidelity = min(min_fidelity, fidelity)
                    log_fidelity += math.log(fidelity)
                    gate_fidelities.append(fidelity)

                elif isinstance(op, SplitOp):
                    trap = state.traps[op.trap]
                    if op.ion in state.transit:
                        raise SimulationError(
                            f"ion {op.ion} split while already in transit"
                        )
                    if op.ion not in trap.chain_set:
                        raise SimulationError(
                            f"ion {op.ion} split from trap {op.trap} "
                            f"but it is not there"
                        )
                    trap.remove(op.ion)
                    trap.clock += timing.split_time
                    trap.nbar += noise.split_heating
                    max_nbar = max(max_nbar, trap.nbar)
                    state.transit[op.ion] = _Transit(op.trap, 0.0)

                elif isinstance(op, MoveOp):
                    transit = state.transit.get(op.ion)
                    if transit is None:
                        raise SimulationError(
                            f"ion {op.ion} moved without a preceding split"
                        )
                    if transit.trap != op.src:
                        raise SimulationError(
                            f"ion {op.ion} moved from trap {op.src} but it "
                            f"is at trap {transit.trap}"
                        )
                    if op.dst not in set(
                        self.machine.topology.neighbors(op.src)
                    ):
                        raise SimulationError(
                            f"no shuttle path between traps {op.src} and "
                            f"{op.dst}"
                        )
                    dst_trap = state.traps[op.dst]
                    if dst_trap.excess_capacity <= 0:
                        raise SimulationError(
                            f"ion {op.ion} moved into full trap {op.dst} "
                            f"(traffic block not resolved)"
                        )
                    src_trap = state.traps[op.src]
                    start = max(src_trap.clock, dst_trap.clock)
                    src_trap.clock = start + timing.move_time
                    dst_trap.clock = start + timing.move_time
                    transit.trap = op.dst
                    transit.energy += noise.move_heating

                elif isinstance(op, MergeOp):
                    transit = state.transit.get(op.ion)
                    if transit is None:
                        raise SimulationError(
                            f"ion {op.ion} merged without a preceding split"
                        )
                    if transit.trap != op.trap:
                        raise SimulationError(
                            f"ion {op.ion} merged into trap {op.trap} but it "
                            f"is at trap {transit.trap}"
                        )
                    trap = state.traps[op.trap]
                    if trap.excess_capacity <= 0:
                        raise SimulationError(
                            f"ion {op.ion} merged into full trap {op.trap}"
                        )
                    # Additive heating model (QCCDSim behaviour, Fig. 3):
                    # the merge deposits the ion's transit energy plus a
                    # fixed merge overhead into the destination chain.
                    carried = noise.carried_energy_fraction * transit.energy
                    trap.nbar += carried + noise.merge_heating
                    trap.add(op.ion, position=op.position)
                    trap.clock += timing.merge_time
                    max_nbar = max(max_nbar, trap.nbar)
                    del state.transit[op.ion]

                elif isinstance(op, SwapOp):
                    trap = state.traps[op.trap]
                    for ion in (op.ion_a, op.ion_b):
                        if ion not in trap.chain_set:
                            raise SimulationError(
                                f"swap of ion {ion} in trap {op.trap} "
                                f"but it is not there"
                            )
                    index_a = trap.chain.index(op.ion_a)
                    index_b = trap.chain.index(op.ion_b)
                    if abs(index_a - index_b) != 1:
                        raise SimulationError(
                            f"ions {op.ion_a} and {op.ion_b} are not "
                            f"adjacent in trap {op.trap}"
                        )
                    trap.chain[index_a], trap.chain[index_b] = (
                        trap.chain[index_b],
                        trap.chain[index_a],
                    )
                    trap.clock += timing.swap_time
                    trap.nbar += noise.swap_heating
                    max_nbar = max(max_nbar, trap.nbar)

                else:  # pragma: no cover - exhaustive over MachineOp
                    raise SimulationError(f"unknown op {op!r}")
            except SimulationError as exc:
                raise SimulationError(f"op {position}: {exc}") from None

        if state.transit:
            stranded = sorted(state.transit)
            raise SimulationError(
                f"schedule ended with ions in transit: {stranded}"
            )

        schedule_stats = schedule.count_kinds()
        mean_nbar = (
            sum(nbar_samples) / len(nbar_samples) if nbar_samples else 0.0
        )
        return SimulationReport(
            program_log_fidelity=log_fidelity,
            duration=max(t.clock for t in state.traps),
            num_gates=schedule_stats.get("gate", 0),
            num_two_qubit_gates=schedule.num_two_qubit_gates,
            num_shuttles=schedule_stats.get("move", 0),
            num_splits=schedule_stats.get("split", 0),
            num_merges=schedule_stats.get("merge", 0),
            min_gate_fidelity=min_fidelity,
            max_nbar=max_nbar,
            mean_gate_nbar=mean_nbar,
            gate_fidelities=gate_fidelities,
        )


@dataclass
class _Transit:
    """An ion between split and merge: current trap and carried quanta."""

    trap: int
    energy: float


class _TrapRuntime:
    """Mutable chain/nbar/clock state for one trap during simulation."""

    def __init__(self, trap_id: int, capacity: int, chain: list[int]) -> None:
        self.trap_id = trap_id
        self.capacity = capacity
        self.chain = list(chain)
        self.chain_set = set(chain)
        self.nbar = 0.0
        self.clock = 0.0

    @property
    def excess_capacity(self) -> int:
        return self.capacity - len(self.chain)

    def add(self, ion: int, position: int | None = None) -> None:
        if position is None:
            self.chain.append(ion)
        else:
            self.chain.insert(position, ion)
        self.chain_set.add(ion)

    def remove(self, ion: int) -> None:
        self.chain.remove(ion)
        self.chain_set.discard(ion)


class _SimState:
    """Full machine state during simulation."""

    def __init__(
        self, machine: QCCDMachine, initial_chains: dict[int, list[int]]
    ) -> None:
        self.traps: list[_TrapRuntime] = []
        seen: set[int] = set()
        for spec in machine.traps:
            chain = list(initial_chains.get(spec.trap_id, []))
            if len(chain) > spec.capacity:
                raise SimulationError(
                    f"initial chain of trap {spec.trap_id} exceeds capacity"
                )
            overlap = seen.intersection(chain)
            if overlap:
                raise SimulationError(
                    f"ions {sorted(overlap)} appear in multiple traps"
                )
            seen.update(chain)
            self.traps.append(_TrapRuntime(spec.trap_id, spec.capacity, chain))
        self.transit: dict[int, _Transit] = {}
