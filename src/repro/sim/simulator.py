"""QCCD machine simulator.

Replays a compiled :class:`~repro.sim.schedule.Schedule` through the
machine-semantics kernel (:mod:`repro.core`), validating every
instruction (a malformed schedule raises :class:`SimulationError`
rather than producing garbage numbers) and tracking, via the kernel's
observers:

* per-trap ion chains (occupancy limits enforced op by op by
  :class:`~repro.core.state.MachineState`),
* per-chain motional mode ``n̄`` under the additive heating model of
  :class:`~repro.sim.params.NoiseParams` (Fig. 3's qualitative behaviour:
  splits heat the source chain, moves heat the ion in transit, merges
  deposit that transit energy plus a fixed overhead into the destination
  chain — total system heat is the sum of per-op contributions) —
  :class:`~repro.core.observers.HeatingObserver`,
* per-trap clocks — gates are serial within a trap and parallel across
  traps (Section II-B1), moves synchronize the two endpoint traps —
  :class:`~repro.core.observers.ClockObserver`,
* per-gate fidelity under ``F = 1 - Γτ - A(2n̄+1)`` accumulated in log
  space into a program fidelity (Section II-B3).

The legality rules live in the kernel, shared verbatim with the
schedule verifier (:mod:`repro.passes.verify`) and the compiler's
forward state — the three layers cannot drift apart.

Model simplifications versus the authors' testbed are documented in
DESIGN.md §4; both compilers are evaluated under the identical model so
improvement *ratios* (Fig. 8) remain comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..arch.machine import QCCDMachine
from ..core.errors import MachineModelError
from ..core.observers import FIDELITY_FLOOR, ClockObserver, HeatingObserver
from ..core.replay import replay_into
from ..core.state import MachineState
from ..core.vector import batched_replay, vector_kernel_enabled
from .params import DEFAULT_PARAMS, MachineParams
from .schedule import Schedule

#: Backwards-compatible alias (the floor moved to the kernel observers).
_FIDELITY_FLOOR = FIDELITY_FLOOR


class SimulationError(MachineModelError):
    """Raised when a schedule is not executable on the machine."""


@dataclass
class SimulationReport:
    """Outcome of simulating one schedule."""

    program_log_fidelity: float  # natural log of product of gate fidelities
    duration: float  # makespan in seconds (max trap clock)
    num_gates: int
    num_two_qubit_gates: int
    num_shuttles: int
    num_splits: int
    num_merges: int
    min_gate_fidelity: float
    max_nbar: float
    mean_gate_nbar: float
    gate_fidelities: list[float] = field(default_factory=list, repr=False)

    @property
    def program_fidelity(self) -> float:
        """Product of gate fidelities (may underflow to 0.0 for large
        circuits — use :attr:`program_log_fidelity` for comparisons)."""
        return math.exp(self.program_log_fidelity)

    @property
    def log10_fidelity(self) -> float:
        """Program fidelity exponent in base 10."""
        return self.program_log_fidelity / math.log(10.0)

    def improvement_over(self, baseline: "SimulationReport") -> float:
        """Fidelity ratio self/baseline (the Fig. 8 ``X`` metric)."""
        return math.exp(self.program_log_fidelity - baseline.program_log_fidelity)


class Simulator:
    """Validating executor for compiled schedules."""

    def __init__(
        self,
        machine: QCCDMachine,
        params: MachineParams = DEFAULT_PARAMS,
        use_vector_kernel: bool | None = None,
    ) -> None:
        self.machine = machine
        self.params = params
        #: Replay through the batched numpy kernel (default: on when
        #: numpy is importable; see repro.core.vector).  Results are
        #: bit-identical either way — the golden suite pins this.
        self.use_vector_kernel = vector_kernel_enabled(use_vector_kernel)

    def run(
        self,
        schedule: Schedule,
        initial_chains: dict[int, list[int]],
    ) -> SimulationReport:
        """Execute a schedule starting from the given trap chains.

        ``initial_chains`` maps trap id to the ordered ion chain produced
        by the initial mapping.
        """
        clock = ClockObserver(self.machine.num_traps, self.params.timing)
        heat = HeatingObserver(self.machine.num_traps, self.params)
        try:
            if self.use_vector_kernel:
                batched_replay(
                    self.machine, schedule, initial_chains, (clock, heat)
                )
            else:
                state = MachineState(self.machine, initial_chains)
                replay_into(state, schedule, (clock, heat))
                state.require_settled()
        except MachineModelError as exc:
            raise SimulationError(str(exc)) from None

        schedule_stats = schedule.count_kinds()
        return SimulationReport(
            program_log_fidelity=heat.log_fidelity,
            duration=clock.makespan,
            num_gates=schedule_stats.get("gate", 0),
            num_two_qubit_gates=schedule.num_two_qubit_gates,
            num_shuttles=schedule_stats.get("move", 0),
            num_splits=schedule_stats.get("split", 0),
            num_merges=schedule_stats.get("merge", 0),
            min_gate_fidelity=heat.min_gate_fidelity,
            max_nbar=heat.max_nbar,
            mean_gate_nbar=heat.mean_gate_nbar,
            gate_fidelities=heat.gate_fidelities,
        )


@dataclass
class _Transit:
    """An ion between split and merge: current trap and carried quanta.

    Retained for callers that hand-replay op streams against
    :class:`_SimState`; the simulator itself now tracks transit inside
    the kernel (:class:`~repro.core.state.MachineState`)."""

    trap: int
    energy: float


class _TrapRuntime:
    """Mutable chain state for one trap (compatibility container).

    The simulator no longer uses this internally — the kernel holds
    the live state — but external replay harnesses (and older tests)
    still build these via :class:`_SimState`."""

    def __init__(self, trap_id: int, capacity: int, chain: list[int]) -> None:
        self.trap_id = trap_id
        self.capacity = capacity
        self.chain = list(chain)
        self.chain_set = set(chain)
        self.nbar = 0.0
        self.clock = 0.0

    @property
    def excess_capacity(self) -> int:
        return self.capacity - len(self.chain)

    def add(self, ion: int, position: int | None = None) -> None:
        if position is None:
            self.chain.append(ion)
        else:
            self.chain.insert(position, ion)
        self.chain_set.add(ion)

    def remove(self, ion: int) -> None:
        self.chain.remove(ion)
        self.chain_set.discard(ion)


class _SimState:
    """Full machine state snapshot (compatibility container).

    Initial-chain validation delegates to the kernel; the mutable
    per-trap containers remain for hand-rolled replays."""

    def __init__(
        self, machine: QCCDMachine, initial_chains: dict[int, list[int]]
    ) -> None:
        try:
            MachineState(machine, initial_chains)
        except MachineModelError as exc:
            raise SimulationError(str(exc)) from None
        self.traps: list[_TrapRuntime] = [
            _TrapRuntime(
                spec.trap_id,
                spec.capacity,
                list(initial_chains.get(spec.trap_id, [])),
            )
            for spec in machine.traps
        ]
        self.transit: dict[int, _Transit] = {}
