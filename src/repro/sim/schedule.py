"""Compiled machine schedule.

The compiler's output: an ordered stream of machine ops plus summary
statistics.  The schedule is the contract between compiler and
simulator — the simulator validates it instruction by instruction, so a
buggy compiler cannot silently produce an inexecutable program.

Op-kind statistics (``num_shuttles`` et al.) are maintained
incrementally: the first query counts the stream once, every later
``append``/``extend`` updates the tally, so the compiler's router —
which brackets each route with two ``num_shuttles`` reads — pays O(1)
instead of re-scanning an ever-growing stream.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from .ops import GateOp, MachineOp, MergeOp, MoveOp, SplitOp, SwapOp

#: Exact-class -> kind discriminator (fallback: the op's own property).
_KIND_OF = {
    GateOp: "gate",
    SplitOp: "split",
    MoveOp: "move",
    MergeOp: "merge",
    SwapOp: "swap",
}


class Schedule:
    """Ordered machine-op stream produced by compilation."""

    def __init__(self, ops: Iterable[MachineOp] = ()) -> None:
        self._ops: list[MachineOp] = list(ops)
        #: Lazy kind tally (None until first statistics query).
        self._kind_counts: dict[str, int] | None = None
        #: Cached content hash (None until first hash, reset on mutation).
        self._hash: int | None = None
        #: Cached columnar form for the vectorized replay kernel
        #: (populated by repro.core.vector.compile_stream on first
        #: batched replay; reset on mutation so simulate/verify/pass
        #: replays of the same schedule share one compilation).
        self._compiled_stream = None

    def append(self, op: MachineOp) -> None:
        """Append one machine op."""
        self._ops.append(op)
        self._hash = None
        self._compiled_stream = None
        counts = self._kind_counts
        if counts is not None:
            kind = _KIND_OF.get(type(op)) or op.kind
            counts[kind] = counts.get(kind, 0) + 1

    def extend(self, ops: Iterable[MachineOp]) -> None:
        """Append several machine ops."""
        self._hash = None
        self._compiled_stream = None
        if self._kind_counts is None:
            self._ops.extend(ops)
            return
        for op in ops:
            self.append(op)

    def spliced(
        self,
        start: int,
        end: int,
        replacement: Iterable[MachineOp] = (),
    ) -> "Schedule":
        """New schedule with ``ops[start:end]`` replaced.

        This is the cheap construction path for splice rewrites (the
        incremental verification engine's edit shape): the op list is
        built by slicing, and — when this schedule's kind tally exists —
        the new tally is *derived* in O(window) from the old one
        instead of re-counting the whole stream on the next statistics
        query.
        """
        replacement = list(replacement)
        out = Schedule.__new__(Schedule)
        out._ops = self._ops[:start] + replacement + self._ops[end:]
        out._hash = None
        out._compiled_stream = None
        counts = self._kind_counts
        if counts is None:
            out._kind_counts = None
        else:
            counts = dict(counts)
            kind_of = _KIND_OF
            for op in self._ops[start:end]:
                kind = kind_of.get(type(op)) or op.kind
                counts[kind] -= 1
            for op in replacement:
                kind = kind_of.get(type(op)) or op.kind
                counts[kind] = counts.get(kind, 0) + 1
            out._kind_counts = counts
        return out

    def _counts(self) -> dict[str, int]:
        """The kind tally, built on first use."""
        counts = self._kind_counts
        if counts is None:
            counts = {}
            kind_of = _KIND_OF
            for cls, n in Counter(map(type, self._ops)).items():
                kind = kind_of.get(cls)
                if kind is None:  # subclassed op: fall back to .kind
                    continue
                counts[kind] = counts.get(kind, 0) + n
            tallied = sum(counts.values())
            if tallied != len(self._ops):
                for op in self._ops:
                    if type(op) not in kind_of:
                        kind = op.kind
                        counts[kind] = counts.get(kind, 0) + 1
            self._kind_counts = counts
        return counts

    @property
    def ops(self) -> tuple[MachineOp, ...]:
        """The op stream as an immutable tuple."""
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[MachineOp]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> MachineOp:
        return self._ops[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        """Content hash consistent with ``__eq__`` (all ops are frozen
        dataclasses).  Defining ``__eq__`` alone would set ``__hash__``
        to None and silently make schedules unusable as dict/set keys —
        which result caches and memo tables rely on.  The hash is
        computed once and cached (dict lookups used to re-hash the full
        op stream every probe); ``append``/``extend``/``spliced``
        invalidate or bypass the cache, so a mutated schedule re-hashes
        correctly instead of lying about its content."""
        if self._hash is None:
            self._hash = hash(tuple(self._ops))
        return self._hash

    # ------------------------------------------------------------------
    # Pickling (the batch pool / result cache round-trip)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle the op stream in packed columnar form when numpy is
        available (see :mod:`repro.sim.packing`): schedules cross the
        worker-pool boundary and land in the result cache on every
        sweep job, and packing replaces tens of thousands of per-op
        dataclass reduces with a handful of ndarrays.  Caches (hash,
        kind tally survives; compiled stream does not) are rebuilt on
        demand after unpickling."""
        from .packing import pack_ops

        packed = pack_ops(self._ops)
        if packed is None:
            return {"_ops": self._ops, "_kind_counts": self._kind_counts}
        return {"_packed": packed, "_kind_counts": self._kind_counts}

    def __setstate__(self, state: dict) -> None:
        packed = state.get("_packed")
        if packed is not None:
            from .packing import unpack_ops

            self._ops = unpack_ops(packed)
        else:
            self._ops = state["_ops"]
        self._kind_counts = state.get("_kind_counts")
        self._hash = None
        self._compiled_stream = None

    # ------------------------------------------------------------------
    # Statistics (the quantities the paper reports)
    # ------------------------------------------------------------------
    @property
    def num_shuttles(self) -> int:
        """Number of shuttles = number of MoveOps (Table II metric)."""
        return self._counts().get("move", 0)

    @property
    def num_gates(self) -> int:
        """Number of executed gates."""
        return self._counts().get("gate", 0)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of executed two-qubit gates."""
        return sum(
            1
            for op in self._ops
            if isinstance(op, GateOp) and op.gate.is_two_qubit
        )

    @property
    def num_splits(self) -> int:
        """Number of SplitOps."""
        return self._counts().get("split", 0)

    @property
    def num_merges(self) -> int:
        """Number of MergeOps."""
        return self._counts().get("merge", 0)

    @property
    def num_swaps(self) -> int:
        """Number of in-chain SwapOps (chain-order tracking only)."""
        return self._counts().get("swap", 0)

    def shuttles_by_reason(self) -> Counter:
        """Shuttle counts attributed to gate routing vs re-balancing."""
        counts: Counter = Counter()
        for op in self._ops:
            if isinstance(op, MoveOp):
                counts[op.reason] += 1
        return counts

    @property
    def shuttle_to_gate_ratio(self) -> float:
        """Shuttles per two-qubit gate (Section IV-C's predictor of
        fidelity improvement)."""
        gates = self.num_two_qubit_gates
        return self.num_shuttles / gates if gates else 0.0

    def count_kinds(self) -> Counter:
        """Histogram over op kinds (gate/split/move/merge)."""
        return Counter(
            {kind: n for kind, n in self._counts().items() if n}
        )

    def gate_ops(self) -> list[GateOp]:
        """All GateOps in order."""
        return [op for op in self._ops if isinstance(op, GateOp)]

    def __repr__(self) -> str:
        kinds = self.count_kinds()
        return (
            f"Schedule(gates={kinds.get('gate', 0)}, "
            f"shuttles={kinds.get('move', 0)}, "
            f"splits={kinds.get('split', 0)}, merges={kinds.get('merge', 0)})"
        )
