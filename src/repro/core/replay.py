"""Kernel replay: apply a schedule op by op, notifying observers.

This is the one replay loop under the simulator, the schedule
verifier, and the pass manager's verify-and-revert fast path.  A full
legality check costs one linear scan; attaching observers folds what
used to be *additional* full replays (timing, heating/fidelity,
occupancy tracing) into the same scan.

:class:`CheckpointedReplay` is the incremental layer on top: it
replays a schedule once, records state checkpoints every K ops
(K auto-tuned to √N), and can then verify any *rewritten* schedule
that shares a prefix/suffix with the original by restoring the nearest
checkpoint before the first divergent op and replaying only the
divergent window — the speculative-rewrite verification of the pass
pipeline drops from O(schedule) to O(window) per candidate.  See
DESIGN.md §7.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections.abc import Iterable, Sequence
from math import isqrt
from time import perf_counter

from ..arch.machine import QCCDMachine
from ..obs import active as _obs_active
from .errors import MachineModelError
from .state import MachineState


def replay(
    machine: QCCDMachine,
    ops: Iterable,
    initial_chains: dict[int, list[int]],
    observers: tuple = (),
    require_settled: bool = True,
) -> MachineState:
    """Replay ``ops`` from ``initial_chains``; returns the final state.

    Raises :class:`~repro.core.errors.MachineModelError` on the first
    illegal op, with the offending stream position prefixed as
    ``"op {index}: ..."`` (initial-chain violations carry no prefix).
    With ``require_settled`` (the default) a schedule that leaves ions
    in transit is also rejected.

    ``observers`` are notified *after* each op is applied; a rejected
    op reaches no observer, so observer state is always consistent
    with the machine state on error.
    """
    state = MachineState(machine, initial_chains)
    replay_into(state, ops, observers)
    if require_settled:
        state.require_settled()
    return state


def replay_into(
    state: MachineState, ops: Iterable, observers: tuple = ()
) -> MachineState:
    """Replay ``ops`` onto an existing state (no strandedness check)."""
    apply = state.apply
    position = -1
    try:
        if not observers:
            for position, op in enumerate(ops):
                apply(op)
        elif len(observers) == 2:
            # The simulator's clock+heating pair is the common case;
            # unrolling skips an inner loop per op.
            first, second = observers
            first_observe, second_observe = first.observe, second.observe
            for position, op in enumerate(ops):
                apply(op)
                first_observe(position, op, state)
                second_observe(position, op, state)
        else:
            for position, op in enumerate(ops):
                apply(op)
                for observer in observers:
                    observer.observe(position, op, state)
    except MachineModelError as exc:
        raise MachineModelError(f"op {position}: {exc}") from None
    return state


def is_applicable(
    machine: QCCDMachine,
    ops: Iterable,
    initial_chains: dict[int, list[int]],
) -> bool:
    """Boolean form of :func:`replay` (the pass accept oracle)."""
    try:
        replay(machine, ops, initial_chains)
    except MachineModelError:
        return False
    return True


class SpliceVerdict:
    """Outcome of one incremental splice verification.

    ``ok``/``error`` mirror what a fresh full replay of the rewritten
    stream would report (``error`` indices are positions in the
    *rewritten* stream, exactly as :func:`replay` would prefix them).
    ``rejoin`` is the base-stream index from which the suffix was
    proven identical and skipped (``None`` when the candidate was
    replayed to its end).  ``final_chains`` is only present on legal
    candidates.  The verdict carries everything :meth:`CheckpointedReplay.commit`
    needs to splice the edit in without another replay.
    """

    __slots__ = (
        "ok",
        "error",
        "start",
        "end",
        "replacement",
        "rejoin",
        "final_chains",
        "_fresh_checkpoints",
    )

    def __init__(
        self,
        ok: bool,
        start: int,
        end: int,
        replacement: Sequence,
        error: str | None = None,
        rejoin: int | None = None,
        final_chains: dict[int, list[int]] | None = None,
        fresh_checkpoints=None,
    ) -> None:
        self.ok = ok
        self.error = error
        self.start = start
        self.end = end
        self.replacement = replacement
        self.rejoin = rejoin
        self.final_chains = final_chains
        self._fresh_checkpoints = fresh_checkpoints

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.ok else f"illegal ({self.error})"
        return (
            f"SpliceVerdict([{self.start}:{self.end}) -> "
            f"{len(self.replacement)} ops, {status}, rejoin={self.rejoin})"
        )


class CheckpointedReplay:
    """Incremental schedule verification via checkpointed replay.

    The engine replays ``ops`` once at construction (raising
    :class:`~repro.core.errors.MachineModelError` exactly as
    :func:`replay` would if the base stream is illegal), recording a
    :class:`~repro.core.state.Checkpoint` every ``interval`` ops —
    auto-tuned to √N, balancing restore cost against checkpoint count.

    A *candidate* rewrite is described as a splice
    ``(start, end, replacement)``: the rewritten stream is
    ``ops[:start] + replacement + ops[end:]``.  :meth:`verify_splice`
    computes the verdict a fresh full replay would reach, in
    O(window + √N) in the common case:

    * the prefix is skipped by restoring the nearest checkpoint at or
      before ``start`` and replaying only ``[checkpoint, start)``,
    * the replacement window is replayed op by op,
    * the suffix is skipped entirely when the machine state after the
      window *matches* the base state entering ``ops[end:]`` — replaying
      identical ops from identical state is deterministic, so legality
      and the final chains are inherited from the base replay.  When
      the states differ the suffix is replayed, but the scan still
      exits early as soon as the state re-converges with a stored
      checkpoint (falling back to a full scan only when it never does).

    Accepted rewrites are installed with :meth:`commit`, which splices
    the op list, re-indexes the still-valid checkpoints, and keeps the
    engine ready for the next candidate — so a verify-and-revert loop
    pays O(window) per candidate instead of O(schedule).

    With ``observers`` attached, checkpoints additionally carry
    observer snapshots and :meth:`replay_splice` re-scores a candidate
    on a single scan from the nearest checkpoint: the observers are
    ``resume()``-d to the checkpoint's exact floats and driven over the
    rewritten remainder, yielding aggregates bit-identical to a fresh
    full replay (same accumulation order, same prefix floats).  Suffix
    skipping does not apply there — observer totals depend on the whole
    stream — but prefix reuse alone converts the pass manager's
    fidelity guard from one full replay per pass to one tail scan.
    """

    __slots__ = (
        "machine",
        "initial_chains",
        "observers",
        "interval",
        "_ops",
        "_cp_indices",
        "_cp_data",
        "_scratch",
        "_probe",
        "_final_chains",
    )

    def __init__(
        self,
        machine: QCCDMachine,
        ops: Iterable,
        initial_chains: dict[int, list[int]],
        observers: tuple = (),
        interval: int | None = None,
        use_vector_kernel: bool | None = None,
    ) -> None:
        self.machine = machine
        self.initial_chains = {
            trap: list(chain) for trap, chain in initial_chains.items()
        }
        self.observers = tuple(observers)
        self._ops = list(ops)
        n = len(self._ops)
        if interval is None:
            interval = max(16, isqrt(n))
        self.interval = max(1, interval)

        # The construction replay — the engine's only O(N) scan — runs
        # on the vectorized kernel when enabled: one whole-stream array
        # check, then an unchecked drain chunked at checkpoint
        # boundaries.  Splice scans stay scalar: they are O(window + √N)
        # by design.  A flagged check (illegal base, unsupported op
        # shapes) drops to the scalar loop, which raises the exact
        # "op N:" error.
        from .vector import (
            check_stream,
            compile_stream,
            drain_stream,
            split_observers,
            supports_observers,
            vector_kernel_enabled,
        )

        state = MachineState(machine, initial_chains)
        self._scratch = state.fork()
        self._probe = state.fork()
        self._cp_indices: list[int] = [0]
        self._cp_data: list[tuple] = [
            (state.checkpoint(), self._observer_snapshots())
        ]
        use_vector = False
        if vector_kernel_enabled(use_vector_kernel) and supports_observers(
            self.observers
        ):
            # Compile via the source object when it carries the
            # compiled-stream cache slot (Schedule does): the pass
            # pipeline re-verifies the same schedule repeatedly, and
            # every engine then shares one columnar compilation.
            source = ops if hasattr(ops, "_compiled_stream") else self._ops
            stream = compile_stream(source)
            use_vector = check_stream(state, stream, 0, n)
        if use_vector:
            clock, heat = split_observers(self.observers)
            position = 0
            while position < n:
                stop = min(position + self.interval, n)
                drain_stream(state, stream, position, stop, clock, heat)
                position = stop
                if position < n:
                    self._cp_indices.append(position)
                    self._cp_data.append(
                        (state.checkpoint(), self._observer_snapshots())
                    )
        else:
            position = -1
            try:
                for position, op in enumerate(self._ops):
                    state.apply(op)
                    for observer in self.observers:
                        observer.observe(position, op, state)
                    if (
                        (position + 1) % self.interval == 0
                        and position + 1 < n
                    ):
                        self._cp_indices.append(position + 1)
                        self._cp_data.append(
                            (state.checkpoint(), self._observer_snapshots())
                        )
            except MachineModelError as exc:
                raise MachineModelError(f"op {position}: {exc}") from None
        state.require_settled()
        self._final_chains = state.chains_dict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ops(self) -> list:
        """The current (base) op stream.  Treat as read-only: all edits
        must go through :meth:`commit` so checkpoints stay consistent."""
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def final_chains(self) -> dict[int, list[int]]:
        """Final per-trap chains of the current base stream (copy)."""
        return {t: list(c) for t, c in self._final_chains.items()}

    @property
    def num_checkpoints(self) -> int:
        return len(self._cp_indices)

    def state_at(self, index: int) -> MachineState:
        """Fresh machine state after ``ops[:index]`` (an independent
        fork; mutating it does not touch the engine)."""
        self._restore_base(self._probe, index)
        return self._probe.fork()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _observer_snapshots(self) -> tuple:
        return tuple(obs.snapshot() for obs in self.observers)

    def _restore_base(self, state: MachineState, index: int) -> None:
        """Set ``state`` to the base state after ``ops[:index]``,
        restoring the nearest checkpoint and replaying the gap.  Long
        gaps self-heal: fresh checkpoints are recorded every
        ``interval`` ops along the way (observer-free engines only —
        observer snapshots cannot be reconstructed without an observer
        replay, and observer-carrying engines never develop gaps: their
        commits install freshly recorded checkpoints)."""
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc("replay.checkpoint_restores")
        cp_pos = bisect_right(self._cp_indices, index) - 1
        cp_index = self._cp_indices[cp_pos]
        state.restore(self._cp_data[cp_pos][0])
        if cp_index == index:
            return
        ops = self._ops
        heal = not self.observers
        interval = self.interval
        apply = state.apply
        for position in range(cp_index, index):
            apply(ops[position])  # base stream: never raises
            here = position + 1
            if (
                heal
                and here < index
                and here % interval == 0
                and self._cp_indices[
                    bisect_right(self._cp_indices, here) - 1
                ]
                != here
            ):
                insort(self._cp_indices, here)
                self._cp_data.insert(
                    bisect_right(self._cp_indices, here) - 1,
                    (state.checkpoint(), ()),
                )

    # ------------------------------------------------------------------
    # Incremental verification
    # ------------------------------------------------------------------
    def verify_splice(
        self, start: int, end: int, replacement: Sequence
    ) -> SpliceVerdict:
        """Legality verdict for ``ops[:start] + replacement + ops[end:]``.

        The verdict (accept/reject, error message, final chains) is
        identical to a fresh :func:`replay` of the rewritten stream —
        proven property-test-wise against random splices — but costs
        O(window + √N) when the rewrite's effect stays local, and never
        more than one linear scan when it does not.
        """
        obs = _obs_active()
        if obs is None:
            return self._verify_splice(start, end, replacement)
        t_verify = perf_counter()
        verdict = self._verify_splice(start, end, replacement)
        obs.spans.add("verify-splice", perf_counter() - t_verify)
        self._observe_verdict(obs, verdict, scored=False)
        return verdict

    def _observe_verdict(
        self, obs, verdict: SpliceVerdict, scored: bool
    ) -> None:
        metrics = obs.metrics
        metrics.inc("replay.splice_verifies")
        metrics.observe(
            "replay.window_ops", len(verdict.replacement)
        )
        if scored:
            mode = "scored"
            metrics.inc("replay.scored_splices")
        elif verdict.rejoin == verdict.end:
            mode = "rejoin"
            metrics.inc("replay.suffix_rejoins")
        elif verdict.rejoin is not None:
            mode = "reconverged"
            metrics.inc("replay.suffix_rejoins")
        else:
            mode = "replayed"
            metrics.inc("replay.suffix_replays")
        if obs.trace is not None:
            obs.trace.emit(
                "splice_verify",
                start=verdict.start,
                end=verdict.end,
                window=len(verdict.replacement),
                ok=verdict.ok,
                mode=mode,
                rejoin=verdict.rejoin,
            )

    def _verify_splice(
        self, start: int, end: int, replacement: Sequence
    ) -> SpliceVerdict:
        ops = self._ops
        n = len(ops)
        if not 0 <= start <= end <= n:
            raise ValueError(f"splice [{start}:{end}) out of range 0..{n}")
        delta = len(replacement) - (end - start)

        scratch = self._scratch
        self._restore_base(scratch, start)
        position = start - 1
        try:
            for position, op in enumerate(replacement, start):
                scratch.apply(op)
        except MachineModelError as exc:
            return SpliceVerdict(
                False, start, end, replacement,
                error=f"op {position}: {exc}",
            )

        if end == n:
            return self._finish_at_end(start, end, replacement, scratch)

        # Rejoin probe: does the window leave the machine exactly where
        # the base stream was when it entered ops[end:]?
        self._restore_base(self._probe, end)
        if scratch.matches(self._probe):
            return SpliceVerdict(
                True, start, end, replacement,
                rejoin=end, final_chains=self.final_chains,
            )

        # Divergent suffix: replay it, exiting early the moment the
        # state re-converges with a stored base checkpoint.
        cp_indices = self._cp_indices
        cp_data = self._cp_data
        cp_pos = bisect_right(cp_indices, end)
        next_cp = cp_indices[cp_pos] if cp_pos < len(cp_indices) else -1
        apply = scratch.apply
        position = end - 1
        try:
            for position in range(end, n):
                if position == next_cp:
                    if scratch.matches(cp_data[cp_pos][0]):
                        return SpliceVerdict(
                            True, start, end, replacement,
                            rejoin=position,
                            final_chains=self.final_chains,
                        )
                    cp_pos += 1
                    next_cp = (
                        cp_indices[cp_pos]
                        if cp_pos < len(cp_indices)
                        else -1
                    )
                apply(ops[position])
        except MachineModelError as exc:
            return SpliceVerdict(
                False, start, end, replacement,
                error=f"op {position + delta}: {exc}",
            )
        return self._finish_at_end(start, end, replacement, scratch)

    def _finish_at_end(
        self, start: int, end: int, replacement: Sequence,
        scratch: MachineState,
    ) -> SpliceVerdict:
        """Settledness check + verdict for a candidate replayed to its
        final op."""
        try:
            scratch.require_settled()
        except MachineModelError as exc:
            return SpliceVerdict(
                False, start, end, replacement, error=str(exc)
            )
        return SpliceVerdict(
            True, start, end, replacement,
            final_chains=scratch.chains_dict(),
        )

    def replay_splice(
        self, start: int, end: int, replacement: Sequence
    ) -> SpliceVerdict:
        """Observer-scoring scan of the rewritten stream.

        Restores the nearest checkpoint (machine state *and* observer
        snapshots) at or before ``start`` and replays the rewritten
        remainder with the engine's observers attached; afterwards each
        observer holds aggregates bit-identical to a fresh full replay
        of the candidate.  Fresh checkpoints are recorded along the
        scan and travel with the verdict, so :meth:`commit` can install
        an accepted candidate without replaying anything again.
        """
        obs = _obs_active()
        if obs is None:
            return self._replay_splice(start, end, replacement)
        t_replay = perf_counter()
        verdict = self._replay_splice(start, end, replacement)
        obs.spans.add("replay-splice", perf_counter() - t_replay)
        self._observe_verdict(obs, verdict, scored=True)
        return verdict

    def _replay_splice(
        self, start: int, end: int, replacement: Sequence
    ) -> SpliceVerdict:
        ops = self._ops
        n = len(ops)
        if not 0 <= start <= end <= n:
            raise ValueError(f"splice [{start}:{end}) out of range 0..{n}")
        delta = len(replacement) - (end - start)

        cp_pos = bisect_right(self._cp_indices, start) - 1
        cp_index = self._cp_indices[cp_pos]
        checkpoint, snapshots = self._cp_data[cp_pos]
        scratch = self._scratch
        scratch.restore(checkpoint)
        observers = self.observers
        for observer, snapshot in zip(observers, snapshots):
            observer.resume(snapshot)

        interval = self.interval
        fresh: list[tuple[int, tuple]] = []
        candidate_length = n + delta
        apply = scratch.apply

        def segments():
            # (candidate index, op) across prefix gap, window, suffix.
            for position in range(cp_index, start):
                yield position, ops[position]
            for offset, op in enumerate(replacement):
                yield start + offset, op
            for position in range(end, n):
                yield position + delta, ops[position]

        last_cp = cp_index
        position = cp_index - 1
        try:
            for position, op in segments():
                apply(op)
                for observer in observers:
                    observer.observe(position, op, scratch)
                here = position + 1
                if (
                    here - last_cp >= interval
                    and here > start
                    and here < candidate_length
                ):
                    fresh.append(
                        (here, (scratch.checkpoint(),
                                self._observer_snapshots()))
                    )
                    last_cp = here
        except MachineModelError as exc:
            return SpliceVerdict(
                False, start, end, replacement,
                error=f"op {position}: {exc}",
            )
        try:
            scratch.require_settled()
        except MachineModelError as exc:
            return SpliceVerdict(
                False, start, end, replacement, error=str(exc)
            )
        return SpliceVerdict(
            True, start, end, replacement,
            final_chains=scratch.chains_dict(),
            fresh_checkpoints=fresh,
        )

    # ------------------------------------------------------------------
    # Committing accepted rewrites
    # ------------------------------------------------------------------
    def commit(self, verdict: SpliceVerdict) -> None:
        """Install an accepted splice: the op list is edited in place
        and checkpoints are re-indexed — still-valid ones are kept
        (prefix checkpoints verbatim; post-rejoin checkpoints shifted,
        since the suffix states were proven identical), invalidated
        ones dropped and later self-healed on demand."""
        if not verdict.ok:
            raise ValueError(f"cannot commit a rejected splice: {verdict!r}")
        start, end = verdict.start, verdict.end
        replacement = list(verdict.replacement)
        delta = len(replacement) - (end - start)
        self._ops[start:end] = replacement

        keep = bisect_right(self._cp_indices, start)
        indices = self._cp_indices[:keep]
        data = self._cp_data[:keep]
        if verdict._fresh_checkpoints is not None:
            for index, payload in verdict._fresh_checkpoints:
                if index > start:
                    indices.append(index)
                    data.append(payload)
        elif verdict.rejoin is not None and not self.observers:
            shift_from = bisect_right(self._cp_indices, verdict.rejoin - 1)
            for pos in range(shift_from, len(self._cp_indices)):
                shifted = self._cp_indices[pos] + delta
                if shifted > start:
                    indices.append(shifted)
                    data.append(self._cp_data[pos])
        self._cp_indices = indices
        self._cp_data = data

        if verdict.rejoin is None:
            self._final_chains = {
                t: list(c) for t, c in verdict.final_chains.items()
            }
