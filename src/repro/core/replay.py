"""Kernel replay: apply a schedule op by op, notifying observers.

This is the one replay loop under the simulator, the schedule
verifier, and the pass manager's verify-and-revert fast path.  A full
legality check costs one linear scan; attaching observers folds what
used to be *additional* full replays (timing, heating/fidelity,
occupancy tracing) into the same scan.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..arch.machine import QCCDMachine
from .errors import MachineModelError
from .state import MachineState


def replay(
    machine: QCCDMachine,
    ops: Iterable,
    initial_chains: dict[int, list[int]],
    observers: tuple = (),
    require_settled: bool = True,
) -> MachineState:
    """Replay ``ops`` from ``initial_chains``; returns the final state.

    Raises :class:`~repro.core.errors.MachineModelError` on the first
    illegal op, with the offending stream position prefixed as
    ``"op {index}: ..."`` (initial-chain violations carry no prefix).
    With ``require_settled`` (the default) a schedule that leaves ions
    in transit is also rejected.

    ``observers`` are notified *after* each op is applied; a rejected
    op reaches no observer, so observer state is always consistent
    with the machine state on error.
    """
    state = MachineState(machine, initial_chains)
    replay_into(state, ops, observers)
    if require_settled:
        state.require_settled()
    return state


def replay_into(
    state: MachineState, ops: Iterable, observers: tuple = ()
) -> MachineState:
    """Replay ``ops`` onto an existing state (no strandedness check)."""
    apply = state.apply
    position = -1
    try:
        if not observers:
            for position, op in enumerate(ops):
                apply(op)
        elif len(observers) == 2:
            # The simulator's clock+heating pair is the common case;
            # unrolling skips an inner loop per op.
            first, second = observers
            first_observe, second_observe = first.observe, second.observe
            for position, op in enumerate(ops):
                apply(op)
                first_observe(position, op, state)
                second_observe(position, op, state)
        else:
            for position, op in enumerate(ops):
                apply(op)
                for observer in observers:
                    observer.observe(position, op, state)
    except MachineModelError as exc:
        raise MachineModelError(f"op {position}: {exc}") from None
    return state


def is_applicable(
    machine: QCCDMachine,
    ops: Iterable,
    initial_chains: dict[int, list[int]],
) -> bool:
    """Boolean form of :func:`replay` (the pass accept oracle)."""
    try:
        replay(machine, ops, initial_chains)
    except MachineModelError:
        return False
    return True
