"""Shared error hierarchy of the machine-semantics kernel.

Every layer that applies machine ops — compiler, simulator, verifier,
passes — reports rule violations through exceptions derived from
:class:`MachineModelError`, so callers that do not care *which* layer
rejected a program can catch the single base class:

* :class:`~repro.compiler.state.CompilationError`,
* :class:`~repro.sim.simulator.SimulationError`,
* :class:`~repro.passes.verify.VerificationError`

all subclass it.  The kernel itself (:mod:`repro.core.state`,
:mod:`repro.core.replay`) raises plain :class:`MachineModelError`; the
layer wrappers re-raise under their own subclass with the kernel's
message preserved.
"""

from __future__ import annotations


class MachineModelError(RuntimeError):
    """A machine-semantics rule was violated (placement, capacity,
    transit discipline, in-chain adjacency, or shuttle connectivity)."""
