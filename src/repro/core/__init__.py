"""Unified machine-semantics kernel (``repro.core``).

One op-application engine under every layer that interprets machine
ops.  Before this package, the machine's rules — ion placement, trap
capacity, transit discipline, in-chain adjacency, shuttle connectivity
— were independently re-implemented by the compiler's forward state,
the simulator, the schedule verifier, and the pass framework's
occupancy replay; every rule change had to be kept consistent by hand
across four copies.  Now:

* :class:`MachineState` holds the array-backed dynamic state and the
  single legality-checked transition function :meth:`MachineState.apply`,
  plus cheap snapshotting (:meth:`MachineState.fork` /
  :meth:`MachineState.checkpoint` / :meth:`MachineState.restore` and the
  :class:`Checkpoint` type),
* :func:`replay` / :func:`is_applicable` run the one replay loop with
  pluggable observers,
* :class:`CheckpointedReplay` is the incremental layer: √N-spaced
  checkpoints let any ``(start, end, replacement)`` splice of a
  replayed schedule be re-verified in O(window) — the pass pipeline's
  speculative-rewrite oracle (see DESIGN.md §7),
* :class:`ClockObserver` (per-trap timing/makespan),
  :class:`HeatingObserver` (n̄ + fidelity accumulation) and
  :class:`OccupancyTraceObserver` (timeline queries) reproduce, on top
  of that loop, everything the layers derive from a schedule,
* :class:`MachineModelError` roots the shared error hierarchy:
  ``CompilationError``, ``SimulationError`` and ``VerificationError``
  all subclass it.

See DESIGN.md §6 for the architecture rationale.
"""

from .errors import MachineModelError
from .observers import (
    FIDELITY_FLOOR,
    ClockObserver,
    HeatingObserver,
    OccupancyTraceObserver,
    estimate_makespan,
    occupancy_at,
)
from .replay import (
    CheckpointedReplay,
    SpliceVerdict,
    is_applicable,
    replay,
    replay_into,
)
from .state import NOWHERE, Checkpoint, MachineState
from .vector import (
    HAVE_NUMPY,
    CompiledStream,
    batched_replay,
    check_stream,
    compile_stream,
    drain_stream,
    vector_kernel_enabled,
)

__all__ = [
    "FIDELITY_FLOOR",
    "HAVE_NUMPY",
    "CompiledStream",
    "batched_replay",
    "check_stream",
    "compile_stream",
    "drain_stream",
    "vector_kernel_enabled",
    "Checkpoint",
    "CheckpointedReplay",
    "ClockObserver",
    "HeatingObserver",
    "MachineModelError",
    "MachineState",
    "NOWHERE",
    "OccupancyTraceObserver",
    "SpliceVerdict",
    "estimate_makespan",
    "is_applicable",
    "occupancy_at",
    "replay",
    "replay_into",
]
