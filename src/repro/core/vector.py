"""Vectorized replay kernel: batched legality checks + a lean drain.

The scalar replay loop (:func:`repro.core.replay.replay`) pays one
Python dispatch through :meth:`MachineState.apply` per op — after
PRs 3-5 that dispatch *is* the remaining replay cost.  The obvious
fix, batching maximal homogeneous op runs, does not survive contact
with real schedules: the compiler interleaves kinds at fine grain
(split, moves, merge, gate, ...) and the paper suite's measured mean
run length is ~1.5 ops — per-run ndarray overhead swamps the win
(see DESIGN.md §11 for the numbers).  This module therefore batches
at *whole-stream* granularity instead:

1. :func:`compile_stream` flattens a :class:`Schedule` (or raw op
   list) once into columnar int64 arrays (cached on the schedule, so
   simulate/verify/pass replays share one compilation),
2. :func:`check_stream` proves an entire window legal with array
   predicates — the per-ion transit discipline becomes a sorted
   (ion, position) event table with seed rows and a forward fill
   (each op's required pre-state is a pure function of the previous
   event of the same ion), trap capacity over time becomes per-trap
   prefix sums over split/merge deltas, and shuttle connectivity one
   dense boolean-matrix gather,
3. a proven-legal window is *drained*: one lean loop applies
   mutations with no legality work and drives the simulator's
   clock/heating accumulators inline, preserving the scalar per-op
   accumulation order exactly — every float is bit-identical to the
   scalar kernel (the golden suite pins this).

If the check flags anything — a real violation or any op shape the
predicates do not model (swaps, subclassed ops, out-of-range ids) —
the caller falls back to the scalar kernel from untouched state and
reproduces the exact ``"op N: ..."`` error string.  False positives
merely cost speed; the predicates are constructed so no illegal op
can pass (no false negatives).

Everything degrades gracefully without numpy: :func:`batched_replay`
falls back to the scalar replay and :func:`vector_kernel_enabled`
reports ``False``.
"""

from __future__ import annotations

import math
import os

from .errors import MachineModelError
from .observers import FIDELITY_FLOOR, ClockObserver, HeatingObserver
from .ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from .state import NOWHERE, MachineState

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

#: Op-kind codes in the compiled stream.
K_GATE, K_MOVE, K_SPLIT, K_MERGE, K_SWAP, K_OTHER = range(6)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Environment switch (default on): set REPRO_VECTOR_KERNEL=0 to force
#: every consumer back onto the scalar kernel.
_ENV_FLAG = "REPRO_VECTOR_KERNEL"
_FALSE_WORDS = frozenset({"0", "false", "off", "no"})


def vector_kernel_enabled(flag: bool | None = None) -> bool:
    """Resolve a ``use_vector_kernel`` switch.

    ``None`` (the default everywhere) means "on unless the
    ``REPRO_VECTOR_KERNEL`` environment variable disables it"; an
    explicit boolean wins.  Always ``False`` when numpy is missing.
    """
    if not HAVE_NUMPY:
        return False
    if flag is None:
        return os.environ.get(_ENV_FLAG, "1").lower() not in _FALSE_WORDS
    return bool(flag)


def _fits(value) -> bool:
    """True when ``value`` is an int representable as int64."""
    return isinstance(value, int) and _INT64_MIN <= value <= _INT64_MAX


class CompiledStream:
    """Columnar form of an op stream.

    ``kind`` discriminates per op; ``a``/``b``/``c`` are int64 field
    columns (gate: trap/q0/q1-or--1; move: ion/src/dst; split:
    ion/trap/-1; merge: ion/trap/position-or--1) and ``d`` marks
    two-qubit gates.  The ``*_l`` twins are plain Python lists — the
    drain loop indexes them far faster than ndarray items.
    ``needs_scalar`` is True when any op is outside the vector model
    (swaps — chain-*order* checks — subclassed/foreign ops, ids
    beyond int64, negative merge positions); such streams replay
    scalar end to end.  ``ops`` keeps the original objects for the
    scalar fallback.
    """

    __slots__ = (
        "ops",
        "kind",
        "a",
        "b",
        "c",
        "kind_l",
        "a_l",
        "b_l",
        "c_l",
        "d_l",
        "needs_scalar",
        "_plans",
    )

    def __init__(self, ops, kind, a, b, c, d) -> None:
        self.ops = ops
        self.kind_l = kind
        self.a_l = a
        self.b_l = b
        self.c_l = c
        self.d_l = d
        self.kind = np.array(kind, dtype=np.uint8)
        self.a = np.array(a, dtype=np.int64)
        self.b = np.array(b, dtype=np.int64)
        self.c = np.array(c, dtype=np.int64)
        self.needs_scalar = bool((self.kind >= K_SWAP).any())
        #: (lo, hi) -> _CheckPlan, built lazily by check_stream.
        self._plans: dict = {}

    def __len__(self) -> int:
        return len(self.ops)


def compile_stream(source) -> "CompiledStream":
    """Compile a :class:`~repro.sim.schedule.Schedule` (or op sequence)
    into a :class:`CompiledStream`, caching on the schedule object."""
    cached = getattr(source, "_compiled_stream", None)
    if cached is not None:
        return cached
    ops = getattr(source, "_ops", None)
    if ops is None:
        ops = list(source)
    n = len(ops)
    kind = [K_OTHER] * n
    col_a = [0] * n
    col_b = [0] * n
    col_c = [0] * n
    col_d = [False] * n
    for i, op in enumerate(ops):
        cls = type(op)
        if cls is GateOp:
            qubits = op.gate.qubits
            nq = len(qubits)
            trap = op.trap
            if nq == 1:
                q0 = qubits[0]
                if _fits(trap) and _fits(q0):
                    kind[i] = K_GATE
                    col_a[i], col_b[i], col_c[i] = trap, q0, -1
            elif nq == 2:
                q0, q1 = qubits
                if _fits(trap) and _fits(q0) and _fits(q1):
                    kind[i] = K_GATE
                    col_a[i], col_b[i], col_c[i] = trap, q0, q1
                    col_d[i] = True
        elif cls is MoveOp:
            ion, src, dst = op.ion, op.src, op.dst
            if _fits(ion) and _fits(src) and _fits(dst):
                kind[i] = K_MOVE
                col_a[i], col_b[i], col_c[i] = ion, src, dst
        elif cls is SplitOp:
            ion, trap = op.ion, op.trap
            if _fits(ion) and _fits(trap):
                kind[i] = K_SPLIT
                col_a[i], col_b[i], col_c[i] = ion, trap, -1
        elif cls is MergeOp:
            ion, trap, position = op.ion, op.trap, op.position
            if (
                _fits(ion)
                and _fits(trap)
                and (position is None or (_fits(position) and position >= 0))
            ):
                # position -1 encodes None (tail append); a negative
                # insert index is legal scalar but stays K_OTHER.
                kind[i] = K_MERGE
                col_a[i], col_b[i] = ion, trap
                col_c[i] = -1 if position is None else position
        elif cls is SwapOp:
            kind[i] = K_SWAP
    stream = CompiledStream(list(ops), kind, col_a, col_b, col_c, col_d)
    try:
        source._compiled_stream = stream
    except AttributeError:
        pass  # raw tuples/lists: no cache slot
    return stream


# ----------------------------------------------------------------------
# Whole-window legality check (array predicates, no state mutation)
# ----------------------------------------------------------------------
class _CheckPlan:
    """State-independent structure of one check window, built once per
    ``(stream, lo, hi)`` and cached on the stream.

    The per-ion event table, its ``(ion, position)`` sort, the
    forward-fill gather indices and the capacity prefix sums depend
    only on the op stream — a check against a concrete state then
    reduces to writing the state's seed values into the cached table
    and running a handful of gathers and vectorized comparisons.
    """

    __slots__ = (
        "empty",
        "ions_nonneg",
        "max_ion",
        "seed_ion",
        "num_seed",
        "after_trap",
        "after_transit",
        "sp_gather",
        "sp_trap",
        "mv_gather",
        "mv_src",
        "mg_gather",
        "mg_trap",
        "q_gather",
        "q_trap",
        "move_src",
        "move_dst",
        "read_trap",
        "read_rel",
        "conn_num_traps",
        "conn_dst_ok",
        "conn_edges_ref",
        "conn_edge_ok",
        "conn_flat",
        "cap_ref",
        "cap_arr",
    )

    def __init__(self, stream: CompiledStream, lo: int, hi: int) -> None:
        kind = stream.kind[lo:hi]
        a = stream.a[lo:hi]
        b = stream.b[lo:hi]
        c = stream.c[lo:hi]

        is_gate = kind == K_GATE
        is_move = kind == K_MOVE
        is_split = kind == K_SPLIT
        is_merge = kind == K_MERGE

        # Event rows (split/move/merge) and gate-operand query rows.
        ev_pos = np.flatnonzero(~is_gate)
        ev_ion = a[ev_pos]
        ev_kind = kind[ev_pos]
        ev_b = b[ev_pos]  # split/merge: trap; move: src
        ev_c = c[ev_pos]  # move: dst
        g_pos = np.flatnonzero(is_gate)
        q1 = c[g_pos]
        two = np.flatnonzero(q1 >= 0)
        q_pos = np.concatenate([g_pos, g_pos[two]])
        q_ion = np.concatenate([b[g_pos], q1[two]])
        g_trap = a[g_pos]
        self.q_trap = np.concatenate([g_trap, g_trap[two]])

        self.seed_ion = np.unique(np.concatenate([ev_ion, q_ion]))
        self.num_seed = num_seed = self.seed_ion.size
        self.empty = num_seed == 0
        if self.empty:
            self.ions_nonneg = True
            self.max_ion = -1
            return
        self.ions_nonneg = bool(self.seed_ion[0] >= 0)
        self.max_ion = int(self.seed_ion[-1])

        ev_k_move = ev_kind == K_MOVE
        ev_k_split = ev_kind == K_SPLIT
        ev_k_merge = ev_kind == K_MERGE
        # State each event leaves behind (split/move detach; merge lands).
        ev_after_trap = np.where(ev_k_merge, ev_b, NOWHERE)
        ev_after_transit = np.where(
            ev_k_split, ev_b, np.where(ev_k_move, ev_c, NOWHERE)
        )

        num_ev = ev_pos.size
        num_q = q_pos.size
        ion_col = np.concatenate([self.seed_ion, ev_ion, q_ion])
        pos_col = np.concatenate(
            [np.full(num_seed, -1, dtype=np.int64), ev_pos, q_pos]
        )
        rows = ion_col.size
        is_state_row = np.zeros(rows, dtype=bool)
        is_state_row[: num_seed + num_ev] = True
        # Mutable per-check: [:num_seed] is overwritten with the
        # concrete state's seed values before every gather.
        self.after_trap = np.concatenate(
            [
                np.zeros(num_seed, dtype=np.int64),
                ev_after_trap,
                np.zeros(num_q, dtype=np.int64),
            ]
        )
        self.after_transit = np.concatenate(
            [
                np.zeros(num_seed, dtype=np.int64),
                ev_after_transit,
                np.zeros(num_q, dtype=np.int64),
            ]
        )
        order = np.lexsort((pos_col, ion_col))
        # Forward fill: sorted index of the latest state row at or
        # before each sorted row; every ion group opens with its seed
        # (position -1), so the fill never crosses ions.  Row 0 is the
        # smallest ion's seed and is never checked.
        filled = np.maximum.accumulate(
            np.where(is_state_row[order], np.arange(rows), 0)
        )
        before = np.empty(rows, dtype=np.int64)
        before[0] = 0
        before[1:] = filled[:-1]
        # Original-row index of each row's predecessor state row, then
        # re-expressed per original event/query row: one gather total.
        prev_state = order[before]
        inv_order = np.empty(rows, dtype=np.int64)
        inv_order[order] = np.arange(rows)
        ev_gather = prev_state[inv_order[num_seed : num_seed + num_ev]]
        self.q_gather = prev_state[inv_order[num_seed + num_ev :]]
        self.sp_gather = ev_gather[ev_k_split]
        self.sp_trap = ev_b[ev_k_split]
        self.mv_gather = ev_gather[ev_k_move]
        self.mv_src = ev_b[ev_k_move]
        self.mg_gather = ev_gather[ev_k_merge]
        self.mg_trap = ev_b[ev_k_merge]

        # Connectivity rows (dst bounds + edge gather are finished
        # lazily per machine: trap count is not a stream property).
        mv_pos = np.flatnonzero(is_move)
        self.move_src = b[mv_pos]
        self.move_dst = c[mv_pos]
        self.conn_num_traps = -1
        self.conn_dst_ok = False
        self.conn_edges_ref = None
        self.conn_edge_ok = None
        self.conn_flat = None
        self.cap_ref = None
        self.cap_arr = None

        # Capacity over time: split -1 / merge +1 deltas in per-trap
        # prefix sums; a move reads its dst, a merge reads its trap
        # *before* its own delta (typ orders same-position rows).
        cq_pos = np.flatnonzero(is_move | is_merge)
        if cq_pos.size:
            d_pos = np.flatnonzero(is_split | is_merge)
            d_trap = b[d_pos]
            d_delta = np.where(kind[d_pos] == K_MERGE, 1, -1).astype(
                np.int64
            )
            cq_trap = np.where(is_move[cq_pos], c[cq_pos], b[cq_pos])
            t_trap = np.concatenate([cq_trap, d_trap])
            t_pos = np.concatenate([cq_pos, d_pos])
            t_typ = np.zeros(t_trap.size, dtype=np.int8)
            t_typ[cq_pos.size :] = 1
            t_delta = np.concatenate(
                [np.zeros(cq_pos.size, dtype=np.int64), d_delta]
            )
            t_order = np.lexsort((t_typ, t_pos, t_trap))
            o_trap = t_trap[t_order]
            o_typ = t_typ[t_order]
            cs = np.cumsum(t_delta[t_order])
            start_cs = np.concatenate([[0], cs[:-1]])
            group_start = np.empty(o_trap.size, dtype=bool)
            group_start[0] = True
            group_start[1:] = o_trap[1:] != o_trap[:-1]
            group_first = np.maximum.accumulate(
                np.where(group_start, np.arange(o_trap.size), 0)
            )
            group_base = start_cs[group_first]
            reads = o_typ == 0
            self.read_trap = o_trap[reads]
            #: Occupancy at each read relative to the entering state.
            self.read_rel = cs[reads] - group_base[reads]
        else:
            self.read_trap = None
            self.read_rel = None


def check_stream(
    state: MachineState, stream: CompiledStream, lo: int, hi: int
) -> bool:
    """True when ops ``[lo, hi)`` are proven legal against ``state``.

    Pure: the state is never touched.  ``False`` means "replay this
    window scalar" — every actually-illegal op is flagged (the scalar
    fallback then raises the exact error), and the only false
    positives are op shapes outside the vector model.  The window's
    state-independent structure (:class:`_CheckPlan`) is cached on
    the stream, so repeated checks — simulate, verify, pass replays —
    cost only the seed fill, a few gathers and the comparisons.
    """
    if stream.needs_scalar:
        return False
    if hi - lo <= 0:
        return True
    plan = stream._plans.get((lo, hi))
    if plan is None:
        plan = stream._plans[(lo, hi)] = _CheckPlan(stream, lo, hi)
    if plan.empty:
        return True
    # Ion ids must index the flat registries (out-of-range ids are
    # unconditionally illegal scalar: "not there"/"without a split").
    if not plan.ions_nonneg or plan.max_ion >= len(state._trap_of):
        return False

    # ---- per-ion transit/placement dataflow -------------------------
    after_trap = plan.after_trap
    after_transit = plan.after_transit
    num_seed = plan.num_seed
    trap0 = np.asarray(state._trap_of, dtype=np.int64)
    transit0 = np.asarray(state._transit, dtype=np.int64)
    after_trap[:num_seed] = trap0[plan.seed_ion]
    after_transit[:num_seed] = transit0[plan.seed_ion]

    # Gate operands: each ion must sit in the op's trap (exact scalar
    # semantics: plain equality against the flat registry).
    if plan.q_gather.size and not bool(
        (after_trap[plan.q_gather] == plan.q_trap).all()
    ):
        return False
    # Splits: not in transit, and placed exactly where the op claims.
    if plan.sp_gather.size:
        ok = (after_transit[plan.sp_gather] == NOWHERE) & (
            after_trap[plan.sp_gather] == plan.sp_trap
        )
        if not bool(ok.all()):
            return False
    # Moves and merges: in transit exactly at src / the landing trap.
    for gather, expect in (
        (plan.mv_gather, plan.mv_src),
        (plan.mg_gather, plan.mg_trap),
    ):
        if gather.size:
            at = after_transit[gather]
            if not bool(((at != NOWHERE) & (at == expect)).all()):
                return False

    # ---- connectivity ----------------------------------------------
    num_traps = len(state.chains)
    if plan.move_dst.size:
        if plan.conn_num_traps != num_traps:
            plan.conn_num_traps = num_traps
            plan.conn_dst_ok = bool(
                ((plan.move_dst >= 0) & (plan.move_dst < num_traps)).all()
            )
            plan.conn_edges_ref = None
            if plan.conn_dst_ok:
                # src == proven transit location => a real trap id.
                plan.conn_flat = plan.move_src * num_traps + plan.move_dst
        if not plan.conn_dst_ok:
            return False
        if plan.conn_edges_ref is not state._edges:
            edge_ok = np.zeros(num_traps * num_traps, dtype=bool)
            for ea, eb in state._edges:
                if 0 <= ea < num_traps and 0 <= eb < num_traps:
                    edge_ok[ea * num_traps + eb] = True
                    edge_ok[eb * num_traps + ea] = True
            plan.conn_edges_ref = state._edges
            plan.conn_edge_ok = edge_ok
        if not bool(plan.conn_edge_ok[plan.conn_flat].all()):
            return False

    # ---- capacity over time ----------------------------------------
    if plan.read_trap is not None:
        if plan.cap_ref is not state.capacities:
            plan.cap_ref = state.capacities
            plan.cap_arr = np.asarray(state.capacities, dtype=np.int64)
        occ0 = np.fromiter(
            map(len, state.chains), dtype=np.int64, count=num_traps
        )
        occupancy = occ0[plan.read_trap] + plan.read_rel
        if not bool((occupancy < plan.cap_arr[plan.read_trap]).all()):
            return False
    return True


# ----------------------------------------------------------------------
# Drain: unchecked application + inline observer accumulation
# ----------------------------------------------------------------------
def drain_stream(
    state: MachineState,
    stream: CompiledStream,
    lo: int,
    hi: int,
    clock: ClockObserver | None = None,
    heat: HeatingObserver | None = None,
) -> None:
    """Apply proven-legal ops ``[lo, hi)`` with no legality work.

    One lean loop over the columnar lists mirrors exactly what
    :meth:`MachineState.apply` mutates and what the clock/heating
    observers accumulate, in the same per-op order — every float is
    bit-identical to the scalar interleave (accumulator attributes
    are hoisted to locals and written back unchanged in value).  Only
    call after :func:`check_stream` returned True for the window.
    """
    kinds = stream.kind_l
    col_a = stream.a_l
    col_b = stream.b_l
    col_c = stream.c_l
    col_d = stream.d_l
    chains = state.chains
    trap_of = state._trap_of
    transit = state._transit
    in_transit = state._num_in_transit
    log = math.log

    if clock is not None:
        clocks = clock.clocks
        timing = clock.timing
        gate1q_time = timing.gate1q_time
        gate2q_time = timing.gate2q_time
        clock_split = timing.split_time
        clock_merge = timing.merge_time
        move_time = timing.move_time
    if heat is not None:
        noise = heat.noise
        h_timing = heat.timing
        h_gate1q = h_timing.gate1q_time
        h_gate2q = h_timing.gate2q_time
        nbar = heat.nbar
        transit_energy = heat.transit_energy
        energy_get = transit_energy.get
        energy_pop = transit_energy.pop
        add_fidelity = heat.gate_fidelities.append
        gate_fidelity = noise.gate_fidelity
        heating_rate = noise.background_heating_rate
        recool_enabled = noise.recool_enabled
        recool_floor = noise.recool_floor
        recool_decay = noise.recool_decay
        one_q_fidelity = 1.0 - noise.one_qubit_infidelity
        move_heating = noise.move_heating
        split_heating = noise.split_heating
        merge_heating = noise.merge_heating
        carried_fraction = noise.carried_energy_fraction
        log_fidelity = heat.log_fidelity
        max_nbar = heat.max_nbar
        min_gate_fidelity = heat.min_gate_fidelity
        nbar_sum = heat._nbar_sum
        nbar_count = heat._nbar_count

    for index in range(lo, hi):
        op_kind = kinds[index]
        if op_kind == K_GATE:
            trap = col_a[index]
            two_qubit = col_d[index]
            if clock is not None:
                clocks[trap] += gate2q_time if two_qubit else gate1q_time
            if heat is not None:
                if two_qubit:
                    fidelity = gate_fidelity(
                        h_gate2q, nbar[trap], len(chains[trap])
                    )
                    nbar_sum += nbar[trap]
                    nbar_count += 1
                    nbar[trap] += heating_rate * h_gate2q
                else:
                    fidelity = one_q_fidelity
                    nbar[trap] += heating_rate * h_gate1q
                if nbar[trap] > max_nbar:
                    max_nbar = nbar[trap]
                if recool_enabled and two_qubit:
                    nbar[trap] = recool_floor + (
                        nbar[trap] - recool_floor
                    ) * recool_decay
                if fidelity < FIDELITY_FLOOR:
                    fidelity = FIDELITY_FLOOR
                if fidelity < min_gate_fidelity:
                    min_gate_fidelity = fidelity
                log_fidelity += log(fidelity)
                add_fidelity(fidelity)
        elif op_kind == K_MOVE:
            ion = col_a[index]
            transit[ion] = col_c[index]
            if clock is not None:
                src = col_b[index]
                dst = col_c[index]
                start = clocks[src]
                if clocks[dst] > start:
                    start = clocks[dst]
                clocks[src] = start + move_time
                clocks[dst] = start + move_time
            if heat is not None:
                transit_energy[ion] = energy_get(ion, 0.0) + move_heating
        elif op_kind == K_SPLIT:
            ion = col_a[index]
            trap = col_b[index]
            chains[trap].remove(ion)
            trap_of[ion] = NOWHERE
            transit[ion] = trap
            in_transit += 1
            if clock is not None:
                clocks[trap] += clock_split
            if heat is not None:
                nbar[trap] += split_heating
                if nbar[trap] > max_nbar:
                    max_nbar = nbar[trap]
                transit_energy[ion] = 0.0
        else:  # K_MERGE (swaps/others never reach the drain)
            ion = col_a[index]
            trap = col_b[index]
            position = col_c[index]
            chain = chains[trap]
            if position < 0:
                chain.append(ion)
            else:
                chain.insert(position, ion)
            trap_of[ion] = trap
            transit[ion] = NOWHERE
            in_transit -= 1
            if clock is not None:
                clocks[trap] += clock_merge
            if heat is not None:
                carried = carried_fraction * energy_pop(ion, 0.0)
                nbar[trap] += carried + merge_heating
                if nbar[trap] > max_nbar:
                    max_nbar = nbar[trap]

    state._num_in_transit = in_transit
    if heat is not None:
        heat.log_fidelity = log_fidelity
        heat.max_nbar = max_nbar
        heat.min_gate_fidelity = min_gate_fidelity
        heat._nbar_sum = nbar_sum
        heat._nbar_count = nbar_count


def _scalar_window(
    state: MachineState,
    stream: CompiledStream,
    lo: int,
    hi: int,
    observers: tuple = (),
) -> None:
    """Scalar fallback: per-op apply + observe over ``[lo, hi)``,
    raising the exact ``"op N: ..."`` error of a scalar replay."""
    ops = stream.ops
    apply = state.apply
    for index in range(lo, hi):
        op = ops[index]
        try:
            apply(op)
        except MachineModelError as exc:
            raise MachineModelError(f"op {index}: {exc}") from None
        for observer in observers:
            observer.observe(index, op, state)


_UNSUPPORTED = object()


def split_observers(observers):
    """Resolve ``observers`` into the drain's (clock, heat) slots.

    Returns ``(_UNSUPPORTED, None)`` when any observer is not an
    exact-type ClockObserver/HeatingObserver (subclasses may override
    accumulation or read state mid-stream: they need the scalar
    per-op loop).
    """
    clock = None
    heat = None
    for observer in observers:
        if type(observer) is ClockObserver and clock is None:
            clock = observer
        elif type(observer) is HeatingObserver and heat is None:
            heat = observer
        else:
            return _UNSUPPORTED, None
    return clock, heat


def supports_observers(observers) -> bool:
    """True when the drain can drive ``observers`` bit-identically."""
    return split_observers(observers)[0] is not _UNSUPPORTED


def batched_replay(
    machine,
    ops,
    initial_chains: dict[int, list[int]],
    observers: tuple = (),
    require_settled: bool = True,
) -> MachineState:
    """Vectorized mirror of :func:`repro.core.replay.replay`.

    Same verdicts, same ``"op N:"`` error strings, same observer
    floats — at batched-check speed.  Falls back to the scalar replay
    when numpy is unavailable, an observer combination is unsupported,
    or :func:`check_stream` flags the stream.
    """
    if not HAVE_NUMPY:
        from .replay import replay

        return replay(machine, ops, initial_chains, observers, require_settled)
    clock, heat = split_observers(observers)
    if clock is _UNSUPPORTED:
        from .replay import replay

        return replay(machine, ops, initial_chains, observers, require_settled)
    stream = compile_stream(ops)
    state = MachineState(machine, initial_chains)
    n = len(stream)
    if check_stream(state, stream, 0, n):
        drain_stream(state, stream, 0, n, clock, heat)
    else:
        _scalar_window(state, stream, 0, n, observers)
    if require_settled:
        state.require_settled()
    return state
