"""Array-backed machine state with the single op-application engine.

:class:`MachineState` is the one implementation of the machine's
op-application rules — ion placement, trap capacity, transit
discipline, in-chain adjacency, shuttle connectivity.  The compiler's
forward state, the simulator, the schedule verifier and the pass
manager's replay loops all delegate to it (directly or through thin
façades), so a rule exists in exactly one place and every layer agrees
on legality by construction.

Layout is chosen for the replay hot path:

* ``ion -> trap`` is a flat list indexed by ion id (``-1`` = not in a
  trap) instead of a dict — the dominant lookup of every gate/split
  check is one list index,
* the transit registry is a parallel flat list (``-1`` = not in
  transit) plus a counter, so "is this ion in transit" is O(1) and the
  end-of-schedule strandedness check is O(1) in the common case,
* per-trap chains stay ordered ``list``\\ s (chain order is semantic:
  swap adjacency and merge positions depend on it); chains are short
  (trap capacity), so the occasional ``list.remove``/``index`` is
  cheap,
* the topology's edge set is snapshotted into a ``set`` of normalized
  pairs, making the move-connectivity check one hash probe.

All violations raise :class:`~repro.core.errors.MachineModelError`.
"""

from __future__ import annotations

from ..arch.machine import QCCDMachine
from .errors import MachineModelError
from .ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp

#: Sentinel for "ion is not here" in the flat lookup arrays.
NOWHERE = -1


class Checkpoint:
    """Immutable snapshot of a :class:`MachineState`'s dynamic fields.

    Only the array-backed mutable state is copied — chains, the flat
    ``ion -> trap`` and transit arrays, and the transit counter; the
    static machine description (capacities, edge set) is shared by
    reference.  A checkpoint can be restored into any state over the
    same machine any number of times (:meth:`MachineState.restore`
    copies, never aliases), which is what the incremental verification
    engine (:class:`~repro.core.replay.CheckpointedReplay`) relies on.
    """

    __slots__ = ("chains", "trap_of", "transit", "num_in_transit")

    def __init__(
        self,
        chains: list[list[int]],
        trap_of: list[int],
        transit: list[int],
        num_in_transit: int,
    ) -> None:
        self.chains = chains
        self.trap_of = trap_of
        self.transit = transit
        self.num_in_transit = num_in_transit


class MachineState:
    """Dynamic machine state: per-trap ion chains plus ions in transit.

    Parameters
    ----------
    machine:
        Static machine description (capacities, topology).
    initial_chains:
        Trap id -> ordered ion chain.  Validated: chains must fit their
        traps and place every ion exactly once.
    """

    __slots__ = (
        "machine",
        "capacities",
        "chains",
        "_trap_of",
        "_transit",
        "_num_in_transit",
        "_edges",
    )

    def __init__(
        self, machine: QCCDMachine, initial_chains: dict[int, list[int]]
    ) -> None:
        self.machine = machine
        self.capacities: list[int] = [spec.capacity for spec in machine.traps]
        self.chains: list[list[int]] = []
        self._edges: set[tuple[int, int]] = set(machine.topology.edges)

        max_ion = NOWHERE
        for chain in initial_chains.values():
            for ion in chain:
                if ion > max_ion:
                    max_ion = ion
        self._trap_of: list[int] = [NOWHERE] * (max_ion + 1)
        self._transit: list[int] = [NOWHERE] * (max_ion + 1)
        self._num_in_transit = 0

        trap_of = self._trap_of
        for spec in machine.traps:
            chain = list(initial_chains.get(spec.trap_id, []))
            if len(chain) > spec.capacity:
                raise MachineModelError(
                    f"initial chain of trap {spec.trap_id} "
                    f"({len(chain)} ions) exceeds capacity {spec.capacity}"
                )
            for ion in chain:
                if ion < 0:
                    raise MachineModelError(f"negative ion id {ion}")
                if trap_of[ion] != NOWHERE:
                    raise MachineModelError(
                        f"ions [{ion}] appear in multiple traps"
                    )
                trap_of[ion] = spec.trap_id
            self.chains.append(chain)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_traps(self) -> int:
        """Number of traps."""
        return len(self.chains)

    def trap_of(self, ion: int) -> int:
        """Trap currently holding ``ion``; raises when it is in transit
        or not on the machine at all."""
        trap = self.location(ion)
        if trap == NOWHERE:
            raise MachineModelError(f"ion {ion} is not mapped")
        return trap

    def location(self, ion: int) -> int:
        """Trap holding ``ion``, or :data:`NOWHERE` (no exception)."""
        trap_of = self._trap_of
        if 0 <= ion < len(trap_of):
            return trap_of[ion]
        return NOWHERE

    def transit_location(self, ion: int) -> int:
        """Trap an in-transit ``ion`` is parked beside, or NOWHERE."""
        transit = self._transit
        if 0 <= ion < len(transit):
            return transit[ion]
        return NOWHERE

    def in_transit(self, ion: int) -> bool:
        """True when ``ion`` is between a split and a merge."""
        return self.transit_location(ion) != NOWHERE

    def transit_ions(self) -> list[int]:
        """Sorted ids of all ions currently in transit."""
        if not self._num_in_transit:
            return []
        return [
            ion
            for ion, trap in enumerate(self._transit)
            if trap != NOWHERE
        ]

    def occupancy(self, trap: int) -> int:
        """Number of ions chained in ``trap`` (transit ions count for
        no trap)."""
        return len(self.chains[trap])

    def excess_capacity(self, trap: int) -> int:
        """EC = capacity - occupancy (the paper's key quantity)."""
        return self.capacities[trap] - len(self.chains[trap])

    def is_full(self, trap: int) -> bool:
        """True when the trap cannot accept another ion."""
        return len(self.chains[trap]) >= self.capacities[trap]

    def chain(self, trap: int) -> list[int]:
        """Copy of the trap's ordered ion chain."""
        return list(self.chains[trap])

    def co_located(self, ion_a: int, ion_b: int) -> bool:
        """True when both ions share a trap (gate directly executable)."""
        return self.trap_of(ion_a) == self.trap_of(ion_b)

    def has_edge(self, a: int, b: int) -> bool:
        """True when a shuttle path connects traps ``a`` and ``b``."""
        return ((a, b) if a < b else (b, a)) in self._edges

    def chains_dict(self) -> dict[int, list[int]]:
        """Trap id -> chain copy (report/hand-off format)."""
        return {t: list(chain) for t, chain in enumerate(self.chains)}

    # Alias kept for symmetry with the old CompilerState API.
    snapshot_chains = chains_dict

    # ------------------------------------------------------------------
    # Snapshotting (the incremental-verification fast path)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Snapshot the dynamic state (array copies, O(ions + traps))."""
        return Checkpoint(
            [list(chain) for chain in self.chains],
            list(self._trap_of),
            list(self._transit),
            self._num_in_transit,
        )

    def restore(self, checkpoint: Checkpoint) -> "MachineState":
        """Reset the dynamic state to ``checkpoint`` (copying — the
        checkpoint stays valid and can be restored again)."""
        self.chains = [list(chain) for chain in checkpoint.chains]
        self._trap_of = list(checkpoint.trap_of)
        self._transit = list(checkpoint.transit)
        self._num_in_transit = checkpoint.num_in_transit
        return self

    def fork(self) -> "MachineState":
        """Independent copy sharing the static machine description.

        The flat arrays and per-trap chains are copied (mutating the
        fork never touches the original); ``machine``, ``capacities``
        and the edge set are immutable during replay and shared.
        """
        twin = MachineState.__new__(MachineState)
        twin.machine = self.machine
        twin.capacities = self.capacities
        twin._edges = self._edges
        twin.chains = [list(chain) for chain in self.chains]
        twin._trap_of = list(self._trap_of)
        twin._transit = list(self._transit)
        twin._num_in_transit = self._num_in_transit
        return twin

    def matches(self, other: "MachineState | Checkpoint") -> bool:
        """True when the dynamic state is identical to ``other``'s.

        ``other`` may be a live state or a :class:`Checkpoint`.  Chain
        *order* counts (it is semantic: swap adjacency and merge
        positions depend on it).  Comparing chains and the transit
        array suffices — the ``ion -> trap`` array is determined by the
        chains, and the transit counter by the transit array.
        """
        if isinstance(other, Checkpoint):
            return (
                self._num_in_transit == other.num_in_transit
                and self.chains == other.chains
                and self._transit == other.transit
            )
        return (
            self._num_in_transit == other._num_in_transit
            and self.chains == other.chains
            and self._transit == other._transit
        )

    # ------------------------------------------------------------------
    # Primitive mutations (the compiler's forward-state interface)
    # ------------------------------------------------------------------
    def _ensure_ion(self, ion: int) -> None:
        """Grow the flat arrays to cover ``ion``."""
        if ion < 0:
            raise MachineModelError(f"negative ion id {ion}")
        grow = ion + 1 - len(self._trap_of)
        if grow > 0:
            self._trap_of.extend([NOWHERE] * grow)
            self._transit.extend([NOWHERE] * grow)

    def detach_ion(self, ion: int) -> int:
        """Remove an ion from its chain (split); returns the source
        trap.  The ion is left *off* the machine and outside the
        transit registry — apply a :class:`~repro.core.ops.SplitOp`
        via :meth:`apply` instead when transit discipline should
        track it."""
        trap = self.trap_of(ion)
        self.chains[trap].remove(ion)
        self._trap_of[ion] = NOWHERE
        return trap

    def attach_ion(
        self, ion: int, trap: int, position: int | None = None
    ) -> None:
        """Attach an ion to a trap's chain (merge).

        ``position`` inserts at that chain index (0 = head); the
        default appends at the tail.
        """
        self._ensure_ion(ion)
        current = self._trap_of[ion]
        if current != NOWHERE:
            raise MachineModelError(
                f"ion {ion} attached while still in trap {current}"
            )
        chain = self.chains[trap]
        if len(chain) >= self.capacities[trap]:
            raise MachineModelError(
                f"ion {ion} attached to full trap {trap}"
            )
        if position is None:
            chain.append(ion)
        else:
            chain.insert(position, ion)
        self._trap_of[ion] = trap

    def swap_adjacent(self, trap: int, index: int) -> tuple[int, int]:
        """Exchange the chain neighbours at ``index`` and ``index + 1``;
        returns the swapped ion pair (new order)."""
        chain = self.chains[trap]
        if not 0 <= index < len(chain) - 1:
            raise MachineModelError(
                f"no adjacent pair at position {index} in trap {trap}"
            )
        chain[index], chain[index + 1] = chain[index + 1], chain[index]
        return chain[index], chain[index + 1]

    # ------------------------------------------------------------------
    # Op application (the single legality-checked transition function)
    # ------------------------------------------------------------------
    def apply(self, op) -> None:
        """Apply one machine op, raising :class:`MachineModelError` on
        the first rule violation.  The state is unchanged when the op
        is rejected.

        This is the replay hot path (every ``is_legal`` probe of every
        speculative pass rewrite funnels through here), so the five
        branches are inlined rather than dispatched to per-kind
        methods, and dispatch compares exact classes before falling
        back to ``isinstance`` for subclassed ops.
        """
        cls = type(op)
        trap_of = self._trap_of
        size = len(trap_of)

        if cls is GateOp or isinstance(op, GateOp):
            trap = op.trap
            for qubit in op.gate.qubits:
                if not 0 <= qubit < size or trap_of[qubit] != trap:
                    raise MachineModelError(
                        f"gate {op.gate} in trap {trap} "
                        f"but ion {qubit} is not there"
                    )

        elif cls is MoveOp or isinstance(op, MoveOp):
            ion = op.ion
            at = self._transit[ion] if 0 <= ion < size else NOWHERE
            if at == NOWHERE:
                raise MachineModelError(
                    f"ion {ion} moved without a split"
                )
            if at != op.src:
                raise MachineModelError(
                    f"ion {ion} moved from trap {op.src} "
                    f"but it is at trap {at}"
                )
            src, dst = op.src, op.dst
            if ((src, dst) if src < dst else (dst, src)) not in self._edges:
                raise MachineModelError(
                    f"no shuttle path {src} -> {dst}"
                )
            if len(self.chains[dst]) >= self.capacities[dst]:
                raise MachineModelError(
                    f"ion {ion} moved into full trap {dst}"
                )
            self._transit[ion] = dst

        elif cls is SplitOp or isinstance(op, SplitOp):
            ion = op.ion
            if 0 <= ion < size and self._transit[ion] != NOWHERE:
                raise MachineModelError(
                    f"ion {ion} split while in transit"
                )
            if not 0 <= ion < size or trap_of[ion] != op.trap:
                raise MachineModelError(
                    f"ion {ion} split from trap {op.trap} "
                    f"but it is not there"
                )
            self.chains[op.trap].remove(ion)
            trap_of[ion] = NOWHERE
            self._transit[ion] = op.trap
            self._num_in_transit += 1

        elif cls is MergeOp or isinstance(op, MergeOp):
            ion = op.ion
            at = self._transit[ion] if 0 <= ion < size else NOWHERE
            if at == NOWHERE:
                raise MachineModelError(
                    f"ion {ion} merged without a split"
                )
            if at != op.trap:
                raise MachineModelError(
                    f"ion {ion} merged into trap {op.trap} "
                    f"but it is at trap {at}"
                )
            chain = self.chains[op.trap]
            if len(chain) >= self.capacities[op.trap]:
                raise MachineModelError(
                    f"ion {ion} merged into full trap {op.trap}"
                )
            if op.position is None:
                chain.append(ion)
            else:
                chain.insert(op.position, ion)
            trap_of[ion] = op.trap
            self._transit[ion] = NOWHERE
            self._num_in_transit -= 1

        elif cls is SwapOp or isinstance(op, SwapOp):
            trap = op.trap
            chain = self.chains[trap]
            for ion in (op.ion_a, op.ion_b):
                if not 0 <= ion < size or trap_of[ion] != trap:
                    raise MachineModelError(
                        f"swap of ion {ion} in trap {trap} "
                        f"but it is not there"
                    )
            index_a = chain.index(op.ion_a)
            index_b = chain.index(op.ion_b)
            if abs(index_a - index_b) != 1:
                raise MachineModelError(
                    f"ions {op.ion_a} and {op.ion_b} "
                    f"not adjacent in trap {trap}"
                )
            chain[index_a], chain[index_b] = chain[index_b], chain[index_a]

        else:
            raise MachineModelError(f"unknown op {op!r}")

    def require_settled(self) -> None:
        """Raise unless every ion is chained (no transit in flight)."""
        if self._num_in_transit:
            raise MachineModelError(
                "schedule ended with ions in transit: "
                f"{self.transit_ions()}"
            )
