"""Pluggable replay observers: timing, heating/fidelity, occupancy.

The kernel replay (:func:`repro.core.replay.replay`) applies legality
rules only; everything else the layers derive from a schedule — trap
clocks and makespan, chain heating and gate fidelities, occupancy
timelines — is accumulated by observers notified after every applied
op.  An observer implements::

    observe(index: int, op: MachineOp, state: MachineState | None) -> None

``state`` is the post-op machine state during a legality replay and may
be ``None`` when an observer is driven over a raw op stream without
legality checking (see :meth:`ClockObserver.drive`) — only
:class:`HeatingObserver` reads it (chain length at gate time).

Numeric behaviour is bit-compatible with the pre-kernel simulator: the
per-trap accumulation order of every float is unchanged, so a
:class:`~repro.sim.simulator.SimulationReport` built from these
observers is identical to one produced by the old monolithic loop.
"""

from __future__ import annotations

import math

from .ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from .params import (
    DEFAULT_PARAMS,
    MachineParams,
    NoiseParams,
    TimingParams,
)

#: Fidelity floor used when accumulating logs (a 0-fidelity gate would
#: otherwise produce -inf and drown every other effect).
FIDELITY_FLOOR = 1e-12


class ClockObserver:
    """Per-trap clocks under the paper's timing model (Section II-B1).

    Gates and split/merge/swap ops advance their trap's clock; a move
    synchronizes both endpoint clocks then advances them together.
    """

    __slots__ = ("clocks", "timing")

    def __init__(
        self, num_traps: int, timing: TimingParams | None = None
    ) -> None:
        self.clocks = [0.0] * num_traps
        self.timing = timing if timing is not None else TimingParams()

    @property
    def makespan(self) -> float:
        """Maximum trap clock (schedule duration)."""
        return max(self.clocks) if self.clocks else 0.0

    def snapshot(self) -> tuple:
        """Opaque copy of the accumulated clocks (exact floats)."""
        return tuple(self.clocks)

    def resume(self, snapshot: tuple) -> "ClockObserver":
        """Reset the clocks to a previously taken :meth:`snapshot`.

        Restoring is exact (the snapshot holds the accumulated floats
        verbatim), so driving the remaining ops after a resume yields
        bit-identical clocks to one uninterrupted scan.
        """
        self.clocks = list(snapshot)
        return self

    def observe(self, index: int, op, state) -> None:
        clocks = self.clocks
        timing = self.timing
        cls = type(op)
        if cls is GateOp or isinstance(op, GateOp):
            clocks[op.trap] += timing.gate_time(op.gate.num_qubits)
        elif cls is MoveOp or isinstance(op, MoveOp):
            start = max(clocks[op.src], clocks[op.dst])
            clocks[op.src] = start + timing.move_time
            clocks[op.dst] = start + timing.move_time
        elif cls is SplitOp or isinstance(op, SplitOp):
            clocks[op.trap] += timing.split_time
        elif cls is MergeOp or isinstance(op, MergeOp):
            clocks[op.trap] += timing.merge_time
        elif cls is SwapOp or isinstance(op, SwapOp):
            clocks[op.trap] += timing.swap_time

    def drive(self, ops) -> "ClockObserver":
        """Feed a raw op stream without a legality replay.

        This is the makespan-estimation fast path (duration-oriented
        passes call it hundreds of times per schedule): one tight loop,
        no per-op dispatch through :meth:`observe`.
        """
        clocks = self.clocks
        timing = self.timing
        gate1q_time = timing.gate1q_time
        gate2q_time = timing.gate2q_time
        split_time = timing.split_time
        merge_time = timing.merge_time
        swap_time = timing.swap_time
        move_time = timing.move_time
        for op in ops:
            cls = type(op)
            if cls is GateOp:
                clocks[op.trap] += (
                    gate2q_time
                    if len(op.gate.qubits) >= 2
                    else gate1q_time
                )
            elif cls is MoveOp:
                src, dst = op.src, op.dst
                start = clocks[src]
                if clocks[dst] > start:
                    start = clocks[dst]
                clocks[src] = start + move_time
                clocks[dst] = start + move_time
            elif cls is SplitOp:
                clocks[op.trap] += split_time
            elif cls is MergeOp:
                clocks[op.trap] += merge_time
            elif cls is SwapOp:
                clocks[op.trap] += swap_time
            else:  # subclass or foreign op: generic dispatch
                self.observe(0, op, None)
        return self


class HeatingObserver:
    """Chain heating and gate fidelities under the additive model.

    Tracks per-trap motional mode ``n̄`` (splits heat the source chain,
    moves heat the ion in transit, merges deposit the carried quanta
    plus a fixed overhead, background heating accrues per gate), and
    accumulates per-gate fidelities ``F = 1 - Γτ - A(2n̄+1)`` in log
    space (Section II-B3).  Requires a legality replay: the chain
    length entering the fidelity model is read from the live
    :class:`~repro.core.state.MachineState`.
    """

    __slots__ = (
        "noise",
        "timing",
        "nbar",
        "transit_energy",
        "log_fidelity",
        "gate_fidelities",
        "max_nbar",
        "min_gate_fidelity",
        "_nbar_sum",
        "_nbar_count",
    )

    def __init__(
        self, num_traps: int, params: MachineParams = DEFAULT_PARAMS
    ) -> None:
        self.noise: NoiseParams = params.noise
        self.timing: TimingParams = params.timing
        self.nbar = [0.0] * num_traps
        self.transit_energy: dict[int, float] = {}
        self.log_fidelity = 0.0
        self.gate_fidelities: list[float] = []
        self.max_nbar = 0.0
        self.min_gate_fidelity = 1.0
        self._nbar_sum = 0.0
        self._nbar_count = 0

    @property
    def mean_gate_nbar(self) -> float:
        """Mean chain n̄ sampled at each two-qubit gate."""
        if not self._nbar_count:
            return 0.0
        return self._nbar_sum / self._nbar_count

    def snapshot(self) -> tuple:
        """Opaque copy of the accumulated heating state (exact floats,
        including the per-gate fidelity list — a snapshot stays valid
        no matter what the observer is driven over afterwards)."""
        return (
            tuple(self.nbar),
            tuple(self.transit_energy.items()),
            self.log_fidelity,
            tuple(self.gate_fidelities),
            self.max_nbar,
            self.min_gate_fidelity,
            self._nbar_sum,
            self._nbar_count,
        )

    def resume(self, snapshot: tuple) -> "HeatingObserver":
        """Reset to a previously taken :meth:`snapshot` (exact floats;
        observing the remaining ops after a resume is bit-identical to
        one uninterrupted scan)."""
        (
            nbar,
            transit_energy,
            self.log_fidelity,
            gate_fidelities,
            self.max_nbar,
            self.min_gate_fidelity,
            self._nbar_sum,
            self._nbar_count,
        ) = snapshot
        self.nbar = list(nbar)
        self.transit_energy = dict(transit_energy)
        self.gate_fidelities = list(gate_fidelities)
        return self

    def observe(self, index: int, op, state) -> None:
        noise = self.noise
        nbar = self.nbar
        cls = type(op)
        if cls is GateOp or isinstance(op, GateOp):
            trap = op.trap
            tau = self.timing.gate_time(op.gate.num_qubits)
            two_qubit = op.gate.is_two_qubit
            if two_qubit:
                fidelity = noise.gate_fidelity(
                    tau, nbar[trap], state.occupancy(trap)
                )
                self._nbar_sum += nbar[trap]
                self._nbar_count += 1
            else:
                fidelity = 1.0 - noise.one_qubit_infidelity
            nbar[trap] += noise.background_heating_rate * tau
            if nbar[trap] > self.max_nbar:
                self.max_nbar = nbar[trap]
            if noise.recool_enabled and two_qubit:
                # Sympathetic co-cooling relaxes the chain.
                nbar[trap] = noise.recool_floor + (
                    nbar[trap] - noise.recool_floor
                ) * noise.recool_decay
            if fidelity < FIDELITY_FLOOR:
                fidelity = FIDELITY_FLOOR
            if fidelity < self.min_gate_fidelity:
                self.min_gate_fidelity = fidelity
            self.log_fidelity += math.log(fidelity)
            self.gate_fidelities.append(fidelity)
        elif cls is MoveOp or isinstance(op, MoveOp):
            # .get: an ion already in transit when observation started
            # (observer attached mid-stream) carries unknown energy — 0.
            self.transit_energy[op.ion] = (
                self.transit_energy.get(op.ion, 0.0) + noise.move_heating
            )
        elif cls is SplitOp or isinstance(op, SplitOp):
            nbar[op.trap] += noise.split_heating
            if nbar[op.trap] > self.max_nbar:
                self.max_nbar = nbar[op.trap]
            self.transit_energy[op.ion] = 0.0
        elif cls is MergeOp or isinstance(op, MergeOp):
            # Additive heating model (QCCDSim behaviour, Fig. 3): the
            # merge deposits the ion's transit energy plus a fixed
            # merge overhead into the destination chain.
            carried = noise.carried_energy_fraction * self.transit_energy.pop(
                op.ion, 0.0
            )
            nbar[op.trap] += carried + noise.merge_heating
            if nbar[op.trap] > self.max_nbar:
                self.max_nbar = nbar[op.trap]
        elif cls is SwapOp or isinstance(op, SwapOp):
            nbar[op.trap] += noise.swap_heating
            if nbar[op.trap] > self.max_nbar:
                self.max_nbar = nbar[op.trap]


class OccupancyTraceObserver:
    """Occupancy deltas as ``(stream index, trap, delta)`` events.

    Transit ions occupy no trap (matching the machine model): only
    splits and merges change occupancy.  The event list supports the
    congestion queries of the re-routing pass via :func:`occupancy_at`.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple[int, int, int]] = []

    def observe(self, index: int, op, state) -> None:
        cls = type(op)
        if cls is SplitOp or isinstance(op, SplitOp):
            self.events.append((index, op.trap, -1))
        elif cls is MergeOp or isinstance(op, MergeOp):
            self.events.append((index, op.trap, +1))

    def snapshot(self) -> tuple:
        """Opaque copy of the accumulated events (a snapshot stays
        valid no matter what the observer is driven over afterwards)."""
        return tuple(self.events)

    def resume(self, snapshot: tuple) -> "OccupancyTraceObserver":
        """Reset the event list to a previously taken :meth:`snapshot`."""
        self.events = list(snapshot)
        return self

    @staticmethod
    def events_of(ops) -> list[tuple[int, int, int]]:
        """Occupancy events of a raw op stream (no legality replay)."""
        events: list[tuple[int, int, int]] = []
        for index, op in enumerate(ops):
            cls = type(op)
            if cls is SplitOp or isinstance(op, SplitOp):
                events.append((index, op.trap, -1))
            elif cls is MergeOp or isinstance(op, MergeOp):
                events.append((index, op.trap, +1))
        return events


def occupancy_at(
    events, initial_occupancy, position: int
) -> list[int]:
    """Per-trap ion counts just before stream index ``position``,
    starting from ``initial_occupancy`` (one count per trap)."""
    occupancy = list(initial_occupancy)
    for index, trap, delta in events:
        if index >= position:
            break
        occupancy[trap] += delta
    return occupancy


def estimate_makespan(
    num_traps: int, ops, timing: TimingParams | None = None
) -> float:
    """Makespan of an op stream under the clock model (no legality
    replay; noise is irrelevant to timing)."""
    return ClockObserver(num_traps, timing).drive(ops).makespan
