"""Timing and noise parameters of the QCCD machine model.

The paper (Section II-B3) uses the analytic gate fidelity model of
Murali et al. [7]:

    F = 1 - Γ·τ - A·(2·n̄ + 1)

where Γ is the trap heating rate, τ the gate duration, n̄ the motional
mode (vibrational quanta) of the ion chain, and A a scaling factor that
"varies as #qubits / log(#qubits)" with the chain length.  The paper
deliberately omits the numeric constants ("embedded in the GitHub
code-base [8]"); the values below are reconstructed from the public
descriptions in [7] (ISCA 2020), Leung et al. [9] and Gutierrez et
al. [10]:

* two-qubit MS gate: 100 µs wall-clock (ISCA'20 baseline pulse),
* one-qubit gate: 20 µs,
* split and merge: 80 µs each,
* move along one shuttle-path edge: 5 µs,
* each move heats the ion in transit by ~0.1 motional quanta,
* merges deposit the carried quanta into the destination chain plus a
  fixed merge-heating overhead,
* background anomalous heating while a chain idles/executes.

Absolute fidelities therefore differ from the authors' calibration, but
both compilers are evaluated under the *same* model, so the improvement
ratios of Fig. 8 — the reported quantity — are comparable.  All values
are dataclass fields so sensitivity studies can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TimingParams:
    """Operation durations in seconds."""

    gate2q_time: float = 100e-6  # MS gate pulse
    gate1q_time: float = 20e-6  # single-qubit rotation
    split_time: float = 80e-6  # chain split
    merge_time: float = 80e-6  # chain merge
    move_time: float = 5e-6  # one edge traversal
    swap_time: float = 80e-6  # in-chain ion swap (Fig. 3 step (i))

    def gate_time(self, num_qubits: int) -> float:
        """Duration of a gate of the given arity."""
        return self.gate2q_time if num_qubits >= 2 else self.gate1q_time


@dataclass(frozen=True)
class NoiseParams:
    """Heating and fidelity-model constants.

    ``gate_infidelity_scale`` is the A0 in ``A = A0 * N / log2(N)``
    (N = chain length, Section II-B3).  ``heating_rate`` is Γ in the
    fidelity formula (quanta/s folded with the gate's motional
    sensitivity, so Γ·τ is directly an infidelity).
    """

    heating_rate: float = 30.0  # Γ [1/s]: background infidelity rate
    gate_infidelity_scale: float = 2e-5  # A0 in A = A0 * N / log2(N)
    move_heating: float = 2.0  # quanta added to the ion per edge moved
    split_heating: float = 2.0  # quanta added to the *source chain*
    merge_heating: float = 6.0  # quanta added on merge beyond carried
    carried_energy_fraction: float = 1.0  # share of transit quanta deposited
    background_heating_rate: float = 50.0  # chain n̄ growth [quanta/s]
    one_qubit_infidelity: float = 1e-5  # fixed 1q-gate error floor
    # Sympathetic re-cooling (QCCD systems co-trap coolant ions;
    # QCCDSim recools chains after shuttle primitives).  Modeled as an
    # exponential relaxation of n̄ toward ``recool_floor`` applied after
    # every gate in a trap, so shuttle-induced heat is transient and
    # degrades the gates that *follow* a merge (Fig. 3's narrative)
    # rather than accumulating without bound.
    recool_enabled: bool = True
    recool_decay: float = 0.95  # n̄ retention per executed gate
    recool_floor: float = 0.0  # asymptotic n̄ after cooling
    swap_heating: float = 0.3  # quanta added per in-chain swap

    def chain_scale(self, chain_length: int) -> float:
        """A = A0 * N / log2(N), guarded for N <= 2."""
        n = max(chain_length, 2)
        return self.gate_infidelity_scale * n / math.log2(n)

    def gate_fidelity(
        self, tau: float, nbar: float, chain_length: int
    ) -> float:
        """The paper's model: F = 1 - Γτ - A(2n̄+1), clamped to [0, 1]."""
        a = self.chain_scale(chain_length)
        fidelity = 1.0 - self.heating_rate * tau - a * (2.0 * nbar + 1.0)
        return min(1.0, max(0.0, fidelity))


@dataclass(frozen=True)
class MachineParams:
    """Bundle of timing and noise parameters."""

    timing: TimingParams = field(default_factory=TimingParams)
    noise: NoiseParams = field(default_factory=NoiseParams)

    def with_noise(self, **kwargs) -> "MachineParams":
        """Copy with noise fields overridden."""
        return MachineParams(self.timing, replace(self.noise, **kwargs))

    def with_timing(self, **kwargs) -> "MachineParams":
        """Copy with timing fields overridden."""
        return MachineParams(replace(self.timing, **kwargs), self.noise)


#: Default parameter set used across the evaluation harness.
DEFAULT_PARAMS = MachineParams()
