"""Machine-level operations emitted by the compiler.

A compiled program (a :class:`~repro.sim.schedule.Schedule`) is a stream
of these primitives, matching the paper's Fig. 3:

* :class:`GateOp` — a gate executed inside one trap,
* :class:`SplitOp` — detach an ion from its chain in preparation to move,
* :class:`MoveOp` — carry an ion across one shuttle-path edge
  (**one MoveOp = one shuttle**, the unit counted in Table II),
* :class:`MergeOp` — attach an ion to the destination chain.

Every op knows why it was emitted (``reason``) so the evaluation harness
can attribute shuttles to gate routing versus traffic-block re-balancing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..circuits.gate import Gate


class ShuttleReason(Enum):
    """Why a split/move/merge chain was emitted."""

    GATE = "gate"  # bring two ions together for a 2-qubit gate
    REBALANCE = "rebalance"  # evict an ion from a full trap (traffic block)
    INITIAL = "initial"  # reserved for mapping-time placement (unused)


@dataclass(frozen=True)
class GateOp:
    """A gate executed in trap ``trap``; both ions are co-located."""

    gate: Gate
    trap: int

    @property
    def kind(self) -> str:
        """Op discriminator used by reports."""
        return "gate"


@dataclass(frozen=True)
class SplitOp:
    """Detach ``ion`` from the chain in ``trap``."""

    ion: int
    trap: int
    reason: ShuttleReason = ShuttleReason.GATE

    @property
    def kind(self) -> str:
        """Op discriminator used by reports."""
        return "split"


@dataclass(frozen=True)
class MoveOp:
    """Carry ``ion`` along the edge ``src -> dst``.

    One MoveOp is one *shuttle* in the paper's accounting (Fig. 7 counts
    a 4-edge route as 4 shuttles).
    """

    ion: int
    src: int
    dst: int
    reason: ShuttleReason = ShuttleReason.GATE

    @property
    def kind(self) -> str:
        """Op discriminator used by reports."""
        return "move"


@dataclass(frozen=True)
class MergeOp:
    """Attach ``ion`` to the chain in ``trap``.

    ``position`` records where the ion lands in the chain: ``0`` for
    the head (entry from the lower-id edge), ``None`` for the tail.
    Only meaningful when chain order is being tracked.
    """

    ion: int
    trap: int
    reason: ShuttleReason = ShuttleReason.GATE
    position: int | None = None

    @property
    def kind(self) -> str:
        """Op discriminator used by reports."""
        return "merge"


@dataclass(frozen=True)
class SwapOp:
    """Physically exchange two *adjacent* ions within a chain.

    Fig. 3 step (i): before an ion can split off, it must sit at the
    chain end facing its exit edge; in-chain swaps reposition it.
    Emitted only when the compiler runs with ``track_chain_order=True``.
    """

    ion_a: int
    ion_b: int
    trap: int
    reason: ShuttleReason = ShuttleReason.GATE

    @property
    def kind(self) -> str:
        """Op discriminator used by reports."""
        return "swap"


#: Union type of all machine ops.
MachineOp = GateOp | SplitOp | MoveOp | MergeOp | SwapOp
