"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands
--------
``table2``   regenerate Table II (shuttle reduction)
``table3``   regenerate Table III (compile-time overhead)
``fig8``     regenerate Fig. 8 (fidelity improvement)
``ablation`` run the E4/E5 ablation studies
``compile``  compile one benchmark and print its statistics
``info``     describe the machine model and compiler configurations

Use ``--full`` (or ``REPRO_FULL=1``) for the complete 120-circuit
random ensemble.
"""

from __future__ import annotations

import argparse
import sys

from .arch.presets import grid_machine, l6_machine, linear_machine, ring_machine
from .bench.qaoa import qaoa_circuit
from .bench.qft import qft_circuit
from .bench.quadraticform import quadratic_form_circuit
from .bench.random_circuits import random_circuit
from .bench.squareroot import squareroot_circuit
from .bench.suite import nisq_suite
from .bench.supremacy import supremacy_circuit
from .compiler.config import CompilerConfig
from .eval.ablation import heuristic_ablation, proximity_sweep, render_sweep
from .eval.figure8 import render_figure8
from .eval.harness import compare, run_suite
from .eval.table2 import overall_reduction, render_table2, wins_everywhere
from .eval.table3 import render_table3
from .viz.timeline import schedule_summary, shuttle_trace
from .viz.trapview import render_chains, render_topology

_BENCHMARKS = {
    "supremacy": supremacy_circuit,
    "qaoa": qaoa_circuit,
    "squareroot": squareroot_circuit,
    "qft": qft_circuit,
    "quadraticform": quadratic_form_circuit,
}


def _machine_from_args(args) -> object:
    if args.machine == "l6":
        return l6_machine()
    if args.machine.startswith("linear"):
        return linear_machine(int(args.machine[len("linear") :]))
    if args.machine.startswith("ring"):
        return ring_machine(int(args.machine[len("ring") :]))
    if args.machine.startswith("grid"):
        rows, cols = args.machine[len("grid") :].split("x")
        return grid_machine(int(rows), int(cols))
    raise SystemExit(f"unknown machine {args.machine!r}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        default="l6",
        help="machine preset: l6 (default), linearN, ringN, gridRxC",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full 120-circuit random ensemble",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables (for EXPERIMENTS.md)",
    )


def _cmd_table2(args) -> int:
    machine = _machine_from_args(args)
    comparisons = run_suite(
        machine=machine, simulate=False, full=args.full or None, verbose=True
    )
    print()
    print(render_table2(comparisons, markdown=args.markdown))
    print()
    print(f"average reduction: {overall_reduction(comparisons):.1f}%")
    print(f"fewer shuttles on every circuit: {wins_everywhere(comparisons)}")
    return 0


def _cmd_table3(args) -> int:
    machine = _machine_from_args(args)
    comparisons = run_suite(
        machine=machine, simulate=False, full=args.full or None
    )
    print(render_table3(comparisons, markdown=args.markdown))
    return 0


def _cmd_fig8(args) -> int:
    machine = _machine_from_args(args)
    comparisons = run_suite(
        machine=machine, simulate=True, full=args.full or None
    )
    print(render_figure8(comparisons, markdown=args.markdown))
    return 0


def _cmd_ablation(args) -> int:
    machine = _machine_from_args(args)
    circuits = nisq_suite()
    print("E4: gate-proximity sweep (mean over the NISQ suite)")
    print(render_sweep(proximity_sweep(circuits, machine), "proximity"))
    print()
    print("E5: per-heuristic ablation")
    print(render_sweep(heuristic_ablation(circuits, machine), "variant"))
    return 0


def _cmd_compile(args) -> int:
    machine = _machine_from_args(args)
    if args.benchmark == "random":
        circuit = random_circuit(args.qubits or 64, args.gates or 1438, args.seed)
    else:
        factory = _BENCHMARKS.get(args.benchmark)
        if factory is None:
            raise SystemExit(
                f"unknown benchmark {args.benchmark!r}; "
                f"choose from {sorted(_BENCHMARKS)} or 'random'"
            )
        circuit = factory()
    comparison = compare(circuit, machine, simulate=True)
    for label, result, report in (
        ("baseline [7]", comparison.baseline, comparison.baseline_report),
        ("this work", comparison.optimized, comparison.optimized_report),
    ):
        print(f"== {label} ==")
        print(" ", result.summary())
        print(" ", schedule_summary(result.schedule))
        assert report is not None
        print(
            f"  log10 fidelity = {report.log10_fidelity:.2f}, "
            f"duration = {report.duration * 1e3:.2f} ms, "
            f"max nbar = {report.max_nbar:.2f}"
        )
    print(
        f"shuttle reduction: {comparison.shuttle_reduction_percent:.2f}%  "
        f"fidelity improvement: {comparison.fidelity_improvement:.2f}X"
    )
    if args.trace:
        print()
        print(shuttle_trace(comparison.optimized.schedule, limit=args.trace))
    return 0


def _cmd_info(args) -> int:
    machine = _machine_from_args(args)
    print(machine)
    print(render_topology(machine))
    print()
    chains = {
        t: list(
            range(
                sum(machine.trap(u).load_capacity for u in range(t)),
                sum(machine.trap(u).load_capacity for u in range(t + 1)),
            )
        )
        for t in range(machine.num_traps)
    }
    print(render_chains(machine, chains, label="fully loaded example:"))
    print()
    for config in (CompilerConfig.baseline(), CompilerConfig.optimized()):
        print(f"{config.name}: {config}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Muzzle the Shuttle' (DATE 2022): "
            "shuttle-efficient QCCD compilation."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, doc in (
        ("table2", _cmd_table2, "regenerate Table II (shuttle reduction)"),
        ("table3", _cmd_table3, "regenerate Table III (compile time)"),
        ("fig8", _cmd_fig8, "regenerate Fig. 8 (fidelity improvement)"),
        ("ablation", _cmd_ablation, "run the E4/E5 ablation studies"),
        ("info", _cmd_info, "describe machine and compiler configs"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_common(p)
        p.set_defaults(handler=handler)

    p = sub.add_parser("compile", help="compile one benchmark, show stats")
    _add_common(p)
    p.add_argument(
        "benchmark",
        help=f"one of {sorted(_BENCHMARKS)} or 'random'",
    )
    p.add_argument("--qubits", type=int, help="random: register size")
    p.add_argument("--gates", type=int, help="random: 2q gate count")
    p.add_argument("--seed", type=int, default=1, help="random: seed")
    p.add_argument(
        "--trace", type=int, default=0, help="print first N shuttle ops"
    )
    p.set_defaults(handler=_cmd_compile)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
