"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands
--------
``table2``   regenerate Table II (shuttle reduction)
``table3``   regenerate Table III (compile-time overhead)
``fig8``     regenerate Fig. 8 (fidelity improvement)
``ablation`` run the E4/E5 ablation studies
``compile``  compile one benchmark and print its statistics
``optimize`` run the post-compilation pass pipeline on one benchmark
``sweep``    batch-compile a circuits x machines x configs grid
``load``     run a load scenario / soak — in-process, or against a
             live serve endpoint with ``--target``
``serve``    run the hardened compilation service (HTTP + job queue)
``info``     describe the machine model, compiler configs, passes and
             serve presets

``load`` and ``sweep`` handle SIGINT gracefully: the first Ctrl-C
stops dispatching, drains in-flight work, emits the partial report
(marked ``interrupted``) and exits 130.

Use ``--full`` (or ``REPRO_FULL=1``) for the complete 120-circuit
random ensemble.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import os
import signal
import sys
import threading

from . import __version__, obs
from .obs.report import render_report
from .arch.presets import machine_from_spec
from .batch.cache import NullCache, ResultCache
from .batch.jobs import sweep
from .batch.records import build_records, write_csv, write_json
from .batch.runner import BatchRunner
from .bench.qaoa import qaoa_circuit
from .bench.qft import qft_circuit
from .bench.quadraticform import quadratic_form_circuit
from .bench.random_circuits import random_circuit
from .bench.squareroot import squareroot_circuit
from .bench.suite import nisq_suite, paper_suite
from .bench.supremacy import supremacy_circuit
from .compiler.config import CompilerConfig
from .eval.ablation import heuristic_ablation, proximity_sweep, render_sweep
from .loadgen import (
    PRESETS,
    LoadRunner,
    load_scenario,
    render_load_report,
)
from .resilience import CHAOS_PRESETS, load_fault_plan
from .serve import (
    SERVE_PRESETS,
    RateLimit,
    ServeConfig,
    ServeUnavailable,
    load_serve_config,
    run_server,
)
from .eval.figure8 import render_figure8
from .eval.harness import compare, run_suite
from .eval.report import render_optimization_table, render_table
from .eval.table2 import overall_reduction, render_table2, wins_everywhere
from .eval.table3 import render_table3
from .passes import PassManager, available_passes, resolve_pass_names
from .sim.simulator import Simulator
from .viz.timeline import schedule_summary, shuttle_trace, timeline_diff
from .viz.trapview import render_chains, render_topology

logger = logging.getLogger(__name__)


def _setup_logging(verbose: bool, quiet: bool) -> None:
    """One root logging configuration for the whole CLI.

    Diagnostics (sweep progress, batch internals) go through module
    loggers to stderr; stdout stays reserved for the actual reports.
    ``force=True`` rebinds handlers to the *current* stderr on every
    invocation, so repeated in-process calls (tests) stay capturable.
    """
    level = logging.INFO
    if quiet:
        level = logging.WARNING
    if verbose:
        level = logging.DEBUG
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )

_BENCHMARKS = {
    "supremacy": supremacy_circuit,
    "qaoa": qaoa_circuit,
    "squareroot": squareroot_circuit,
    "qft": qft_circuit,
    "quadraticform": quadratic_form_circuit,
}

_SWEEP_CONFIGS = {
    "baseline": CompilerConfig.baseline,
    "optimized": CompilerConfig.optimized,
}


def _parse_machine(spec: str) -> object:
    """One machine spec: ``l6``, ``linearN``, ``ringN`` or ``gridRxC``."""
    try:
        return machine_from_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _machine_from_args(args) -> object:
    return _parse_machine(args.machine)


def _parse_benchmark(spec: str):
    """One circuit spec: a named benchmark or ``random[:Q[:G[:S]]]``."""
    if spec == "random" or spec.startswith("random:"):
        parts = spec.split(":")[1:]
        if len(parts) > 3:
            raise SystemExit(f"bad random spec {spec!r} (random[:Q[:G[:S]]])")
        try:
            qubits = int(parts[0]) if len(parts) > 0 else 64
            gates = int(parts[1]) if len(parts) > 1 else 1438
            seed = int(parts[2]) if len(parts) > 2 else 1
        except ValueError:
            raise SystemExit(f"bad random spec {spec!r} (random[:Q[:G[:S]]])")
        return random_circuit(qubits, gates, seed)
    factory = _BENCHMARKS.get(spec)
    if factory is None:
        raise SystemExit(
            f"unknown benchmark {spec!r}; "
            f"choose from {sorted(_BENCHMARKS)} or 'random[:Q[:G[:S]]]'"
        )
    return factory()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        default="l6",
        help="machine preset: l6 (default), linearN, ringN, gridRxC",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full 120-circuit random ensemble",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables (for EXPERIMENTS.md)",
    )


def _cmd_table2(args) -> int:
    machine = _machine_from_args(args)
    comparisons = run_suite(
        machine=machine, simulate=False, full=args.full or None, verbose=True
    )
    print()
    print(render_table2(comparisons, markdown=args.markdown))
    print()
    print(f"average reduction: {overall_reduction(comparisons):.1f}%")
    print(f"fewer shuttles on every circuit: {wins_everywhere(comparisons)}")
    return 0


def _cmd_table3(args) -> int:
    machine = _machine_from_args(args)
    comparisons = run_suite(
        machine=machine, simulate=False, full=args.full or None
    )
    print(render_table3(comparisons, markdown=args.markdown))
    return 0


def _cmd_fig8(args) -> int:
    machine = _machine_from_args(args)
    comparisons = run_suite(
        machine=machine, simulate=True, full=args.full or None
    )
    print(render_figure8(comparisons, markdown=args.markdown))
    return 0


def _cmd_ablation(args) -> int:
    machine = _machine_from_args(args)
    circuits = nisq_suite()
    print("E4: gate-proximity sweep (mean over the NISQ suite)")
    print(render_sweep(proximity_sweep(circuits, machine), "proximity"))
    print()
    print("E5: per-heuristic ablation")
    print(render_sweep(heuristic_ablation(circuits, machine), "variant"))
    return 0


def _parse_pass_list(spec: str | None) -> tuple[str, ...]:
    """Validate a comma list of pass names ('' / None -> no passes)."""
    if not spec:
        return ()
    try:
        return resolve_pass_names(
            [name for name in spec.split(",") if name]
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _cmd_compile(args) -> int:
    machine = _machine_from_args(args)
    if args.benchmark == "random":
        circuit = random_circuit(args.qubits or 64, args.gates or 1438, args.seed)
    else:
        factory = _BENCHMARKS.get(args.benchmark)
        if factory is None:
            raise SystemExit(
                f"unknown benchmark {args.benchmark!r}; "
                f"choose from {sorted(_BENCHMARKS)} or 'random'"
            )
        circuit = factory()
    passes = _parse_pass_list(args.passes)
    comparison = compare(
        circuit,
        machine,
        baseline_config=CompilerConfig.baseline().variant(
            post_passes=passes
        ),
        optimized_config=CompilerConfig.optimized().variant(
            post_passes=passes
        ),
        simulate=True,
    )
    for label, result, report in (
        ("baseline [7]", comparison.baseline, comparison.baseline_report),
        ("this work", comparison.optimized, comparison.optimized_report),
    ):
        print(f"== {label} ==")
        print(" ", result.summary())
        print(" ", schedule_summary(result.schedule))
        assert report is not None
        print(
            f"  log10 fidelity = {report.log10_fidelity:.2f}, "
            f"duration = {report.duration * 1e3:.2f} ms, "
            f"max nbar = {report.max_nbar:.2f}"
        )
    print(
        f"shuttle reduction: {comparison.shuttle_reduction_percent:.2f}%  "
        f"fidelity improvement: {comparison.fidelity_improvement:.2f}X"
    )
    if args.trace:
        print()
        print(shuttle_trace(comparison.optimized.schedule, limit=args.trace))
    return 0


def _cmd_optimize(args) -> int:
    """Compile one benchmark, then run the pass pipeline explicitly and
    report per-pass deltas plus the raw-vs-optimized comparison."""
    machine = _machine_from_args(args)
    circuit = _parse_benchmark(args.benchmark)
    config = (
        CompilerConfig.baseline()
        if args.config == "baseline"
        else CompilerConfig.optimized()
    )
    from .compiler.compiler import compile_circuit

    result = compile_circuit(circuit, machine, config)
    passes = _parse_pass_list(args.passes) or None
    manager = PassManager(passes, fidelity_guard=not args.no_guard)
    optimization = manager.run(
        result.schedule, machine, result.initial_chains
    )

    headers = [
        "pass", "rewrites", "shuttles", "splits", "merges", "ops",
        "status",
    ]
    rows = []
    for stats in optimization.passes:
        if stats.reverted:
            status = "reverted"
        elif stats.rewrites:
            status = "applied"
        else:
            status = "no-op"
        rows.append(
            [
                stats.name,
                str(stats.rewrites),
                str(-stats.shuttles_removed),
                str(-stats.splits_removed),
                str(-stats.merges_removed),
                str(-stats.ops_removed),
                status,
            ]
        )
    print(f"{circuit.name} [{config.name}] on {machine.name}")
    print(render_table(headers, rows))
    print()

    simulator = Simulator(machine)
    raw_report = simulator.run(
        optimization.raw_schedule, result.initial_chains
    )
    opt_report = simulator.run(
        optimization.schedule, result.initial_chains
    )
    print(
        render_optimization_table(
            [
                (
                    circuit.name,
                    optimization.raw_num_shuttles,
                    optimization.num_shuttles,
                    raw_report.log10_fidelity,
                    opt_report.log10_fidelity,
                )
            ],
            markdown=args.markdown,
        )
    )
    print(
        f"ops: {len(optimization.raw_schedule)} -> "
        f"{len(optimization.schedule)}, duration: "
        f"{raw_report.duration * 1e3:.2f} -> "
        f"{opt_report.duration * 1e3:.2f} ms"
    )
    print()
    print(optimization.summary())
    if args.diff:
        print()
        print(
            timeline_diff(
                optimization.raw_schedule,
                optimization.schedule,
                limit=args.diff,
            )
        )
    return 0


def _cmd_sweep(args) -> int:
    machines = [_parse_machine(s) for s in args.machines.split(",") if s]
    if args.benchmarks:
        circuits = [
            _parse_benchmark(s) for s in args.benchmarks.split(",") if s
        ]
    elif args.suite == "nisq":
        circuits = nisq_suite()
    else:
        circuits = paper_suite(full=args.suite == "paper-full" or None)
    passes = _parse_pass_list(args.passes)
    configs = []
    for name in args.configs.split(","):
        if not name:
            continue
        factory = _SWEEP_CONFIGS.get(name)
        if factory is None:
            raise SystemExit(
                f"unknown config {name!r}; choose from {sorted(_SWEEP_CONFIGS)}"
            )
        config = factory()
        if passes:
            config = config.variant(
                post_passes=passes, name=config.name + "+passes"
            )
        configs.append(config)
    for axis, flag in (
        (machines, "--machines"),
        (circuits, "--benchmarks"),
        (configs, "--configs"),
    ):
        if not axis:
            raise SystemExit(f"{flag} expanded to an empty list")

    jobs = sweep(circuits, machines, configs, simulate=args.simulate)

    if args.dry_run:
        headers = [
            "#", "circuit", "qubits", "2q gates", "machine", "config",
            "sim", "fingerprint",
        ]
        rows = [
            [str(index)] + job.describe() for index, job in enumerate(jobs)
        ]
        print(render_table(headers, rows))
        print(f"\n{len(jobs)} jobs (dry run: nothing compiled)")
        return 0

    cache = NullCache() if args.no_cache else ResultCache(args.cache_dir)

    def progress(done, total, job, job_result):
        if job_result.error is not None:
            status = "ERROR"
        elif job_result.cache_hit:
            status = f"{job_result.result.num_shuttles} shuttles (cached)"
        else:
            status = f"{job_result.result.num_shuttles} shuttles"
        logger.info("[%d/%d] %s: %s", done, total, job.label, status)

    # The sweep always runs observed (metrics only): the summary's cache
    # and per-phase lines read from the registry.  An observation that
    # is already active (--metrics-out) is reused rather than replaced.
    with _graceful_sigint() as interrupt:
        runner = BatchRunner(
            n_jobs=args.jobs, cache=cache, progress=progress,
            interrupt=interrupt,
        )
        observation = obs.active()
        if observation is not None:
            job_results = runner.run(jobs)
        else:
            with obs.observe() as observation:
                job_results = runner.run(jobs)
    records = build_records(jobs, job_results)

    headers = [
        "circuit", "machine", "config", "shuttles", "gate", "rebalance",
        "reorders", "cached",
    ]
    if passes:
        headers[4:4] = ["raw", "removed"]
    if args.simulate:
        headers[-1:-1] = ["log10 F", "duration ms"]
    rows = []
    for r in records:
        cells = [
            r.circuit,
            r.machine,
            r.config,
            str(r.num_shuttles) if r.ok else "ERROR",
        ]
        if passes:
            cells.append(
                str(r.raw_num_shuttles)
                if r.ok and r.raw_num_shuttles is not None
                else "-"
            )
            cells.append(
                str(r.shuttles_removed)
                if r.ok and r.shuttles_removed is not None
                else "-"
            )
        cells += [
            str(r.gate_shuttles) if r.ok else "-",
            str(r.rebalance_shuttles) if r.ok else "-",
            str(r.num_reorders) if r.ok else "-",
        ]
        if args.simulate:
            cells.append(f"{r.log10_fidelity:.2f}" if r.ok else "-")
            cells.append(f"{r.duration * 1e3:.2f}" if r.ok else "-")
        cells.append("yes" if r.cache_hit else "no")
        rows.append(cells)
    print()
    print(render_table(headers, rows))
    if args.no_cache:
        print("\ncache: disabled (--no-cache)")
    else:
        print(f"\ncache: {runner.cache_stats} at {args.cache_dir}")
    metrics = observation.metrics
    phases = [
        (label, metrics.total(name))
        for label, name in (
            ("compile", "phase.compile_seconds"),
            ("optimize", "phase.optimize_seconds"),
            ("simulate", "phase.simulate_seconds"),
        )
        if name in metrics.histograms
    ]
    if phases:
        print(
            "phases: "
            + "  ".join(f"{label} {secs:.2f}s" for label, secs in phases)
        )
    interrupted = [r for r in records if r.outcome == "interrupted"]
    failures = [
        r for r in records if not r.ok and r.outcome != "interrupted"
    ]
    if failures:
        print(f"\n{len(failures)} job(s) failed:")
        for record in failures:
            last = record.error.strip().splitlines()[-1]
            print(f"  {record.circuit} @ {record.machine}: {last}")
    if interrupted:
        print(
            f"\nINTERRUPTED: partial sweep — {len(interrupted)} job(s) "
            "never dispatched (outcome 'interrupted' in the records)"
        )
    if args.csv:
        write_csv(records, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        write_json(records, args.json)
        print(f"wrote {args.json}")
    if interrupted:
        return 130
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    """Compile one benchmark under full observability and report the
    span tree, the metrics registry and the decision-event stream."""
    machine = _machine_from_args(args)
    circuit = _parse_benchmark(args.benchmark)
    config = (
        CompilerConfig.baseline()
        if args.config == "baseline"
        else CompilerConfig.optimized()
    )
    passes = _parse_pass_list(args.passes)
    if passes:
        config = config.variant(post_passes=passes)
    from .compiler.compiler import compile_circuit

    with obs.observe(trace=True) as observation:
        result = compile_circuit(circuit, machine, config)

    if args.jsonl:
        count = observation.trace.write_jsonl(args.jsonl)
        logger.info("wrote %d events to %s", count, args.jsonl)
    if args.json:
        document = obs.export_json(observation)
        document["events"] = observation.trace.events
        print(json.dumps(document, indent=2))
        return 0
    title = (
        f"trace: {circuit.name} [{config.name}] on {machine.name}\n"
        f"  {result.summary()}"
    )
    print(render_report(observation, title, events=args.events))
    return 0


@contextlib.contextmanager
def _graceful_sigint():
    """Install a drain-on-SIGINT handler for the duration of a run.

    The first Ctrl-C sets the yielded :class:`threading.Event` —
    runners stop dispatching, drain in-flight work, and the command
    exits 130 with a partial-but-marked report instead of a bare
    traceback.  Off the main thread (in-process test harnesses) signal
    installation is impossible; the event is still yielded so callers
    can set it programmatically.
    """
    interrupt = threading.Event()

    def _on_sigint(signum, frame) -> None:
        logger.warning(
            "SIGINT: draining in-flight work (Ctrl-C again to kill)"
        )
        if interrupt.is_set():  # second Ctrl-C: give up gracefully-ness
            raise KeyboardInterrupt
        interrupt.set()

    try:
        previous = signal.signal(signal.SIGINT, _on_sigint)
    except ValueError:  # not the main thread
        previous = None
    try:
        yield interrupt
    finally:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)


def _cmd_load(args) -> int:
    """Run one load scenario and print/export its LoadReport."""
    try:
        scenario = load_scenario(args.scenario)
        chaos = load_fault_plan(args.chaos) if args.chaos else None
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    with _graceful_sigint() as interrupt:
        runner = LoadRunner(
            scenario,
            consumers=args.jobs,
            seed=args.seed,
            jobs=args.count,
            duration=args.duration,
            chaos=chaos,
            max_attempts=args.max_attempts,
            job_timeout=args.job_timeout,
            target=args.target,
            identity=args.identity,
            interrupt=interrupt,
        )
        logger.info(
            "load: scenario %s (%s loop, cache %s)%s",
            runner.scenario.name,
            runner.scenario.mode,
            runner.scenario.cache,
            f" against {args.target}" if args.target else "",
        )
        try:
            report = runner.run()
        except ServeUnavailable as exc:
            raise SystemExit(f"live mode failed: {exc}")
    print(render_load_report(report))
    if args.report_out:
        os.makedirs(os.path.dirname(args.report_out) or ".", exist_ok=True)
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.report_out}")
    failed = 0
    lost = report.resilience.get("lost", 0)
    if lost:
        # The invariant load runs exist to check: no submitted job may
        # vanish without a terminal result — in-process or live.
        logger.error("%d submitted job(s) lost without a terminal result", lost)
        failed = 1
    if args.soak and not report.passed:
        tripped = ", ".join(trip.name for trip in report.tripped)
        logger.error("soak degradation detected: %s", tripped)
        failed = 1
    if report.interrupted:
        logger.warning("run interrupted: partial report emitted")
        return 130
    return failed


def _parse_rate_limit(spec: str) -> RateLimit:
    """``LIMIT/WINDOW`` (e.g. ``30/10``: 30 admissions per 10 s)."""
    try:
        limit, _, window = spec.partition("/")
        return RateLimit(limit=int(limit), window_seconds=float(window))
    except ValueError as exc:
        raise SystemExit(
            f"bad --rate-limit {spec!r} (expected LIMIT/WINDOW_SECONDS, "
            f"e.g. 30/10): {exc}"
        )


def _cmd_serve(args) -> int:
    """Run the compilation service until SIGTERM/SIGINT, then drain."""
    try:
        config = (
            load_serve_config(args.config) if args.config else ServeConfig()
        )
        config = config.override(
            workers=args.workers,
            max_queue_depth=args.queue_depth,
            rate_limit=(
                _parse_rate_limit(args.rate_limit)
                if args.rate_limit
                else None
            ),
            job_timeout=args.job_timeout,
            max_attempts=args.max_attempts,
            drain_deadline=args.drain_deadline,
            job_ttl=args.job_ttl,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    cache = ResultCache(args.cache_dir) if args.cache_dir else NullCache()
    return run_server(config, host=args.host, port=args.port, cache=cache)


#: The serve API surface, as listed by ``repro info``.
_SERVE_ENDPOINTS = (
    ("POST /v1/jobs", "submit a JobSpec -> 202 + job id (429 shed/limit)"),
    ("GET /v1/jobs/<id>", "job status document"),
    ("GET /v1/jobs/<id>/result", "artifacts once done (ok jobs only)"),
    ("GET /v1/config", "the live ServeConfig document"),
    ("GET /healthz", "liveness - green even under overload"),
    ("GET /readyz", "readiness - 503 when saturated or draining"),
)


def _cmd_info(args) -> int:
    machine = _machine_from_args(args)
    print(machine)
    print(render_topology(machine))
    print()
    chains = {
        t: list(
            range(
                sum(machine.trap(u).load_capacity for u in range(t)),
                sum(machine.trap(u).load_capacity for u in range(t + 1)),
            )
        )
        for t in range(machine.num_traps)
    }
    print(render_chains(machine, chains, label="fully loaded example:"))
    print()
    for config in (CompilerConfig.baseline(), CompilerConfig.optimized()):
        print(f"{config.name}: {config}")
    print()
    print("post-compilation passes (--passes, repro optimize):")
    for name, description in available_passes():
        print(f"  {name}: {description}")
    print()
    print("serve endpoints (repro serve):")
    for route, description in _SERVE_ENDPOINTS:
        print(f"  {route:<26} {description}")
    print()
    print("serve presets (repro serve --config <name>):")
    for name in sorted(SERVE_PRESETS):
        print(f"  {name}: {SERVE_PRESETS[name].describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Muzzle the Shuttle' (DATE 2022): "
            "shuttle-efficient QCCD compilation."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug-level diagnostics on stderr",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress diagnostics (warnings only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, doc in (
        ("table2", _cmd_table2, "regenerate Table II (shuttle reduction)"),
        ("table3", _cmd_table3, "regenerate Table III (compile time)"),
        ("fig8", _cmd_fig8, "regenerate Fig. 8 (fidelity improvement)"),
        ("ablation", _cmd_ablation, "run the E4/E5 ablation studies"),
        ("info", _cmd_info, "describe machine and compiler configs"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_common(p)
        p.set_defaults(handler=handler)

    p = sub.add_parser("compile", help="compile one benchmark, show stats")
    _add_common(p)
    p.add_argument(
        "benchmark",
        help=f"one of {sorted(_BENCHMARKS)} or 'random'",
    )
    p.add_argument("--qubits", type=int, help="random: register size")
    p.add_argument("--gates", type=int, help="random: 2q gate count")
    p.add_argument("--seed", type=int, default=1, help="random: seed")
    p.add_argument(
        "--trace", type=int, default=0, help="print first N shuttle ops"
    )
    p.add_argument(
        "--passes",
        default=None,
        metavar="LIST",
        help="comma list of post-compilation passes applied to both "
        "configs ('default' = full pipeline; see 'repro info')",
    )
    _add_metrics_out(p)
    p.set_defaults(handler=_cmd_compile)

    p = sub.add_parser(
        "optimize",
        help="run the post-compilation pass pipeline on one benchmark",
    )
    _add_common(p)
    p.add_argument(
        "benchmark",
        help=f"one of {sorted(_BENCHMARKS)} or 'random[:Q[:G[:S]]]'",
    )
    p.add_argument(
        "--config",
        default="optimized",
        choices=["baseline", "optimized"],
        help="compiler configuration to optimize the output of",
    )
    p.add_argument(
        "--passes",
        default=None,
        metavar="LIST",
        help="comma list of passes to run (default: the full pipeline; "
        "see 'repro info' for the catalogue)",
    )
    p.add_argument(
        "--no-guard",
        action="store_true",
        help="skip the per-pass fidelity-regression rollback",
    )
    p.add_argument(
        "--diff",
        type=int,
        default=0,
        metavar="N",
        help="print the first N lines of the before/after timeline diff",
    )
    _add_metrics_out(p)
    p.set_defaults(handler=_cmd_optimize)

    p = sub.add_parser(
        "trace",
        help="compile one benchmark with observability on and report "
        "phase spans, metrics and decision events",
    )
    p.add_argument(
        "benchmark",
        help=f"one of {sorted(_BENCHMARKS)} or 'random[:Q[:G[:S]]]'",
    )
    p.add_argument(
        "--machine",
        default="l6",
        help="machine preset: l6 (default), linearN, ringN, gridRxC",
    )
    p.add_argument(
        "--config",
        default="optimized",
        choices=["baseline", "optimized"],
        help="compiler configuration to trace",
    )
    p.add_argument(
        "--passes",
        default=None,
        metavar="LIST",
        help="comma list of post-compilation passes ('default' = full "
        "pipeline; see 'repro info')",
    )
    p.add_argument(
        "--events",
        type=int,
        default=12,
        metavar="N",
        help="decision events shown in the text report (default 12)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the whole observation (metrics, spans, events) as "
        "JSON on stdout instead of the text report",
    )
    p.add_argument(
        "--jsonl",
        metavar="PATH",
        help="additionally write the decision-event stream as JSON Lines",
    )
    p.set_defaults(handler=_cmd_trace)

    p = sub.add_parser(
        "load",
        help="run a load scenario / soak against the batch engine",
        description=(
            "Generate scenario-driven traffic through the batch "
            "engine and report throughput windows, tail latency "
            "(p50/p90/p99), cache hit rate and memory growth. "
            f"Bundled presets: {', '.join(sorted(PRESETS))}."
        ),
    )
    p.add_argument(
        "scenario",
        help=f"a preset ({', '.join(sorted(PRESETS))}) or a scenario "
        "JSON file (see repro.loadgen.Scenario.to_dict)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's consumer count (0 = one per CPU)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the scenario seed (job draws are deterministic "
        "per seed)",
    )
    volume = p.add_mutually_exclusive_group()
    volume.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="override traffic volume with a job count",
    )
    volume.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override traffic volume with a duration",
    )
    p.add_argument(
        "--soak",
        action="store_true",
        help="exit 1 when a degradation threshold trips (memory "
        "growth, latency drift, throughput sag)",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="inject faults from a plan — a preset "
        f"({', '.join(sorted(CHAOS_PRESETS))}) or a FaultPlan JSON "
        "file; exits 1 if any job is lost without a terminal result",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's per-job attempt budget "
        "(1 = no retries)",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the scenario's per-job wall-clock budget",
    )
    p.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the LoadReport JSON to PATH",
    )
    p.add_argument(
        "--target",
        default=None,
        metavar="URL",
        help="live mode: replay the scenario against a running "
        "'repro serve' endpoint (e.g. http://127.0.0.1:8765) instead "
        "of executing in-process; shed/rate-limited responses are "
        "counted as refusals, not errors",
    )
    p.add_argument(
        "--identity",
        default=None,
        metavar="NAME",
        help="live mode: the X-Repro-Identity rate-limit key "
        "(default loadgen-<seed>)",
    )
    _add_metrics_out(p)
    p.set_defaults(handler=_cmd_load)

    p = sub.add_parser(
        "serve",
        help="run the hardened compilation service (HTTP + job queue)",
        description=(
            "Serve compilation over HTTP: bounded admission queue with "
            "load shedding (429 + Retry-After), per-identity "
            "sliding-window rate limiting, supervised workers with "
            "deadlines and retries, health/readiness endpoints, and "
            "graceful drain on SIGTERM. Presets: "
            f"{', '.join(sorted(SERVE_PRESETS))}."
        ),
    )
    p.add_argument(
        "--config",
        default=None,
        metavar="SPEC",
        help="a bundled preset "
        f"({', '.join(sorted(SERVE_PRESETS))}) or a ServeConfig JSON "
        "file; individual flags below override its fields",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="supervised worker processes",
    )
    p.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="admitted-but-unfinished jobs beyond which submissions "
        "are shed with 429",
    )
    p.add_argument(
        "--rate-limit", default=None, metavar="LIMIT/WINDOW",
        help="per-identity sliding window, e.g. 30/10 = 30 admissions "
        "per 10 seconds",
    )
    p.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock budget (a spec's own deadline "
        "overrides it)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="attempt budget per job (1 = no retries)",
    )
    p.add_argument(
        "--drain-deadline", type=float, default=None, metavar="SECONDS",
        help="seconds drain mode waits for in-flight jobs before "
        "hard-stop",
    )
    p.add_argument(
        "--job-ttl", type=float, default=None, metavar="SECONDS",
        help="seconds a finished job stays fetchable before expiry",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed result cache directory (default: no "
        "cache)",
    )
    _add_metrics_out(p)
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "sweep",
        help="batch-compile a circuits x machines x configs grid",
    )
    p.add_argument(
        "--machines",
        default="l6",
        help="comma list of machine specs: l6,linearN,ringN,gridRxC",
    )
    p.add_argument(
        "--suite",
        default="nisq",
        choices=["nisq", "paper", "paper-full"],
        help="circuit set: the 5 NISQ benchmarks (default), the paper "
        "suite, or the paper suite with the full random ensemble",
    )
    p.add_argument(
        "--benchmarks",
        default=None,
        help="comma list overriding --suite: "
        f"{','.join(sorted(_BENCHMARKS))} or random[:Q[:G[:S]]]",
    )
    p.add_argument(
        "--configs",
        default="baseline,optimized",
        help="comma list of compiler configs: baseline,optimized",
    )
    p.add_argument(
        "--passes",
        default=None,
        metavar="LIST",
        help="comma list of post-compilation passes threaded into "
        "every config ('default' = full pipeline; see 'repro info')",
    )
    p.add_argument(
        "--simulate",
        action="store_true",
        help="also simulate each compiled schedule (fidelity columns)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = one per CPU)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="content-addressed result cache directory",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    p.add_argument("--csv", metavar="PATH", help="write flat records as CSV")
    p.add_argument("--json", metavar="PATH", help="write flat records as JSON")
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded job list without compiling",
    )
    _add_metrics_out(p)
    p.set_defaults(handler=_cmd_sweep)

    return parser


def _add_metrics_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="run under observability and write the metrics registry "
        "and span tree as JSON to PATH",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    _setup_logging(args.verbose, args.quiet)
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        return args.handler(args)
    with obs.observe() as observation:
        code = args.handler(args)
    os.makedirs(os.path.dirname(metrics_out) or ".", exist_ok=True)
    with open(metrics_out, "w", encoding="utf-8") as handle:
        json.dump(obs.export_json(observation), handle, indent=2)
        handle.write("\n")
    print(f"wrote {metrics_out}")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
