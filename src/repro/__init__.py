"""repro — reproduction of "Muzzle the Shuttle" (DATE 2022).

Shuttle-efficient compilation for multi-trap trapped-ion (QCCD) quantum
computers: the paper's three compiler heuristics (future-ops shuttle
direction, opportunistic gate re-ordering, nearest-neighbour-first
re-balancing), the Murali et al. ISCA'20 baseline compiler they improve
upon, a QCCD heating/fidelity simulator, the paper's benchmark suite,
and harnesses regenerating Table II, Table III and Fig. 8.

Quickstart::

    from repro import Circuit, CompilerConfig, compile_circuit, l6_machine

    circuit = Circuit(6).add("ms", 0, 1).add("ms", 2, 3).add("ms", 2, 0)
    machine = l6_machine()
    result = compile_circuit(circuit, machine, CompilerConfig.optimized())
    print(result.num_shuttles)
"""

from .arch import (
    QCCDMachine,
    TrapSpec,
    TrapTopology,
    grid_machine,
    grid_topology,
    l6_machine,
    linear_machine,
    linear_topology,
    ring_machine,
    ring_topology,
    uniform_machine,
)
from .batch import (
    BatchRunner,
    CompileJob,
    JobResult,
    NullCache,
    ResultCache,
    SweepRecord,
    sweep,
)
from .circuits import (
    Circuit,
    DependencyDAG,
    Gate,
    circuit_to_qasm,
    decompose_circuit,
    dump_qasm,
    load_qasm,
    parse_qasm,
)
from .compiler import (
    CompilationError,
    CompilationResult,
    CompilerConfig,
    QCCDCompiler,
    compile_and_simulate,
    compile_circuit,
    greedy_initial_mapping,
)
from .core import (
    ClockObserver,
    HeatingObserver,
    MachineModelError,
    MachineState,
    OccupancyTraceObserver,
)
from .obs import (
    MetricsRegistry,
    Observation,
    SpanRecorder,
    TraceRecorder,
)
from . import obs
from .passes import (
    OptimizationResult,
    PassManager,
    PassStats,
    available_passes,
    optimize_schedule,
    verify_schedule,
)
from .sim import (
    MachineParams,
    NoiseParams,
    Schedule,
    SimulationReport,
    Simulator,
    TimingParams,
)

__version__ = "1.0.0"

__all__ = [
    "BatchRunner",
    "Circuit",
    "ClockObserver",
    "CompilationError",
    "CompilationResult",
    "CompileJob",
    "CompilerConfig",
    "DependencyDAG",
    "Gate",
    "HeatingObserver",
    "JobResult",
    "MachineModelError",
    "MachineState",
    "NullCache",
    "OccupancyTraceObserver",
    "ResultCache",
    "SweepRecord",
    "MachineParams",
    "MetricsRegistry",
    "NoiseParams",
    "Observation",
    "OptimizationResult",
    "PassManager",
    "PassStats",
    "QCCDCompiler",
    "QCCDMachine",
    "Schedule",
    "SimulationReport",
    "Simulator",
    "SpanRecorder",
    "TimingParams",
    "TraceRecorder",
    "TrapSpec",
    "TrapTopology",
    "__version__",
    "available_passes",
    "circuit_to_qasm",
    "compile_and_simulate",
    "compile_circuit",
    "decompose_circuit",
    "dump_qasm",
    "greedy_initial_mapping",
    "grid_machine",
    "grid_topology",
    "l6_machine",
    "linear_machine",
    "linear_topology",
    "load_qasm",
    "obs",
    "optimize_schedule",
    "parse_qasm",
    "verify_schedule",
    "ring_machine",
    "ring_topology",
    "sweep",
    "uniform_machine",
]
