"""Declarative compilation jobs and cartesian sweep expansion.

A :class:`CompileJob` is the unit of work of the batch engine: one
circuit compiled onto one machine under one compiler configuration,
optionally simulated under one parameter set.  Jobs are plain data —
picklable (so they cross :mod:`multiprocessing` boundaries) and
content-fingerprintable (so results are cacheable across runs).

:func:`sweep` expands the experiment grids the paper is built from
(circuits x machines x configs x params) into a deterministic job
list; every axis accepts either a single object or an iterable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..arch.machine import QCCDMachine
from ..circuits.circuit import Circuit
from ..compiler.config import CompilerConfig
from ..compiler.mapping import greedy_initial_mapping
from ..sim.params import DEFAULT_PARAMS, MachineParams
from .fingerprint import FINGERPRINT_VERSION, fingerprint


@dataclass(frozen=True)
class CompileJob:
    """One (circuit, machine, config, params) compilation task.

    Parameters
    ----------
    circuit:
        Input circuit.
    machine:
        Target machine model.
    config:
        Compiler heuristics to use.
    params:
        Timing/noise parameters (only consulted when ``simulate``).
    simulate:
        Also replay the compiled schedule through the simulator.
    initial_chains:
        Optional explicit initial mapping; ``None`` means the greedy
        initial mapping is computed inside the worker (deterministic,
        so equal jobs still produce equal results).
    deadline:
        Optional per-job wall-clock budget in seconds, enforced by the
        resilient runner (worker-side ``SIGALRM`` guard plus a
        parent-side kill backstop); overrides the runner-level
        ``timeout``.  ``None`` defers to the runner.
    """

    circuit: Circuit
    machine: QCCDMachine
    config: CompilerConfig
    params: MachineParams = field(default=DEFAULT_PARAMS)
    simulate: bool = False
    initial_chains: dict[int, list[int]] | None = None
    #: Execution budget, not a compilation input: deliberately excluded
    #: from :meth:`fingerprint`, so the same job with a different
    #: deadline still hits the same cache entry.
    deadline: float | None = None

    @property
    def label(self) -> str:
        """Human-readable job identity used in progress lines."""
        return f"{self.circuit.name} @ {self.machine.name} / {self.config.name}"

    def fingerprint(self) -> str:
        """Content hash of every compilation input (never of outputs)."""
        return fingerprint(
            {
                "version": FINGERPRINT_VERSION,
                "circuit": self.circuit,
                "machine": self.machine,
                "config": self.config,
                "params": self.params if self.simulate else None,
                "simulate": self.simulate,
                "initial_chains": self.initial_chains,
            }
        )

    def describe(self) -> list[str]:
        """Row cells for ``repro sweep --dry-run`` listings."""
        return [
            self.circuit.name,
            str(self.circuit.num_qubits),
            str(self.circuit.num_two_qubit_gates),
            self.machine.name,
            self.config.name,
            "yes" if self.simulate else "no",
            self.fingerprint()[:12],
        ]


def _as_list(value: Any, kind: type) -> list:
    """Normalize a single object or an iterable into a list."""
    if isinstance(value, kind):
        return [value]
    if isinstance(value, Iterable):
        items = list(value)
        for item in items:
            if not isinstance(item, kind):
                raise TypeError(
                    f"expected {kind.__name__}, got {type(item).__name__}"
                )
        return items
    raise TypeError(
        f"expected {kind.__name__} or iterable of them, "
        f"got {type(value).__name__}"
    )


def sweep(
    circuits: Circuit | Iterable[Circuit],
    machines: QCCDMachine | Iterable[QCCDMachine],
    configs: CompilerConfig | Iterable[CompilerConfig],
    params: MachineParams | Iterable[MachineParams] = DEFAULT_PARAMS,
    simulate: bool = False,
) -> list[CompileJob]:
    """Expand a cartesian grid into a deterministic job list.

    Nesting order (outer to inner): circuit, machine, config, params —
    so all configs of one circuit/machine pair are adjacent, which is
    what paired baseline-vs-optimized analyses expect.
    """
    circuit_list = _as_list(circuits, Circuit)
    machine_list = _as_list(machines, QCCDMachine)
    config_list = _as_list(configs, CompilerConfig)
    params_list = _as_list(params, MachineParams)
    if not (circuit_list and machine_list and config_list and params_list):
        raise ValueError("every sweep axis needs at least one element")
    jobs: list[CompileJob] = []
    for circuit in circuit_list:
        for machine in machine_list:
            for config in config_list:
                for machine_params in params_list:
                    jobs.append(
                        CompileJob(
                            circuit=circuit,
                            machine=machine,
                            config=config,
                            params=machine_params,
                            simulate=simulate,
                        )
                    )
    return jobs


def paired_jobs(
    circuits: Sequence[Circuit],
    machine: QCCDMachine,
    baseline_config: CompilerConfig,
    optimized_config: CompilerConfig,
    params: MachineParams = DEFAULT_PARAMS,
    simulate: bool = False,
) -> list[CompileJob]:
    """The harness grid: per circuit, the baseline job then the
    optimized job (indices ``2*i`` and ``2*i + 1``).

    The greedy initial mapping is computed once per circuit and pinned
    on both jobs — the paper's methodology (both compilers start from
    the identical placement) and half the mapping work of leaving each
    job to derive it.
    """
    jobs: list[CompileJob] = []
    for circuit in circuits:
        chains = greedy_initial_mapping(circuit, machine)
        for config in (baseline_config, optimized_config):
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    machine=machine,
                    config=config,
                    params=params,
                    simulate=simulate,
                    initial_chains=chains,
                )
            )
    return jobs
