"""On-disk content-addressed result store.

Entries are keyed by job fingerprint (:mod:`repro.batch.fingerprint`)
and laid out git-style — ``<root>/<fp[:2]>/<fp[2:]>.pkl`` — so a warm
directory stays listable.  Values are pickled
:class:`~repro.batch.runner.JobResult` payloads (schedule included, so
a hit is a full replay, not just summary numbers).

Writes are atomic (temp file + ``os.replace``) so a killed sweep never
leaves a truncated entry; unreadable/corrupt entries degrade to misses
*and are quarantined* (sidecar-renamed to ``*.pkl.corrupt``, or
unlinked when even that fails) so one bad file costs one miss, not a
failed read on every future lookup.  :class:`NullCache` is the
``--no-cache`` escape hatch: same interface, never stores anything.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs import active as _obs_active


@dataclass
class CacheStats:
    """Hit/miss accounting for one runner pass (or cache lifetime)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries quarantined because their file would not load.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100.0:.0f}% hit rate, {self.puts} stored)"
        )
        if self.corrupt:
            text += f", {self.corrupt} corrupt quarantined"
        return text


class NullCache:
    """A cache that never stores: every lookup is a miss."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> Any | None:
        """Always a miss."""
        self.stats.misses += 1
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc("cache.misses")
        return None

    def put(self, key: str, value: Any) -> None:
        """Discard ``value``."""


class ResultCache:
    """Content-addressed pickle store rooted at ``root``."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return self.root / key[:2] / f"{key[2:]}.pkl"

    def get(self, key: str) -> Any | None:
        """Return the stored value, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            obs = _obs_active()
            if obs is not None:
                obs.metrics.inc("cache.misses")
            return None
        except Exception:
            # Unreadable, truncated, or stale (e.g. pickled against a
            # renamed class/module) entries are misses, never crashes —
            # and the offending file is quarantined so it fails exactly
            # once instead of on every future lookup.
            self._quarantine(path)
            self.stats.misses += 1
            self.stats.corrupt += 1
            obs = _obs_active()
            if obs is not None:
                obs.metrics.inc("cache.misses")
                obs.metrics.inc("cache.corrupt")
            return None
        self.stats.hits += 1
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc("cache.hits")
        return value

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move an unreadable entry aside (``*.pkl.corrupt`` sidecar —
        outside the ``*.pkl`` globs, so it neither counts as an entry
        nor gets retried), falling back to unlink."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # ``.part`` suffix: a writer killed mid-write leaves a temp
        # file that no ``*.pkl`` glob (``__len__``/``clear``) can ever
        # mistake for an entry (pathlib globs DO match dotfiles).
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        obs = _obs_active()
        if obs is not None:
            obs.metrics.inc("cache.puts")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        """Number of stored entries (walks the directory)."""
        if not self.root.exists():
            return 0
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir()
            for entry in shard.glob("*.pkl")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for entry in shard.glob("*.pkl"):
                entry.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
