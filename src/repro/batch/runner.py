"""Parallel batch executor with cache integration.

:class:`BatchRunner` turns a list of :class:`~repro.batch.jobs.CompileJob`
into a list of :class:`JobResult`, in job order, regardless of worker
completion order.  Guarantees:

* **Determinism** — results land at the index of their job; a parallel
  run is element-wise identical to a serial run of the same jobs.
* **Error isolation** — a failing job produces a ``JobResult`` carrying
  the formatted traceback; the rest of the sweep proceeds.
* **Caching** — fingerprints are checked against the
  :class:`~repro.batch.cache.ResultCache` *before* dispatch (a warm
  cache performs zero compilations), and fresh successes are stored
  after completion.  Identical jobs inside one run are compiled once
  and fanned out.
* **Progress** — an optional callback fires in the parent process as
  each job resolves.

Workers are plain :mod:`multiprocessing` pool processes (``fork`` where
available, ``spawn`` otherwise); jobs and results cross the boundary by
pickling, which every model object supports.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import queue
import sys
import threading
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from time import perf_counter, sleep

from ..compiler.compiler import QCCDCompiler
from ..compiler.mapping import greedy_initial_mapping
from ..compiler.result import CompilationResult
from ..obs import active as _obs_active
from ..obs import collect as _obs_collect
# Only the dependency-free half of repro.resilience (faults/policy) may
# be imported here — the pool/supervisor layers import this module back.
from ..resilience.faults import (
    FAULT_ERROR,
    FAULT_STALL,
    FaultPlan,
    InjectedFaultError,
    JobTimeoutError,
)
from ..resilience.policy import RetryPolicy
from ..sim.simulator import SimulationReport, Simulator
from .cache import CacheStats, NullCache, ResultCache
from .jobs import CompileJob

logger = logging.getLogger(__name__)

#: Progress callback signature: (done, total, job, result).
ProgressCallback = Callable[[int, int, CompileJob, "JobResult"], None]


@dataclass
class JobResult:
    """Outcome of one job: a result or an error, never both."""

    job_index: int
    fingerprint: str
    result: CompilationResult | None
    report: SimulationReport | None = None
    error: str | None = None
    #: The original exception object when it survives pickling (so
    #: callers can re-raise the real type, e.g. CompilationError);
    #: ``error`` always carries the formatted traceback regardless.
    exception: Exception | None = None
    cache_hit: bool = False
    #: Worker-side metrics snapshot (:meth:`MetricsRegistry.snapshot`)
    #: when the job ran under an active observation; merged into the
    #: parent registry by the runner and stripped before caching and
    #: fan-out, so cached and fresh results compare equal.
    metrics: dict | None = None
    #: Wall seconds the executing process spent on the job (service
    #: time) — recorded for failures too, so load reports can count
    #: errored work.  Stripped before caching (a hit's service time is
    #: the lookup, not the recorded compile).
    seconds: float | None = None
    #: Terminal classification: ``ok`` / ``failed`` / ``timeout`` /
    #: ``crashed`` / ``poisoned`` / ``interrupted``.  Plain failures
    #: and successes are set by the worker; ``crashed`` / ``poisoned``
    #: (and parent-kill timeouts) only arise under the resilient
    #: supervisor; ``interrupted`` marks jobs never dispatched because
    #: the run was interrupted (SIGINT) mid-drain.
    outcome: str = "ok"
    #: Attempts consumed to reach this terminal result (1 = no retry).
    attempts: int = 1
    #: Wall seconds of every attempt, dispatch to settlement, in order;
    #: ``None`` outside the resilient path.  The last entry matches
    #: :attr:`seconds` when the final attempt returned a result.
    attempt_seconds: tuple[float, ...] | None = None

    @property
    def ok(self) -> bool:
        """True when the job compiled (and simulated) successfully."""
        return self.error is None and self.result is not None


@dataclass
class TimedResult:
    """One :meth:`BatchRunner.run_timed` outcome with its timeline.

    All times are seconds relative to the run's start.  ``sojourn`` is
    the latency a load generator reports for an open-loop request:
    scheduled arrival to completion, queueing included.  For closed
    loops (every arrival at 0) use :attr:`JobResult.seconds` — the
    service time — instead.
    """

    result: JobResult
    arrival: float
    #: When the parent picked the job up (cache lookup / pool submit);
    #: ``finished - dispatched`` bounds a cache hit's parent-side cost.
    dispatched: float
    finished: float

    @property
    def sojourn(self) -> float:
        """Arrival-to-completion latency (wait + service)."""
        return self.finished - self.arrival


class BatchError(RuntimeError):
    """Raised by :meth:`BatchRunner.run` with ``errors="raise"``."""


def execute_job(job: CompileJob) -> tuple[CompilationResult, SimulationReport | None]:
    """Compile (and optionally simulate) one job, serially, in-process.

    This is the single execution path: the serial runner, every pool
    worker, and any external caller all go through it, so results are
    identical no matter where a job runs.
    """
    chains = job.initial_chains
    if chains is None:
        chains = greedy_initial_mapping(job.circuit, job.machine)
    result = QCCDCompiler(job.machine, job.config).compile(
        job.circuit, initial_chains=chains
    )
    report = None
    if job.simulate:
        obs = _obs_active()
        if obs is None:
            report = Simulator(job.machine, job.params).run(
                result.schedule, result.initial_chains
            )
        else:
            t_sim = perf_counter()
            report = Simulator(job.machine, job.params).run(
                result.schedule, result.initial_chains
            )
            obs.metrics.observe(
                "phase.simulate_seconds", perf_counter() - t_sim
            )
    return result, report


def _execute_indexed(
    payload: tuple[int, CompileJob, str, bool],
    fault: str | None = None,
    chaos: FaultPlan | None = None,
) -> JobResult:
    """Pool worker: run one job, capturing any failure as a record.

    ``observed`` payloads run under :func:`repro.obs.collect`, which
    routes metrics into a fresh registry whose snapshot travels back
    with the result — the same protocol in-process and across the
    pool, so serial and parallel sweeps aggregate identically.

    ``fault`` is an optional injected worker fault (``error`` or
    ``stall``; ``crash`` never reaches this layer) applied *inside*
    the guarded window, so injected failures take the exact code path
    of genuine ones.
    """
    index, job, key, observed = payload
    if not observed:
        return _execute_one(index, job, key, fault, chaos)
    with _obs_collect() as registry:
        t_job = perf_counter()
        job_result = _execute_one(index, job, key, fault, chaos)
        registry.observe("batch.job_seconds", perf_counter() - t_job)
        # Outcome counters travel in the snapshot even when the job
        # failed — partial metrics from errored work reach the parent
        # (load reports count failures, they don't lose them).
        registry.inc("batch.jobs_ok" if job_result.ok else "batch.jobs_failed")
        return replace(job_result, metrics=registry.snapshot())


def _execute_one(
    index: int,
    job: CompileJob,
    key: str,
    fault: str | None = None,
    chaos: FaultPlan | None = None,
) -> JobResult:
    t_start = perf_counter()
    try:
        if fault == FAULT_STALL:
            sleep(chaos.stall_seconds)
        elif fault == FAULT_ERROR:
            raise InjectedFaultError(
                f"injected worker fault (plan seed {chaos.seed}, "
                f"job {key[:12]})"
            )
        result, report = execute_job(job)
        return JobResult(
            index, key, result, report, seconds=perf_counter() - t_start
        )
    except JobTimeoutError as exc:
        return JobResult(
            index,
            key,
            None,
            error=traceback.format_exc(),
            exception=exc,
            seconds=perf_counter() - t_start,
            outcome="timeout",
        )
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = None  # unpicklable: the traceback string still travels
        return JobResult(
            index,
            key,
            None,
            error=traceback.format_exc(),
            exception=exc,
            seconds=perf_counter() - t_start,
            outcome="failed",
        )


def _pool_worker_init() -> None:
    """Pool-worker initializer: ignore SIGINT (a terminal Ctrl-C hits
    the whole process group; interruption is the parent's job — see
    ``BatchRunner``'s ``interrupt`` parameter)."""
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


class BatchRunner:
    """Executes job lists across a worker pool with result caching.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` runs in-process (no pool overhead),
        ``<= 0`` means one per CPU.
    cache:
        A :class:`ResultCache`, a cache-directory path, or ``None``
        for no caching (equivalent to :class:`NullCache`).  Any object
        duck-typing ``get``/``put``/``stats`` also works (e.g.
        :class:`~repro.resilience.cache.ChaosCache`).
    progress:
        Optional callback fired in the parent as each job resolves.
    timeout:
        Default per-job wall-clock budget, seconds (a job's own
        :attr:`CompileJob.deadline` overrides it).  Setting it engages
        the resilient execution path.
    retry:
        :class:`~repro.resilience.policy.RetryPolicy` for failed /
        timed-out / crashed attempts.  Setting it engages the
        resilient execution path.
    chaos:
        :class:`~repro.resilience.faults.FaultPlan` to inject faults
        (testing only).  Setting it engages the resilient path.
    interrupt:
        Optional :class:`threading.Event`.  Once set (typically by a
        SIGINT handler), the runner stops dispatching new jobs, drains
        whatever is already in flight, and marks never-dispatched jobs
        with outcome ``interrupted`` — a partial-but-accounted-for
        result list, never a KeyboardInterrupt mid-pool.
        :attr:`interrupted` reports whether a run was cut short.

    With none of the resilience options set (and no interrupt event),
    ``run`` takes the legacy in-process / ``multiprocessing.Pool``
    path untouched — the fault machinery is inert by construction, not
    merely disabled (the ``bench_load`` A/B gate holds the
    supervised-but-uninjected path to ≤5% overhead on top of that).
    """

    def __init__(
        self,
        n_jobs: int = 1,
        cache: ResultCache | NullCache | str | None = None,
        progress: ProgressCallback | None = None,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        chaos: FaultPlan | None = None,
        interrupt: threading.Event | None = None,
    ) -> None:
        if n_jobs <= 0:
            n_jobs = multiprocessing.cpu_count()
        self.n_jobs = n_jobs
        if cache is None:
            cache = NullCache()
        elif isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.timeout = timeout
        self.retry = retry
        self.chaos = chaos
        self.interrupt = interrupt
        #: True once a run was cut short by the interrupt event.
        self.interrupted = False
        #: Jobs skipped because an identical job ran earlier in the
        #: same pass (in-run deduplication, not a disk hit).
        self.deduplicated = 0

    def _interrupt_set(self) -> bool:
        return self.interrupt is not None and self.interrupt.is_set()

    @staticmethod
    def _interrupted_result(index: int, key: str) -> JobResult:
        return JobResult(
            index,
            key,
            None,
            error="run interrupted before this job was dispatched",
            outcome="interrupted",
        )

    def _resilient(self, jobs: Sequence[CompileJob]) -> bool:
        """Whether this run needs the supervised execution path."""
        return (
            self.timeout is not None
            or self.retry is not None
            or self.chaos is not None
            or any(job.deadline is not None for job in jobs)
        )

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss stats of the underlying cache."""
        return self.cache.stats

    def run(self, jobs: Sequence[CompileJob]) -> list[JobResult]:
        """Execute ``jobs``; the result list is index-aligned with them."""
        total = len(jobs)
        results: list[JobResult | None] = [None] * total
        done = 0

        def resolve(index: int, job_result: JobResult) -> None:
            nonlocal done
            results[index] = job_result
            done += 1
            if self.progress is not None:
                self.progress(done, total, jobs[index], job_result)

        # Cache pass: satisfy what we can before touching the pool, and
        # collapse identical jobs so each fingerprint compiles once.
        obs = _obs_active()
        observed = obs is not None
        pending: dict[str, list[int]] = {}
        to_run: list[tuple[int, CompileJob, str, bool]] = []
        for index, job in enumerate(jobs):
            key = job.fingerprint()
            if key in pending:
                self.deduplicated += 1
                if obs is not None:
                    obs.metrics.inc("batch.deduplicated")
                pending[key].append(index)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                resolve(
                    index,
                    replace(cached, job_index=index, cache_hit=True),
                )
                continue
            pending[key] = [index]
            to_run.append((index, job, key, observed))

        if obs is not None:
            obs.metrics.inc("batch.jobs", total)
        logger.debug(
            "batch: %d jobs -> %d to run (%d cached, %d deduplicated)",
            total,
            len(to_run),
            done,
            total - done - len(to_run),
        )

        if to_run:
            if self._resilient(jobs):
                # Supervised path: per-job deadlines, retry, crash
                # detection and quarantine.  Always subprocess-backed
                # (even at n_jobs=1) so a crash or stall is isolated
                # from the parent.
                self._run_supervised(to_run, pending, resolve)
            elif self.n_jobs == 1 or len(to_run) == 1:
                for payload in to_run:
                    if self._interrupt_set():
                        self.interrupted = True
                        job_result = self._interrupted_result(
                            payload[0], payload[2]
                        )
                    else:
                        job_result = _execute_indexed(payload)
                    self._finish(job_result, pending, resolve)
            else:
                # Prefer the cheap fork start only on Linux; macOS
                # lists "fork" as available but forked children there
                # can abort inside system frameworks (hence CPython's
                # own switch of the darwin default to "spawn").
                methods = multiprocessing.get_all_start_methods()
                use_fork = sys.platform == "linux" and "fork" in methods
                ctx = multiprocessing.get_context(
                    "fork" if use_fork else "spawn"
                )
                workers = min(self.n_jobs, len(to_run))
                with ctx.Pool(
                    processes=workers, initializer=_pool_worker_init
                ) as pool:
                    if self.interrupt is None:
                        for job_result in pool.imap_unordered(
                            _execute_indexed, to_run
                        ):
                            self._finish(job_result, pending, resolve)
                    else:
                        self._run_pool_interruptible(
                            pool, workers, to_run, pending, resolve
                        )

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _run_pool_interruptible(
        self,
        pool,
        workers: int,
        to_run: list[tuple[int, CompileJob, str, bool]],
        pending: dict[str, list[int]],
        resolve: Callable[[int, JobResult], None],
    ) -> None:
        """Pool dispatch with a bounded submission window so an
        interrupt can stop *queuing* work: in-flight jobs finish, the
        rest are marked ``interrupted``.  (``imap_unordered`` queues
        everything upfront — nothing could be withheld.)  The window is
        two tasks per worker: enough that a finishing worker always has
        a queued successor, small enough that a drain stays short."""
        completed: queue.SimpleQueue = queue.SimpleQueue()
        backlog = list(reversed(to_run))
        outstanding = 0
        while backlog or outstanding:
            while (
                backlog
                and outstanding < 2 * workers
                and not self._interrupt_set()
            ):
                pool.apply_async(
                    _execute_indexed,
                    (backlog.pop(),),
                    callback=completed.put,
                )
                outstanding += 1
            if backlog and self._interrupt_set():
                self.interrupted = True
                while backlog:
                    index, _job, key, _observed = backlog.pop()
                    self._finish(
                        self._interrupted_result(index, key),
                        pending,
                        resolve,
                    )
                continue
            if outstanding:
                self._finish(completed.get(), pending, resolve)
                outstanding -= 1

    def _run_supervised(
        self,
        to_run: list[tuple[int, CompileJob, str, bool]],
        pending: dict[str, list[int]],
        resolve: Callable[[int, JobResult], None],
    ) -> None:
        """Drain ``to_run`` through a :class:`Supervisor` (lazy import:
        the resilience package imports this module back)."""
        from ..resilience.supervisor import Supervisor

        workers = max(1, min(self.n_jobs, len(to_run)))
        with Supervisor(
            workers,
            retry=self.retry,
            timeout=self.timeout,
            chaos=self.chaos,
        ) as supervisor:
            if self.interrupt is None:
                backlog: list = []
                for index, job, key, observed in to_run:
                    supervisor.submit(index, job, key, observed)
            else:
                # Interruptible: bounded submission window (as in the
                # pool path) so a SIGINT drains in-flight work instead
                # of compiling the whole backlog first.
                backlog = list(reversed(to_run))
            remaining = len(to_run)
            while remaining:
                while (
                    backlog
                    and supervisor.pending < 2 * workers
                    and not self._interrupt_set()
                ):
                    index, job, key, observed = backlog.pop()
                    supervisor.submit(index, job, key, observed)
                if backlog and self._interrupt_set():
                    self.interrupted = True
                    while backlog:
                        index, _job, key, _observed = backlog.pop()
                        self._finish(
                            self._interrupted_result(index, key),
                            pending,
                            resolve,
                        )
                        remaining -= 1
                    continue
                for job_result in supervisor.poll(0.25):
                    self._finish(job_result, pending, resolve)
                    remaining -= 1

    def _finish(
        self,
        job_result: JobResult,
        pending: dict[str, list[int]],
        resolve: Callable[[int, JobResult], None],
    ) -> None:
        """Store a fresh result and fan it out to duplicate indices."""
        if job_result.metrics is not None:
            obs = _obs_active()
            if obs is not None:
                # Merge once per fresh result (before fan-out) so
                # duplicates and cache hits never double-count.
                obs.metrics.merge(job_result.metrics)
            job_result = replace(job_result, metrics=None)
        if job_result.ok:
            self.cache.put(
                job_result.fingerprint,
                # Attempt history is execution circumstance, not result
                # content: stripped (like seconds) so a cached replay
                # of a retried job compares equal to a fault-free one.
                replace(
                    job_result,
                    job_index=-1,
                    seconds=None,
                    attempts=1,
                    attempt_seconds=None,
                ),
            )
        for index in pending.pop(job_result.fingerprint):
            resolve(index, replace(job_result, job_index=index))

    def run_timed(
        self,
        jobs: Sequence[CompileJob],
        arrivals: Sequence[float] | None = None,
    ) -> list[TimedResult]:
        """Execute ``jobs`` on a request timeline; the load-generator
        entry point (:mod:`repro.loadgen`).

        ``arrivals[i]`` is when job ``i`` becomes visible, in seconds
        from the start of the call; ``None`` means every job arrives at
        0 (a closed loop: ``n_jobs`` consumers stay saturated).  With a
        staggered timeline this is an *open-loop* generator: dispatch
        happens at the scheduled instant regardless of how far behind
        the workers are, so overload shows up as growing
        :attr:`TimedResult.sojourn`, exactly like a queueing server.

        Differences from :meth:`run`, all deliberate:

        * **No in-run deduplication** — every arrival is an independent
          request; identical concurrent requests genuinely execute
          twice (a server without request coalescing).  The cache is
          still consulted per arrival, so repeats *after* a completed
          put are served as hits with the lookup as their latency.
        * **Results are returned in completion order** with their
          timeline attached (the caller sorts by ``job_index`` when it
          needs job order).

        Concurrent execution runs on the supervised pool
        (:class:`~repro.resilience.supervisor.Supervisor`) whether or
        not resilience options are set: every wait is a bounded poll
        with worker liveness checks, so a vanished worker surfaces as
        a ``crashed`` result instead of hanging the harness forever.
        """
        total = len(jobs)
        if arrivals is None:
            arrivals = [0.0] * total
        if len(arrivals) != total:
            raise ValueError(
                f"{len(arrivals)} arrivals for {total} jobs"
            )
        obs = _obs_active()
        observed = obs is not None
        timed: list[TimedResult] = []
        dispatch_times: dict[int, float] = {}
        done = 0
        t_zero = perf_counter()

        def finish(job_result: JobResult, finished: float) -> None:
            nonlocal done
            if job_result.metrics is not None:
                parent = _obs_active()
                if parent is not None:
                    parent.metrics.merge(job_result.metrics)
                job_result = replace(job_result, metrics=None)
            if job_result.ok and not job_result.cache_hit:
                self.cache.put(
                    job_result.fingerprint,
                    replace(
                        job_result,
                        job_index=-1,
                        seconds=None,
                        attempts=1,
                        attempt_seconds=None,
                    ),
                )
            timed.append(
                TimedResult(
                    result=job_result,
                    arrival=arrivals[job_result.job_index],
                    dispatched=dispatch_times[job_result.job_index],
                    finished=finished,
                )
            )
            done += 1
            if self.progress is not None:
                self.progress(done, total, jobs[job_result.job_index], job_result)

        supervisor = None
        if self._resilient(jobs) or (self.n_jobs > 1 and total > 1):
            from ..resilience.supervisor import Supervisor

            supervisor = Supervisor(
                max(1, min(self.n_jobs, total)),
                retry=self.retry,
                timeout=self.timeout,
                chaos=self.chaos,
            )

        def settle(poll_timeout: float) -> None:
            for job_result in supervisor.poll(poll_timeout):
                finish(job_result, perf_counter() - t_zero)

        try:
            for index, job in enumerate(jobs):
                if self._interrupt_set():
                    # Stop submitting; in-flight work settles below and
                    # never-dispatched jobs get `interrupted` results,
                    # so the timeline stays fully accounted for.
                    self.interrupted = True
                    break
                delay = t_zero + arrivals[index] - perf_counter()
                if supervisor is None:
                    if delay > 0:
                        sleep(delay)
                else:
                    # Wait out the inter-arrival gap *while* settling
                    # completions, in bounded slices — the poll wakes
                    # early on any worker event.
                    while delay > 0:
                        if supervisor.pending:
                            settle(min(delay, 0.05))
                        else:
                            sleep(delay)
                        delay = t_zero + arrivals[index] - perf_counter()
                    settle(0.0)
                dispatch_times[index] = perf_counter() - t_zero
                key = job.fingerprint()
                cached = self.cache.get(key)
                if cached is not None:
                    finish(
                        replace(cached, job_index=index, cache_hit=True),
                        perf_counter() - t_zero,
                    )
                    continue
                payload = (index, job, key, observed)
                if supervisor is None:
                    job_result = _execute_indexed(payload)
                    finish(job_result, perf_counter() - t_zero)
                else:
                    supervisor.submit(index, job, key, observed)
            if self.interrupted:
                while supervisor is not None and supervisor.pending:
                    settle(0.25)
                now = perf_counter() - t_zero
                for index, job in enumerate(jobs):
                    if index in dispatch_times:
                        continue
                    dispatch_times[index] = now
                    finish(
                        self._interrupted_result(index, job.fingerprint()),
                        now,
                    )
            while done < total:
                settle(0.25)
        finally:
            if supervisor is not None:
                supervisor.close()
        return timed

    def run_or_raise(self, jobs: Sequence[CompileJob]) -> list[JobResult]:
        """Like :meth:`run`, but re-raise the first job failure —
        with its original exception type when available, so callers
        keep the error contract of the serial path."""
        results = self.run(jobs)
        for job_result in results:
            if not job_result.ok:
                if job_result.exception is not None:
                    raise job_result.exception
                raise BatchError(
                    f"job {job_result.job_index} "
                    f"({jobs[job_result.job_index].label}) failed:\n"
                    f"{job_result.error}"
                )
        return results
