"""Stable, process-independent content fingerprints.

The batch cache (:mod:`repro.batch.cache`) keys results by the *content*
of a compilation job, so identical (circuit, machine, config, params)
tuples hit the same cache entry across interpreter runs, hosts and
worker processes.  Python's built-in ``hash()`` is salted per process
(``PYTHONHASHSEED``) and therefore useless for on-disk keys; instead
every object is lowered to a canonical, JSON-serializable form and the
SHA-256 of its compact JSON encoding is used.

Canonicalization rules:

* floats are rendered with ``float.hex()`` (exact, locale/precision
  independent),
* dataclasses become ``["dc", class-name, {field: value}]`` with fields
  in declaration order,
* :class:`~repro.circuits.circuit.Circuit` and
  :class:`~repro.arch.topology.TrapTopology` (not dataclasses) get
  explicit encodings,
* enums become ``["enum", class-name, value]``.

Wall-clock outputs (e.g. ``CompilationResult.compile_time``) never
enter a fingerprint: fingerprints cover compilation *inputs* only, so
cached replays are byte-identical modulo timing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

from ..arch.topology import TrapTopology
from ..circuits.circuit import Circuit

#: Bump to invalidate every existing cache entry when the canonical
#: encoding (or compilation semantics) changes incompatibly.
#: v2: CompilerConfig grew ``post_passes`` (and CompilationResult grew
#: pass-delta fields), changing both the canonical config encoding and
#: the pickled result layout.
FINGERPRINT_VERSION = 2


class FingerprintError(TypeError):
    """Raised when an object has no canonical encoding."""


def canonicalize(obj: Any) -> Any:
    """Lower ``obj`` to a deterministic JSON-serializable structure."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, Enum):
        return ["enum", type(obj).__name__, canonicalize(obj.value)]
    if isinstance(obj, Circuit):
        return [
            "circuit",
            obj.name,
            obj.num_qubits,
            [canonicalize(g) for g in obj.gates],
        ]
    if isinstance(obj, TrapTopology):
        return [
            "topology",
            obj.name,
            obj.num_traps,
            [list(edge) for edge in obj.edges],
        ]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dc",
            type(obj).__name__,
            {
                f.name: canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        ]
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(item) for item in obj)
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    raise FingerprintError(
        f"no canonical encoding for {type(obj).__name__}: {obj!r}"
    )


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
