"""Parallel batch-compilation engine with content-addressed caching.

The subsystem behind every sweep-shaped experiment in this repo
(Table II / III, Fig. 8, ablations, topology studies):

* :mod:`~repro.batch.jobs` — declarative :class:`CompileJob` specs and
  the :func:`sweep` cartesian-grid builder,
* :mod:`~repro.batch.fingerprint` — stable content hashing of circuits,
  machines, configs and parameters,
* :mod:`~repro.batch.cache` — on-disk content-addressed result store,
* :mod:`~repro.batch.runner` — :class:`BatchRunner`, a multiprocessing
  executor with error isolation and deterministic result ordering,
* :mod:`~repro.batch.records` — flat per-job records with JSON/CSV
  export.

Quickstart::

    from repro.batch import BatchRunner, ResultCache, sweep

    jobs = sweep(circuits, machines, configs)
    runner = BatchRunner(n_jobs=4, cache=ResultCache(".repro-cache"))
    results = runner.run(jobs)   # index-aligned with jobs
"""

from .cache import CacheStats, NullCache, ResultCache
from .fingerprint import FINGERPRINT_VERSION, FingerprintError, canonicalize, fingerprint
from .jobs import CompileJob, paired_jobs, sweep
from .records import (
    FIELDNAMES,
    SweepRecord,
    build_record,
    build_records,
    records_to_json,
    write_csv,
    write_json,
)
from .runner import BatchError, BatchRunner, JobResult, execute_job

__all__ = [
    "BatchError",
    "BatchRunner",
    "CacheStats",
    "CompileJob",
    "FIELDNAMES",
    "FINGERPRINT_VERSION",
    "FingerprintError",
    "JobResult",
    "NullCache",
    "ResultCache",
    "SweepRecord",
    "build_record",
    "build_records",
    "canonicalize",
    "execute_job",
    "fingerprint",
    "paired_jobs",
    "records_to_json",
    "sweep",
    "write_csv",
    "write_json",
]
