"""JobSpec: the JSON wire format for one compilation request.

A :class:`JobSpec` is the *transportable* description of a
:class:`~repro.batch.jobs.CompileJob` — plain strings and numbers, so
it crosses an HTTP boundary as JSON and still resolves to the exact
same job (same content fingerprint) on the other side.  It is the
contract shared by the serving layer (``POST /v1/jobs`` bodies,
:mod:`repro.serve`) and the load generator's live mode
(:meth:`repro.loadgen.Scenario.spec_stream`), which is what makes a
live load run comparable to an in-process one: both expand the same
scenario draws, one side resolving locally, the other resolving inside
the server.

Two circuit kinds:

* ``random`` — a seeded random circuit; ``qubits``/``gates``/``seed``/
  ``family`` are the full generator input, so resolution is a pure
  function of the spec.
* ``bench`` — a named paper-suite generator (deterministic, built once
  and cached).

Validation is strict and bounded: unknown keys, unknown names, and
out-of-range sizes (:data:`MAX_QUBITS` / :data:`MAX_GATES`) all raise
``ValueError`` — the serving layer maps that to a structured 400, so a
malformed or abusive request never reaches a worker.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from functools import lru_cache

from ..arch.presets import machine_from_spec
from ..bench.qaoa import qaoa_circuit
from ..bench.qft import qft_circuit
from ..bench.quadraticform import quadratic_form_circuit
from ..bench.random_circuits import random_circuit
from ..bench.squareroot import squareroot_circuit
from ..bench.supremacy import supremacy_circuit
from ..compiler.config import CompilerConfig
from .jobs import CompileJob

#: Named paper-suite generators available to ``bench`` specs.
#: ``qft``/``qaoa`` honor the ``qubits`` knob; the other three are
#: fixed at their paper sizes (their size axes are not a single qubit
#: count).
BENCH_FACTORIES = {
    "qft": lambda qubits: qft_circuit(qubits or 64),
    "qaoa": lambda qubits: qaoa_circuit(qubits or 64),
    "supremacy": lambda qubits: supremacy_circuit(),
    "squareroot": lambda qubits: squareroot_circuit(),
    "quadraticform": lambda qubits: quadratic_form_circuit(),
}

CONFIG_FACTORIES = {
    "baseline": CompilerConfig.baseline,
    "optimized": CompilerConfig.optimized,
}

#: Admission bounds: requests beyond these are validation errors, not
#: work.  Generous against the paper suite (64 qubits, 1438 gates) but
#: a hard stop for abusive payloads.
MAX_QUBITS = 256
MAX_GATES = 50_000

_RANDOM_FAMILIES = ("uniform", "layered")


@lru_cache(maxsize=64)
def _resolve_machine(spec: str):
    return machine_from_spec(spec)


@lru_cache(maxsize=8)
def _resolve_config(name: str):
    return CONFIG_FACTORIES[name]()


@lru_cache(maxsize=64)
def _bench_circuit(name: str, qubits: int | None):
    return BENCH_FACTORIES[name](qubits)


@lru_cache(maxsize=512)
def _random_circuit(qubits: int, gates: int, seed: int, family: str):
    return random_circuit(qubits, gates, seed=seed, family=family)


@dataclass(frozen=True)
class JobSpec:
    """One JSON-able compilation request (see the module docstring)."""

    kind: str
    machine: str = "l6"
    config: str = "optimized"
    #: ``bench`` generator name (``kind="bench"`` only).
    name: str = ""
    qubits: int | None = None
    gates: int | None = None
    #: Random-circuit seed (``kind="random"`` only; required so the
    #: spec resolves to one circuit, not a fresh draw per resolution).
    seed: int | None = None
    family: str = "uniform"
    simulate: bool = False
    #: Per-job wall-clock budget, seconds; propagated into
    #: :attr:`CompileJob.deadline` so the supervised pool enforces it.
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("random", "bench"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.config not in CONFIG_FACTORIES:
            raise ValueError(
                f"unknown config {self.config!r}; "
                f"choose from {sorted(CONFIG_FACTORIES)}"
            )
        machine_from_spec(self.machine)  # raises ValueError on typos
        if self.kind == "bench":
            if self.name not in BENCH_FACTORIES:
                raise ValueError(
                    f"unknown bench circuit {self.name!r}; "
                    f"choose from {sorted(BENCH_FACTORIES)}"
                )
        else:
            if not self.qubits:
                raise ValueError("random specs need a qubit count")
            if self.seed is None:
                raise ValueError("random specs need a circuit seed")
            if self.family not in _RANDOM_FAMILIES:
                raise ValueError(
                    f"unknown random family {self.family!r}; "
                    f"choose from {_RANDOM_FAMILIES}"
                )
        if self.qubits is not None and not (
            0 < self.qubits <= MAX_QUBITS
        ):
            raise ValueError(
                f"qubits must be in 1..{MAX_QUBITS}, got {self.qubits}"
            )
        if self.gates is not None and not (0 < self.gates <= MAX_GATES):
            raise ValueError(
                f"gates must be in 1..{MAX_GATES}, got {self.gates}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be > 0 seconds, got {self.deadline}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able document; :meth:`from_dict` round-trips it."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Build a spec from a :meth:`to_dict`-shaped document.

        Unknown keys are rejected (``ValueError``) — a mistyped field
        in a request must fail loudly, not silently change meaning.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"job spec must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self) -> CompileJob:
        """The :class:`CompileJob` this spec describes.

        Pure in the spec: equal specs resolve to jobs with equal
        content fingerprints, in any process (machines, configs and
        deterministic bench circuits are cached module-wide).
        """
        if self.kind == "random":
            circuit = _random_circuit(
                self.qubits, self.gates or 120, self.seed, self.family
            )
        else:
            circuit = _bench_circuit(self.name, self.qubits)
        return CompileJob(
            circuit=circuit,
            machine=_resolve_machine(self.machine),
            config=_resolve_config(self.config),
            simulate=self.simulate,
            deadline=self.deadline,
        )

    def fingerprint(self) -> str:
        """Content fingerprint of the resolved job (never includes the
        deadline — an execution budget, not a compilation input)."""
        return self.resolve().fingerprint()

    @property
    def label(self) -> str:
        """Human-readable identity for progress lines and records."""
        if self.kind == "bench":
            circuit = self.name + (f"{self.qubits}" if self.qubits else "")
        else:
            circuit = f"random:{self.qubits}:{self.gates or 120}:{self.seed}"
        return f"{circuit} @ {self.machine} / {self.config}"
