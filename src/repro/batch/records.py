"""Flat per-job result records with JSON/CSV export.

Downstream analysis (pandas, spreadsheets, plotting scripts) wants one
row per compilation with scalar columns — not nested schedules.  A
:class:`SweepRecord` is that row; :func:`build_records` flattens a
runner pass and :func:`write_csv` / :func:`write_json` persist it.

``compile_time`` is wall-clock and therefore nondeterministic: it is
reported for Table III-style analyses but is excluded from fingerprints
and from :class:`~repro.compiler.result.CompilationResult` equality, so
cached replays compare identical to fresh compilations.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass, fields

from .jobs import CompileJob
from .runner import JobResult


@dataclass
class SweepRecord:
    """One flat row per job: identity, inputs, and scalar outcomes."""

    job_index: int
    fingerprint: str
    circuit: str
    machine: str
    config: str
    num_qubits: int
    num_two_qubit_gates: int
    simulate: bool
    cache_hit: bool
    error: str | None = None
    num_shuttles: int | None = None
    gate_shuttles: int | None = None
    rebalance_shuttles: int | None = None
    num_reorders: int | None = None
    num_rebalances: int | None = None
    # Post-pass optimization columns (None when the config ran no
    # passes): pre-pass shuttle count, shuttles the pipeline deleted,
    # and rewrites shipped by non-reverted passes.
    raw_num_shuttles: int | None = None
    shuttles_removed: int | None = None
    pass_rewrites: int | None = None
    compile_time: float | None = None  # wall-clock; excluded from cache keys
    log10_fidelity: float | None = None
    duration: float | None = None
    max_nbar: float | None = None
    # Resilience columns (trailing, so pre-existing CSV consumers keep
    # their column offsets): terminal outcome and attempts consumed.
    outcome: str = "ok"
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the underlying job succeeded."""
        return self.error is None


#: CSV column order (== field declaration order).
FIELDNAMES = [f.name for f in fields(SweepRecord)]


def build_record(job: CompileJob, job_result: JobResult) -> SweepRecord:
    """Flatten one job outcome."""
    record = SweepRecord(
        job_index=job_result.job_index,
        fingerprint=job_result.fingerprint,
        circuit=job.circuit.name,
        machine=job.machine.name,
        config=job.config.name,
        num_qubits=job.circuit.num_qubits,
        num_two_qubit_gates=job.circuit.num_two_qubit_gates,
        simulate=job.simulate,
        cache_hit=job_result.cache_hit,
        error=job_result.error,
        outcome=job_result.outcome,
        attempts=job_result.attempts,
    )
    result = job_result.result
    if result is not None:
        record.num_shuttles = result.num_shuttles
        record.gate_shuttles = result.gate_routing_shuttles
        record.rebalance_shuttles = result.rebalance_shuttles
        record.num_reorders = result.num_reorders
        record.num_rebalances = result.num_rebalances
        record.compile_time = result.compile_time
        if result.optimized:
            record.raw_num_shuttles = result.raw_num_shuttles
            record.shuttles_removed = result.shuttles_removed_by_passes
            record.pass_rewrites = result.pass_rewrites
    report = job_result.report
    if report is not None:
        record.log10_fidelity = report.log10_fidelity
        record.duration = report.duration
        record.max_nbar = report.max_nbar
    return record


def build_records(
    jobs: Sequence[CompileJob], job_results: Sequence[JobResult]
) -> list[SweepRecord]:
    """Flatten a whole runner pass (index-aligned inputs)."""
    if len(jobs) != len(job_results):
        raise ValueError(
            f"{len(jobs)} jobs but {len(job_results)} results"
        )
    return [
        build_record(job, job_result)
        for job, job_result in zip(jobs, job_results)
    ]


def records_to_json(records: Sequence[SweepRecord]) -> str:
    """JSON array of record objects (stable key order)."""
    return json.dumps([asdict(r) for r in records], indent=2)


def write_json(records: Sequence[SweepRecord], path: str) -> None:
    """Write records as a JSON array."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records_to_json(records) + "\n")


def write_csv(records: Sequence[SweepRecord], path: str) -> None:
    """Write records as CSV with a header row."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDNAMES)
        writer.writeheader()
        for record in records:
            writer.writerow(asdict(record))
