"""Root pytest configuration.

Ensures ``src/`` is importable even when the package has not been
installed (this environment is offline; ``pip install -e .`` may be
unavailable — see README "Install").
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    """Register the ``slow`` marker for the longest end-to-end tests.

    A fast development loop runs ``pytest -m "not slow"``; plain
    ``pytest`` (tier-1) and ``pytest -m slow`` still run everything.
    """
    config.addinivalue_line(
        "markers",
        "slow: long-running end-to-end test (deselect with -m 'not slow')",
    )
