"""Differential property suite for the vectorized replay kernel.

``repro.core.vector`` replays op streams through a columnar numpy
kernel: one whole-window legality proof over array predicates, then an
unchecked drain.  Its contract is *exact* equivalence with the scalar
kernel (``repro.core.replay``): same accept/reject verdicts, the same
``"op N: ..."`` error strings (via the scalar fallback), the same
final chains, and bit-identical observer floats (the drain accumulates
in the same order as ``ClockObserver``/``HeatingObserver``).  This
module pins that contract:

* random compiled schedules — legal and mutation-corrupted — across
  linear/ring/grid machines and all compiler configurations, replayed
  through both kernels with and without observers,
* op streams with fields outside the int64 kernel model (and with
  subclassed ops), which must take the scalar path end to end,
* the golden machine-semantics fixture, reproduced with the kernel
  switch forced *off* — the recording was made with it on, so the two
  switch states are pinned to each other through the fixture.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from golden_util import circuit_case
from test_differential import CONFIGS, MACHINES, random_circuit

from repro.compiler import compile_circuit
from repro.core import (
    ClockObserver,
    HeatingObserver,
    MachineModelError,
    batched_replay,
    replay,
)
from repro.core.params import MachineParams
from repro.core.vector import (
    HAVE_NUMPY,
    compile_stream,
    vector_kernel_enabled,
)
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp
from repro.sim.schedule import Schedule

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable: only the scalar kernel exists"
)

PARAMS = MachineParams()


def _observers(machine):
    return (
        ClockObserver(machine.num_traps, PARAMS.timing),
        HeatingObserver(machine.num_traps, PARAMS),
    )


def _outcome(kernel, machine, ops, chains, with_observers):
    """(verdict, payload) of one replay through ``kernel``.

    Legal streams reduce to final chains plus exact observer snapshots;
    illegal ones to the exact error string.
    """
    observers = _observers(machine) if with_observers else ()
    try:
        state = kernel(machine, Schedule(ops), chains, observers)
    except MachineModelError as exc:
        return ("error", str(exc))
    return (
        "ok",
        state.chains_dict(),
        tuple(obs.snapshot() for obs in observers),
    )


def _mutations(ops, machine, count=8, seed=7):
    """Corrupted variants of a legal stream: one op rewritten each."""
    rng = random.Random(seed)
    num_traps = machine.num_traps
    variants = []
    for _ in range(count):
        bad = list(ops)
        index = rng.randrange(len(bad))
        op = bad[index]
        if isinstance(op, MoveOp):
            bad[index] = MoveOp(
                op.ion, op.src, (op.dst + 1) % num_traps, op.reason
            )
        elif isinstance(op, MergeOp):
            bad[index] = MergeOp(
                op.ion + 100, op.trap, op.reason, op.position
            )
        elif isinstance(op, SplitOp):
            bad[index] = SplitOp(
                op.ion, (op.trap + 1) % num_traps, op.reason
            )
        elif isinstance(op, GateOp):
            bad[index] = GateOp(op.gate, (op.trap + 1) % num_traps)
        variants.append((index, bad))
    return variants


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_vector_matches_scalar_on_random_schedules(
    machine_name, config_name
):
    """Verdicts, error strings, chains and floats agree op-for-op."""
    machine = MACHINES[machine_name]()
    rng = random.Random(hash((machine_name, config_name)) & 0xFFFF)
    circuit = random_circuit(rng, min(8, machine.num_traps * 2), 40)
    result = compile_circuit(
        circuit, machine, config=CONFIGS[config_name]()
    )
    chains = result.initial_chains
    streams = [list(result.schedule.ops)]
    streams += [bad for _, bad in _mutations(streams[0], machine)]

    for ops in streams:
        for with_observers in (False, True):
            scalar = _outcome(replay, machine, ops, chains, with_observers)
            vector = _outcome(
                batched_replay, machine, ops, chains, with_observers
            )
            assert scalar == vector


def test_chain_order_streams_take_scalar_path():
    """Swap-bearing streams are outside the vector model (chain-ORDER
    checks) and must replay scalar — with identical outcomes."""
    machine = MACHINES["linear"]()
    rng = random.Random(11)
    circuit = random_circuit(rng, 8, 40)
    result = compile_circuit(
        circuit, machine, config=CONFIGS["chain-order"]()
    )
    ops = list(result.schedule.ops)
    if result.schedule.num_swaps:
        assert compile_stream(ops).needs_scalar
    scalar = _outcome(replay, machine, ops, result.initial_chains, True)
    vector = _outcome(
        batched_replay, machine, ops, result.initial_chains, True
    )
    assert scalar == vector


def test_out_of_model_int_fields_fall_back_to_scalar():
    """Fields outside int64 can't be columnized: the stream compiles to
    the scalar path, and both kernels still agree exactly."""
    machine = MACHINES["linear"]()
    rng = random.Random(3)
    circuit = random_circuit(rng, 8, 20)
    result = compile_circuit(circuit, machine, config=CONFIGS["baseline"]())
    chains = result.initial_chains
    legal = list(result.schedule.ops)
    move = next(op for op in legal if isinstance(op, MoveOp))
    at = legal.index(move)

    for huge in (2**63, -(2**63) - 1, 2**100):
        ops = list(legal)
        ops[at] = MoveOp(huge, move.src, move.dst, move.reason)
        assert compile_stream(ops).needs_scalar
        scalar = _outcome(replay, machine, ops, chains, True)
        vector = _outcome(batched_replay, machine, ops, chains, True)
        assert scalar == vector
        assert scalar[0] == "error"
        assert scalar[1].startswith(f"op {at}:")

    # At the int64 edge the columns build fine; the ion id is simply
    # out of range, which the check proves illegal and the scalar
    # fallback reports with the exact op index.
    ops = list(legal)
    ops[at] = MoveOp(2**63 - 1, move.src, move.dst, move.reason)
    assert not compile_stream(ops).needs_scalar
    scalar = _outcome(replay, machine, ops, chains, True)
    vector = _outcome(batched_replay, machine, ops, chains, True)
    assert scalar == vector
    assert scalar[0] == "error"


def test_subclassed_ops_fall_back_to_scalar():
    """Op subclasses may override behavior; the kernel must not guess."""

    class TracedMove(MoveOp):
        pass

    machine = MACHINES["linear"]()
    rng = random.Random(5)
    circuit = random_circuit(rng, 8, 20)
    result = compile_circuit(circuit, machine, config=CONFIGS["baseline"]())
    ops = list(result.schedule.ops)
    move = next(op for op in ops if isinstance(op, MoveOp))
    ops[ops.index(move)] = TracedMove(
        move.ion, move.src, move.dst, move.reason
    )
    assert compile_stream(ops).needs_scalar
    scalar = _outcome(replay, machine, ops, result.initial_chains, True)
    vector = _outcome(
        batched_replay, machine, ops, result.initial_chains, True
    )
    assert scalar == vector


def test_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_VECTOR_KERNEL", raising=False)
    assert vector_kernel_enabled(None) is HAVE_NUMPY
    for word in ("0", "false", "off", "no"):
        monkeypatch.setenv("REPRO_VECTOR_KERNEL", word)
        assert vector_kernel_enabled(None) is False
    monkeypatch.setenv("REPRO_VECTOR_KERNEL", "1")
    assert vector_kernel_enabled(None) is HAVE_NUMPY
    # An explicit argument always wins over the environment.
    monkeypatch.setenv("REPRO_VECTOR_KERNEL", "0")
    assert vector_kernel_enabled(True) is HAVE_NUMPY
    assert vector_kernel_enabled(False) is False


GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden",
    "machine_semantics.json",
)

#: Two suite members exercise every golden field without re-running the
#: whole fixture twice (test_golden_semantics already covers switch-on).
GOLDEN_SPOT_CHECKS = ("QFT", "Supremacy")


@pytest.mark.parametrize("name", GOLDEN_SPOT_CHECKS)
def test_golden_semantics_with_kernel_off(name, monkeypatch):
    """The golden fixture is reproduced with the vector kernel forced
    off: both switch states pin to the same recorded behavior."""
    from repro.arch.presets import l6_machine
    from repro.bench.suite import paper_suite

    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        golden = json.load(handle)
    expected = next(
        case for case in golden["cases"] if case["circuit"] == name
    )
    circuit = next(c for c in paper_suite(full=False) if c.name == name)

    monkeypatch.setenv("REPRO_VECTOR_KERNEL", "0")
    actual = circuit_case(circuit, l6_machine())
    for key in expected:
        assert actual[key] == expected[key], (
            f"{name}: {key} diverged with the vector kernel off"
        )
