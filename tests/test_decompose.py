"""Decomposition correctness: every rule verified against exact unitaries."""

import math

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.decompose import (
    NATIVE_GATES,
    decompose_circuit,
    decompose_gate,
    is_native,
)
from repro.circuits.gate import Gate
from repro.circuits.matrices import (
    allclose_up_to_phase,
    circuit_unitary,
    gate_matrix,
)


def assert_equivalent(gate: Gate, num_qubits: int) -> None:
    """Decomposition must equal the original gate up to global phase."""
    expected = circuit_unitary([gate], num_qubits)
    actual = circuit_unitary(list(decompose_gate(gate)), num_qubits)
    assert allclose_up_to_phase(actual, expected), f"{gate} decomposition wrong"


class TestTwoQubitRules:
    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0)])
    def test_cx(self, qubits):
        assert_equivalent(Gate("cx", qubits), 2)

    def test_cz(self):
        assert_equivalent(Gate("cz", (0, 1)), 2)

    def test_cy(self):
        assert_equivalent(Gate("cy", (0, 1)), 2)

    def test_ch(self):
        assert_equivalent(Gate("ch", (0, 1)), 2)

    @pytest.mark.parametrize("theta", [0.3, math.pi / 2, -1.2, 2 * math.pi / 3])
    def test_cp(self, theta):
        assert_equivalent(Gate("cp", (0, 1), (theta,)), 2)

    @pytest.mark.parametrize("theta", [0.7, -0.4])
    def test_crz(self, theta):
        assert_equivalent(Gate("crz", (0, 1), (theta,)), 2)

    @pytest.mark.parametrize("theta", [0.7, -0.4])
    def test_crx(self, theta):
        assert_equivalent(Gate("crx", (0, 1), (theta,)), 2)

    @pytest.mark.parametrize("theta", [0.7, -0.4])
    def test_cry(self, theta):
        assert_equivalent(Gate("cry", (0, 1), (theta,)), 2)

    def test_swap(self):
        assert_equivalent(Gate("swap", (0, 1)), 2)

    @pytest.mark.parametrize("theta", [0.5, math.pi / 2, -0.9])
    def test_rzz(self, theta):
        assert_equivalent(Gate("rzz", (0, 1), (theta,)), 2)

    def test_rxx_native_angle_becomes_ms(self):
        gates = list(decompose_gate(Gate("rxx", (0, 1), (math.pi / 2,))))
        assert gates == [Gate("ms", (0, 1))]

    def test_rxx_other_angle_stays_single_pulse(self):
        gates = list(decompose_gate(Gate("rxx", (0, 1), (0.3,))))
        assert len(gates) == 1
        assert gates[0].name == "rxx"


class TestThreeQubitRules:
    def test_ccx(self):
        assert_equivalent(Gate("ccx", (0, 1, 2)), 3)

    def test_ccx_permuted(self):
        assert_equivalent(Gate("ccx", (2, 0, 1)), 3)

    def test_ccz(self):
        assert_equivalent(Gate("ccz", (0, 1, 2)), 3)

    def test_cswap(self):
        assert_equivalent(Gate("cswap", (0, 1, 2)), 3)


class TestCounts:
    """The paper counts 2Q gates post-decomposition; these counts are
    what make the benchmark sizes come out right."""

    def test_cx_is_one_ms(self):
        gates = list(decompose_gate(Gate("cx", (0, 1))))
        assert sum(1 for g in gates if g.is_two_qubit) == 1

    def test_cp_is_two_ms(self):
        gates = list(decompose_gate(Gate("cp", (0, 1), (0.4,))))
        assert sum(1 for g in gates if g.is_two_qubit) == 2

    def test_swap_is_three_ms(self):
        gates = list(decompose_gate(Gate("swap", (0, 1))))
        assert sum(1 for g in gates if g.is_two_qubit) == 3

    def test_ccx_is_six_ms(self):
        gates = list(decompose_gate(Gate("ccx", (0, 1, 2))))
        assert sum(1 for g in gates if g.is_two_qubit) == 6

    def test_only_native_gates_out(self):
        for name, qubits, params in [
            ("cx", (0, 1), ()),
            ("cp", (0, 1), (0.3,)),
            ("ccx", (0, 1, 2), ()),
            ("swap", (0, 1), ()),
        ]:
            for gate in decompose_gate(Gate(name, qubits, params)):
                assert is_native(gate), f"{gate} not native"


class TestDecomposeCircuit:
    def test_keeps_or_drops_one_qubit_gates(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        full = decompose_circuit(circuit, keep_one_qubit=True)
        pruned = decompose_circuit(circuit, keep_one_qubit=False)
        assert full.num_one_qubit_gates > 0
        assert pruned.num_one_qubit_gates == 0
        assert full.num_two_qubit_gates == pruned.num_two_qubit_gates == 1

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            list(decompose_gate(Gate("mystery", (0, 1))))

    def test_native_set_contains_ms(self):
        assert "ms" in NATIVE_GATES
        assert "rxx" in NATIVE_GATES

    def test_circuit_unitary_preserved(self):
        circuit = Circuit(3)
        circuit.add("h", 0).add("cx", 0, 1).add("cp", 1, 2, params=[0.7])
        circuit.add("swap", 0, 2)
        decomposed = decompose_circuit(circuit)
        expected = circuit_unitary(circuit.gates, 3)
        actual = circuit_unitary(decomposed.gates, 3)
        assert allclose_up_to_phase(actual, expected)


class TestMatrices:
    def test_all_supported_matrices_unitary(self):
        import numpy as np

        cases = [
            Gate("h", (0,)),
            Gate("x", (0,)),
            Gate("y", (0,)),
            Gate("z", (0,)),
            Gate("s", (0,)),
            Gate("sdg", (0,)),
            Gate("t", (0,)),
            Gate("tdg", (0,)),
            Gate("sx", (0,)),
            Gate("sxdg", (0,)),
            Gate("rx", (0,), (0.3,)),
            Gate("ry", (0,), (0.3,)),
            Gate("rz", (0,), (0.3,)),
            Gate("p", (0,), (0.3,)),
            Gate("u2", (0,), (0.1, 0.2)),
            Gate("u3", (0,), (0.1, 0.2, 0.3)),
            Gate("gpi", (0,), (0.4,)),
            Gate("gpi2", (0,), (0.4,)),
            Gate("ms", (0, 1)),
            Gate("rxx", (0, 1), (0.5,)),
            Gate("rzz", (0, 1), (0.5,)),
            Gate("cx", (0, 1)),
            Gate("cz", (0, 1)),
            Gate("cp", (0, 1), (0.5,)),
            Gate("swap", (0, 1)),
        ]
        for gate in cases:
            matrix = gate_matrix(gate)
            dim = matrix.shape[0]
            assert np.allclose(
                matrix @ matrix.conj().T, np.eye(dim), atol=1e-12
            ), f"{gate.name} not unitary"

    def test_sdg_is_s_inverse(self):
        import numpy as np

        s = gate_matrix(Gate("s", (0,)))
        sdg = gate_matrix(Gate("sdg", (0,)))
        assert np.allclose(s @ sdg, np.eye(2))

    def test_ms_is_xx_quarter(self):
        import numpy as np

        ms = gate_matrix(Gate("ms", (0, 1)))
        rxx = gate_matrix(Gate("rxx", (0, 1), (math.pi / 2,)))
        assert np.allclose(ms, rxx)

    def test_unknown_matrix_raises(self):
        with pytest.raises(ValueError):
            gate_matrix(Gate("mystery", (0, 1)))

    def test_phase_comparison_helper(self):
        import numpy as np

        a = np.eye(2, dtype=complex)
        assert allclose_up_to_phase(1j * a, a)
        assert not allclose_up_to_phase(
            np.diag([1.0, -1.0]).astype(complex), a
        )
