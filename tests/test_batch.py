"""Batch-engine tests: fingerprints, cache, runner, and the
serial-vs-batch equivalence regression (cold and warm cache)."""

import os
import pickle
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.batch import (
    BatchError,
    BatchRunner,
    CompileJob,
    FingerprintError,
    NullCache,
    ResultCache,
    build_records,
    fingerprint,
    paired_jobs,
    records_to_json,
    sweep,
    write_csv,
    write_json,
)
from repro.bench import random_circuit
from repro.bench.suite import paper_suite
from repro.circuits.circuit import Circuit
from repro.compiler.config import CompilerConfig
from repro.eval.harness import compare, run_suite
from repro.sim.params import DEFAULT_PARAMS


def tiny_machine():
    return uniform_machine(linear_topology(3), 6, 2)


def tiny_suite():
    return [
        random_circuit(10, 60, seed=1),
        random_circuit(10, 60, seed=2),
    ]


def golden_job():
    circuit = (
        Circuit(4, name="golden")
        .add("ms", 0, 1)
        .add("rz", 2, params=[0.5])
        .add("ms", 2, 3)
    )
    machine = uniform_machine(linear_topology(2), 4, 2)
    return CompileJob(circuit, machine, CompilerConfig.baseline())


def result_blob(result):
    """Byte-comparable encoding of every deterministic result field.

    ``compile_time`` is wall-clock and deliberately excluded — it is
    the one field allowed to differ between a fresh compilation and a
    cached or parallel replay.
    """
    return repr(
        (
            result.circuit_name,
            result.config_name,
            result.schedule.ops,
            sorted(result.initial_chains.items()),
            sorted(result.final_chains.items()),
            result.gate_order,
            result.num_reorders,
            result.num_rebalances,
        )
    )


def report_blob(report):
    if report is None:
        return "None"
    return repr(
        (
            report.program_log_fidelity.hex(),
            report.duration.hex(),
            report.num_gates,
            report.num_shuttles,
            report.min_gate_fidelity.hex(),
            report.max_nbar.hex(),
            report.mean_gate_nbar.hex(),
        )
    )


def comparison_blob(comparison):
    return "\n".join(
        [
            result_blob(comparison.baseline),
            result_blob(comparison.optimized),
            report_blob(comparison.baseline_report),
            report_blob(comparison.optimized_report),
        ]
    )


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = golden_job()
        b = golden_job()
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_golden_value_is_process_independent(self):
        # Hard-coded digest: hash() is salted per process, so any use
        # of it (or other run-dependent state) in the canonical
        # encoding would break this test across interpreter runs.
        assert golden_job().fingerprint() == (
            "cbcae31116a02ac2e85c3618b88bdcb5de1e2d97473006bf7bb7c66c6f66440a"
        )

    def test_circuit_content_changes_fingerprint(self):
        base = golden_job()
        changed = CompileJob(
            base.circuit.copy().add("ms", 0, 2),
            base.machine,
            base.config,
        )
        assert base.fingerprint() != changed.fingerprint()

    def test_gate_params_change_fingerprint(self):
        machine = tiny_machine()
        config = CompilerConfig.baseline()
        a = CompileJob(
            Circuit(2, name="c").add("rz", 0, params=[0.5]), machine, config
        )
        b = CompileJob(
            Circuit(2, name="c").add("rz", 0, params=[0.25]), machine, config
        )
        assert a.fingerprint() != b.fingerprint()

    def test_machine_changes_fingerprint(self):
        base = golden_job()
        bigger = uniform_machine(linear_topology(2), 6, 2)
        changed = CompileJob(base.circuit, bigger, base.config)
        assert base.fingerprint() != changed.fingerprint()

    def test_config_changes_fingerprint(self):
        base = golden_job()
        changed = CompileJob(
            base.circuit, base.machine, CompilerConfig.optimized()
        )
        assert base.fingerprint() != changed.fingerprint()

    def test_params_only_matter_when_simulating(self):
        base = golden_job()
        hot = DEFAULT_PARAMS.with_noise(heating_rate=99.0)
        compiled_only = CompileJob(
            base.circuit, base.machine, base.config, params=hot
        )
        assert base.fingerprint() == compiled_only.fingerprint()
        simulated = CompileJob(
            base.circuit, base.machine, base.config, simulate=True
        )
        simulated_hot = CompileJob(
            base.circuit, base.machine, base.config, params=hot, simulate=True
        )
        assert base.fingerprint() != simulated.fingerprint()
        assert simulated.fingerprint() != simulated_hot.fingerprint()

    def test_unknown_type_raises(self):
        with pytest.raises(FingerprintError):
            fingerprint(object())


class TestSweep:
    def test_grid_expansion(self):
        circuits = tiny_suite()
        machines = [tiny_machine(), uniform_machine(linear_topology(4), 6, 2)]
        configs = [CompilerConfig.baseline(), CompilerConfig.optimized()]
        jobs = sweep(circuits, machines, configs)
        assert len(jobs) == len(circuits) * len(machines) * len(configs)
        # Nesting: circuit > machine > config.
        assert jobs[0].circuit is circuits[0]
        assert jobs[0].machine is machines[0]
        assert jobs[0].config is configs[0]
        assert jobs[1].config is configs[1]
        assert jobs[2].machine is machines[1]
        assert jobs[4].circuit is circuits[1]

    def test_single_objects_accepted(self):
        jobs = sweep(
            tiny_suite()[0], tiny_machine(), CompilerConfig.baseline()
        )
        assert len(jobs) == 1

    def test_deterministic_expansion(self):
        make = lambda: sweep(
            tiny_suite(),
            tiny_machine(),
            [CompilerConfig.baseline(), CompilerConfig.optimized()],
        )
        assert [j.fingerprint() for j in make()] == [
            j.fingerprint() for j in make()
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            sweep([], tiny_machine(), CompilerConfig.baseline())

    def test_paired_jobs_layout(self):
        circuits = tiny_suite()
        jobs = paired_jobs(
            circuits,
            tiny_machine(),
            CompilerConfig.baseline(),
            CompilerConfig.optimized(),
        )
        assert len(jobs) == 4
        assert jobs[0].config.name == "baseline[7]"
        assert jobs[1].config.name == "this-work"
        assert jobs[2].circuit is circuits[1]


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "c" * 62
        assert cache.get(key) is None
        cache.put(key, {"value": 41})
        assert cache.get(key) == {"value": 41}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "c" * 62
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" + "c" * 62, 1)
        cache.put("cd" + "e" * 62, 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_null_cache_never_stores(self):
        cache = NullCache()
        cache.put("ab" + "c" * 62, 1)
        assert cache.get("ab" + "c" * 62) is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1


class TestCacheCrashSafety:
    """A writer killed mid-``put`` must leave the store fully usable:
    no truncated entry, no phantom count, no quarantine on next read."""

    def test_kill_mid_write_leaves_no_trace(self, tmp_path):
        key = "ab" + "c" * 62
        root = tmp_path / "cache"
        # The child pickles a payload whose tail hard-kills the
        # process (os._exit skips every finally/atexit), after a body
        # large enough that partial frames have already hit the disk —
        # the worst-case torn write.
        script = textwrap.dedent(
            """
            import os, sys
            from repro.batch.cache import ResultCache

            class Bomb:
                def __reduce__(self):
                    os._exit(86)

            cache = ResultCache(sys.argv[1])
            cache.put(sys.argv[2], [b"x" * (1 << 20), Bomb()])
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(root), key],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 86, proc.stderr

        # The kill really landed mid-write: an orphaned temp file is
        # on disk...
        shard = root / key[:2]
        leftovers = [p.name for p in shard.iterdir()]
        assert leftovers, "child died before opening its temp file"
        # ...but it is invisible to the entry globs (the `.part`
        # suffix regression: pathlib's `*.pkl` DOES match dotfiles).
        cache = ResultCache(root)
        assert len(cache) == 0
        assert key not in cache
        # The torn write is a clean miss — not a corrupt entry, not a
        # quarantine.
        assert cache.get(key) is None
        assert cache.stats.corrupt == 0
        # And the slot is immediately writable again.
        cache.put(key, {"value": 7})
        assert cache.get(key) == {"value": 7}
        assert len(cache) == 1


class TestRunnerInterrupt:
    def _jobs(self):
        return paired_jobs(
            tiny_suite(),
            tiny_machine(),
            CompilerConfig.baseline(),
            CompilerConfig.optimized(),
        )

    def test_preset_event_interrupts_serial_run(self):
        event = threading.Event()
        event.set()
        runner = BatchRunner(n_jobs=1, interrupt=event)
        results = runner.run(self._jobs())
        assert runner.interrupted
        assert [r.job_index for r in results] == list(range(len(results)))
        assert all(r.outcome == "interrupted" for r in results)
        assert all(not r.ok for r in results)

    def test_progress_callback_interrupts_mid_run(self):
        """Setting the event from the progress hook (how the CLI's
        SIGINT handler reaches a running batch) stops dispatch after
        the in-flight job."""
        event = threading.Event()

        def progress(done, total, job, job_result):
            event.set()

        runner = BatchRunner(n_jobs=1, progress=progress, interrupt=event)
        results = runner.run(self._jobs())
        assert runner.interrupted
        assert results[0].ok
        assert {r.outcome for r in results[1:]} == {"interrupted"}

    def test_preset_event_interrupts_pool_run(self):
        event = threading.Event()
        event.set()
        runner = BatchRunner(n_jobs=2, interrupt=event)
        results = runner.run(self._jobs())
        assert runner.interrupted
        assert all(r.outcome == "interrupted" for r in results)

    def test_preset_event_interrupts_run_timed(self):
        """The timeline path owes every planned arrival a record even
        when interrupted before the first dispatch."""
        event = threading.Event()
        event.set()
        jobs = self._jobs()
        runner = BatchRunner(n_jobs=1, interrupt=event)
        timed = runner.run_timed(jobs)
        assert runner.interrupted
        assert len(timed) == len(jobs)
        assert all(t.result.outcome == "interrupted" for t in timed)

    def test_no_event_means_no_interruption(self):
        runner = BatchRunner(n_jobs=1)
        results = runner.run(self._jobs())
        assert not runner.interrupted
        assert all(r.ok for r in results)


class TestRunner:
    def _jobs(self):
        return paired_jobs(
            tiny_suite(),
            tiny_machine(),
            CompilerConfig.baseline(),
            CompilerConfig.optimized(),
        )

    def test_results_are_index_aligned(self):
        jobs = self._jobs()
        results = BatchRunner(n_jobs=1).run(jobs)
        assert [r.job_index for r in results] == list(range(len(jobs)))
        for job, job_result in zip(jobs, results):
            assert job_result.ok
            assert job_result.result.config_name == job.config.name

    def test_parallel_matches_serial(self):
        jobs = self._jobs()
        serial = BatchRunner(n_jobs=1).run(jobs)
        parallel = BatchRunner(n_jobs=2).run(jobs)
        for a, b in zip(serial, parallel):
            assert result_blob(a.result) == result_blob(b.result)

    def test_error_isolation(self):
        too_small = uniform_machine(linear_topology(2), 4, 2)
        jobs = [
            CompileJob(
                tiny_suite()[0], tiny_machine(), CompilerConfig.baseline()
            ),
            CompileJob(tiny_suite()[0], too_small, CompilerConfig.baseline()),
            CompileJob(
                tiny_suite()[1], tiny_machine(), CompilerConfig.optimized()
            ),
        ]
        results = BatchRunner(n_jobs=1).run(jobs)
        assert results[0].ok
        assert not results[1].ok
        assert "CompilationError" in results[1].error
        assert results[2].ok

    def test_run_or_raise_preserves_exception_type(self):
        from repro.compiler.state import CompilationError

        too_small = uniform_machine(linear_topology(2), 4, 2)
        jobs = [
            CompileJob(tiny_suite()[0], too_small, CompilerConfig.baseline())
        ]
        with pytest.raises(CompilationError):
            BatchRunner(n_jobs=1).run_or_raise(jobs)

    def test_run_or_raise_falls_back_to_batch_error(self):
        too_small = uniform_machine(linear_topology(2), 4, 2)
        jobs = [
            CompileJob(tiny_suite()[0], too_small, CompilerConfig.baseline())
        ]
        results = BatchRunner(n_jobs=1).run(jobs)
        results[0].exception = None  # simulate an unpicklable original
        runner = BatchRunner(n_jobs=1)
        runner.run = lambda _jobs: results
        with pytest.raises(BatchError):
            runner.run_or_raise(jobs)

    def test_progress_callback(self):
        seen = []
        jobs = self._jobs()
        runner = BatchRunner(
            n_jobs=1,
            progress=lambda done, total, job, jr: seen.append(
                (done, total, jr.job_index)
            ),
        )
        runner.run(jobs)
        assert len(seen) == len(jobs)
        assert seen[-1][0] == len(jobs)
        assert all(total == len(jobs) for _, total, _ in seen)

    def test_in_run_deduplication(self):
        job = CompileJob(
            tiny_suite()[0], tiny_machine(), CompilerConfig.baseline()
        )
        runner = BatchRunner(n_jobs=1)
        results = runner.run([job, job])
        assert runner.deduplicated == 1
        assert result_blob(results[0].result) == result_blob(
            results[1].result
        )
        assert [r.job_index for r in results] == [0, 1]

    def test_warm_cache_replays_without_compiling(self, tmp_path):
        jobs = self._jobs()
        cold = BatchRunner(n_jobs=1, cache=ResultCache(tmp_path / "c"))
        cold_results = cold.run(jobs)
        assert cold.cache_stats.misses == len(jobs)
        warm = BatchRunner(n_jobs=1, cache=ResultCache(tmp_path / "c"))
        warm_results = warm.run(jobs)
        assert warm.cache_stats.hits == len(jobs)
        assert warm.cache_stats.misses == 0
        assert all(r.cache_hit for r in warm_results)
        for a, b in zip(cold_results, warm_results):
            assert result_blob(a.result) == result_blob(b.result)

    def test_failures_are_not_cached(self, tmp_path):
        too_small = uniform_machine(linear_topology(2), 4, 2)
        jobs = [
            CompileJob(tiny_suite()[0], too_small, CompilerConfig.baseline())
        ]
        cache = ResultCache(tmp_path / "c")
        BatchRunner(n_jobs=1, cache=cache).run(jobs)
        assert cache.stats.puts == 0
        assert len(cache) == 0

    def test_jobs_and_results_are_picklable(self):
        jobs = self._jobs()[:1]
        results = BatchRunner(n_jobs=1).run(jobs)
        assert pickle.loads(pickle.dumps(jobs[0])).label == jobs[0].label
        restored = pickle.loads(pickle.dumps(results[0]))
        assert restored.result == results[0].result


class TestRecords:
    def test_flat_records_and_export(self, tmp_path):
        jobs = paired_jobs(
            tiny_suite()[:1],
            tiny_machine(),
            CompilerConfig.baseline(),
            CompilerConfig.optimized(),
            simulate=True,
        )
        results = BatchRunner(n_jobs=1).run(jobs)
        records = build_records(jobs, results)
        assert len(records) == 2
        assert records[0].config == "baseline[7]"
        assert records[0].num_shuttles == results[0].result.num_shuttles
        assert records[0].log10_fidelity is not None
        json_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"
        write_json(records, str(json_path))
        write_csv(records, str(csv_path))
        assert '"num_shuttles"' in json_path.read_text()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("job_index,fingerprint,circuit")
        assert "num_shuttles" in records_to_json(records)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_records([], [object()])


class TestCompileTimeExcludedFromEquality:
    def test_fresh_recompilations_compare_equal(self):
        job = CompileJob(
            tiny_suite()[0], tiny_machine(), CompilerConfig.optimized()
        )
        first = BatchRunner(n_jobs=1).run([job])[0].result
        second = BatchRunner(n_jobs=1).run([job])[0].result
        # Wall-clock differs between the two compilations...
        assert first.compile_time != 0.0
        # ...but equality is content-based, so they compare equal.
        assert first == second

    def test_different_schedules_compare_unequal(self):
        baseline = CompileJob(
            tiny_suite()[0], tiny_machine(), CompilerConfig.baseline()
        )
        optimized = CompileJob(
            tiny_suite()[0], tiny_machine(), CompilerConfig.optimized()
        )
        results = BatchRunner(n_jobs=1).run([baseline, optimized])
        assert results[0].result != results[1].result


class TestRunSuiteEquivalence:
    """The regression the cache must never break: run_suite through the
    batch engine — serial, parallel, cold and warm cache — produces
    byte-identical metrics to the direct serial path of compare()."""

    def direct_serial(self):
        return [
            compare(circuit, tiny_machine(), simulate=True)
            for circuit in tiny_suite()
        ]

    def test_batch_matches_direct_serial_path(self, tmp_path):
        reference = [comparison_blob(c) for c in self.direct_serial()]
        cache = ResultCache(tmp_path / "cache")

        serial_cold = run_suite(
            circuits=tiny_suite(),
            machine=tiny_machine(),
            simulate=True,
            n_jobs=1,
            cache=cache,
        )
        assert [comparison_blob(c) for c in serial_cold] == reference
        assert cache.stats.hits == 0

        parallel_warm_runner = BatchRunner(
            n_jobs=2, cache=ResultCache(tmp_path / "cache")
        )
        parallel_warm = run_suite(
            circuits=tiny_suite(),
            machine=tiny_machine(),
            simulate=True,
            runner=parallel_warm_runner,
        )
        assert [comparison_blob(c) for c in parallel_warm] == reference
        # Warm replay: zero recompilations.
        assert parallel_warm_runner.cache_stats.misses == 0
        assert parallel_warm_runner.cache_stats.hits == 4

        parallel_cold = run_suite(
            circuits=tiny_suite(),
            machine=tiny_machine(),
            simulate=True,
            n_jobs=2,
        )
        assert [comparison_blob(c) for c in parallel_cold] == reference

    def test_run_suite_propagates_compilation_errors(self):
        # The serial path's error contract survives the batch engine:
        # an oversized circuit raises CompilationError, not a wrapper.
        from repro.compiler.state import CompilationError

        too_small = uniform_machine(linear_topology(2), 4, 2)
        with pytest.raises(CompilationError):
            run_suite(
                circuits=tiny_suite()[:1],
                machine=too_small,
                simulate=False,
            )

    def test_parallel_run_suite_propagates_compilation_errors(self):
        from repro.compiler.state import CompilationError

        too_small = uniform_machine(linear_topology(2), 4, 2)
        with pytest.raises(CompilationError):
            run_suite(
                circuits=tiny_suite(),
                machine=too_small,
                simulate=False,
                n_jobs=2,
            )

    def test_run_suite_verbose_output(self, capsys):
        run_suite(
            circuits=tiny_suite()[:1],
            machine=tiny_machine(),
            simulate=False,
            verbose=True,
        )
        assert "shuttles" in capsys.readouterr().out


@pytest.mark.slow
class TestPaperSuiteEquivalence:
    """Acceptance run: the paper suite through the batch engine with
    n_jobs=4 is identical to the serial harness, and a warm-cache
    replay performs zero recompilations."""

    def test_paper_suite_parallel_and_warm_cache(self, tmp_path):
        circuits = paper_suite(full=False)
        reference = [
            comparison_blob(compare(circuit, simulate=False))
            for circuit in circuits
        ]

        cold_runner = BatchRunner(
            n_jobs=4, cache=ResultCache(tmp_path / "cache")
        )
        cold = run_suite(
            circuits=circuits, simulate=False, runner=cold_runner
        )
        assert [comparison_blob(c) for c in cold] == reference
        assert cold_runner.cache_stats.misses == 2 * len(circuits)

        warm_runner = BatchRunner(
            n_jobs=4, cache=ResultCache(tmp_path / "cache")
        )
        warm = run_suite(
            circuits=circuits, simulate=False, runner=warm_runner
        )
        assert [comparison_blob(c) for c in warm] == reference
        # Zero recompilations, verified by cache hit stats.
        assert warm_runner.cache_stats.hits == 2 * len(circuits)
        assert warm_runner.cache_stats.misses == 0
