"""Greedy initial-mapping tests."""

import pytest

from repro.arch import l6_machine, linear_topology, uniform_machine
from repro.circuits.circuit import Circuit
from repro.compiler.mapping import greedy_initial_mapping
from repro.compiler.state import CompilationError


def small_machine(traps=3, capacity=5, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


class TestBasics:
    def test_partners_co_located(self):
        circuit = Circuit(4).add("ms", 0, 1).add("ms", 2, 3)
        chains = greedy_initial_mapping(circuit, small_machine())
        trap_of = {q: t for t, chain in chains.items() for q in chain}
        assert trap_of[0] == trap_of[1]
        assert trap_of[2] == trap_of[3]

    def test_every_qubit_placed_once(self):
        circuit = Circuit(10).add("ms", 0, 9).add("ms", 3, 4)
        chains = greedy_initial_mapping(circuit, small_machine())
        placed = [q for chain in chains.values() for q in chain]
        assert sorted(placed) == list(range(10))

    def test_respects_load_capacity(self):
        machine = small_machine(traps=3, capacity=5, comm=2)
        circuit = Circuit(9)
        for q in range(0, 9, 2):
            if q + 1 < 9:
                circuit.add("ms", q, q + 1)
        chains = greedy_initial_mapping(circuit, machine)
        for trap_id, chain in chains.items():
            assert len(chain) <= machine.trap(trap_id).load_capacity

    def test_contiguous_fill_for_sequential_interaction(self):
        # QFT-style: qubit 0 interacts with everyone in order; the
        # mapper should fill traps contiguously (T0 = first 4 qubits).
        circuit = Circuit(12)
        for j in range(1, 12):
            circuit.add("ms", 0, j)
        chains = greedy_initial_mapping(circuit, small_machine())
        assert chains[0] == [0, 1, 2, 3]
        assert chains[1] == [4, 5, 6, 7]
        assert chains[2] == [8, 9, 10, 11]

    def test_untouched_qubits_first_fit(self):
        circuit = Circuit(6).add("ms", 4, 5)
        chains = greedy_initial_mapping(circuit, small_machine())
        placed = [q for chain in chains.values() for q in chain]
        assert sorted(placed) == list(range(6))
        # Interacting pair placed first, together.
        trap_of = {q: t for t, chain in chains.items() for q in chain}
        assert trap_of[4] == trap_of[5] == 0

    def test_too_many_qubits_rejected(self):
        machine = small_machine(traps=2, capacity=3, comm=1)
        with pytest.raises(CompilationError):
            greedy_initial_mapping(Circuit(5), machine)

    def test_exactly_load_capacity_fits(self):
        machine = small_machine(traps=2, capacity=3, comm=1)
        chains = greedy_initial_mapping(Circuit(4), machine)
        assert sum(len(c) for c in chains.values()) == 4

    def test_deterministic(self):
        circuit = Circuit(20)
        for q in range(0, 20, 2):
            circuit.add("ms", q, (q + 7) % 20)
        machine = l6_machine()
        first = greedy_initial_mapping(circuit, machine)
        second = greedy_initial_mapping(circuit, machine)
        assert first == second

    def test_one_qubit_gates_ignored(self):
        circuit = Circuit(4).add("h", 3).add("ms", 0, 1)
        chains = greedy_initial_mapping(circuit, small_machine())
        trap_of = {q: t for t, chain in chains.items() for q in chain}
        assert trap_of[0] == trap_of[1]

    def test_paper_scale(self):
        machine = l6_machine()
        circuit = Circuit(64)
        for q in range(63):
            circuit.add("ms", q, q + 1)
        chains = greedy_initial_mapping(circuit, machine)
        assert [len(chains[t]) for t in range(6)] == [15, 15, 15, 15, 4, 0]

    def test_partner_joins_nearest_trap_when_home_full(self):
        # Fill T0's load exactly, then a new partner of a T0 qubit must
        # land in T1 (nearest), not a farther trap.
        machine = small_machine(traps=3, capacity=5, comm=1)
        circuit = Circuit(5)
        circuit.add("ms", 0, 1).add("ms", 2, 3)  # fill T0 load (4)
        circuit.add("ms", 0, 4)  # 4 cannot join T0
        chains = greedy_initial_mapping(circuit, machine)
        assert 4 in chains[1]
