"""Round-trip the generated benchmark suite through QASM files on disk.

Exercises the writer + parser at realistic scale: every NISQ benchmark
is dumped to a ``.qasm`` file, re-parsed, and checked for structural
equality (two-qubit-gate count after re-decomposition and interaction
multiset).
"""

import pytest

from repro.bench import (
    qaoa_circuit,
    qft_circuit,
    quadratic_form_circuit,
    squareroot_circuit,
    supremacy_circuit,
)
from repro.circuits.decompose import decompose_circuit
from repro.circuits.qasm import load_qasm
from repro.circuits.qasm_writer import dump_qasm


@pytest.mark.parametrize(
    "factory",
    [
        lambda: supremacy_circuit(cycles=4),
        lambda: qaoa_circuit(rounds=1),
        lambda: squareroot_circuit(squarer_iterations=1),
        lambda: qft_circuit(num_qubits=16),
        lambda: quadratic_form_circuit(num_linear=4, num_quadratic=6),
    ],
    ids=["supremacy", "qaoa", "squareroot", "qft", "quadraticform"],
)
def test_benchmark_round_trips_through_disk(tmp_path, factory):
    circuit = factory()
    path = tmp_path / f"{circuit.name}.qasm"
    dump_qasm(circuit, str(path))
    reparsed = load_qasm(str(path))
    assert reparsed.num_qubits == circuit.num_qubits

    # ms gates serialize as the rxx macro (2 cx); re-decomposing both
    # sides to the native set must agree on the two-qubit gate count.
    native_original = decompose_circuit(circuit, keep_one_qubit=False)
    native_reparsed = decompose_circuit(reparsed, keep_one_qubit=False)
    assert (
        native_reparsed.num_two_qubit_gates
        == 2 * native_original.num_two_qubit_gates
        or native_reparsed.num_two_qubit_gates
        == native_original.num_two_qubit_gates
    )

    # Interaction pairs (which qubits ever touch) must be preserved.
    assert set(native_reparsed.interaction_pairs()) == set(
        native_original.interaction_pairs()
    )


def test_qasm_file_name_becomes_circuit_name(tmp_path):
    circuit = qft_circuit(num_qubits=4)
    path = tmp_path / "myqft.qasm"
    dump_qasm(circuit, str(path))
    assert load_qasm(str(path)).name == "myqft"
