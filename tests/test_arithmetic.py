"""Classical verification of the reversible-arithmetic substrate."""

import pytest

from repro.bench.arithmetic import (
    adder_circuit,
    mct_vchain,
    mcz_vchain,
    ripple_adder,
    ripple_subtractor,
    run_classical,
)
from repro.circuits.gate import Gate


def pack(values_and_widths):
    """Pack (value, width) pairs LSB-first into one integer state."""
    state = 0
    offset = 0
    for value, width in values_and_widths:
        state |= (value & ((1 << width) - 1)) << offset
        offset += width
    return state


def unpack(state, offset, width):
    return (state >> offset) & ((1 << width) - 1)


class TestRippleAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 0), (3, 5), (7, 7), (6, 1)])
    def test_addition_mod_2n(self, a, b):
        n = 3
        a_bits = list(range(n))
        b_bits = list(range(n, 2 * n))
        carry = 2 * n
        gates = list(ripple_adder(a_bits, b_bits, carry))
        state = pack([(a, n), (b, n), (0, 1)])
        out = run_classical(gates, 2 * n + 1, state)
        assert unpack(out, n, n) == (a + b) % (1 << n)  # b += a
        assert unpack(out, 0, n) == a  # a unchanged
        assert unpack(out, 2 * n, 1) == 0  # carry ancilla restored

    @pytest.mark.parametrize("a,b", [(7, 1), (5, 5), (4, 4)])
    def test_carry_out(self, a, b):
        n = 3
        a_bits = list(range(n))
        b_bits = list(range(n, 2 * n))
        carry = 2 * n
        carry_out = 2 * n + 1
        gates = list(ripple_adder(a_bits, b_bits, carry, carry_out))
        state = pack([(a, n), (b, n), (0, 1), (0, 1)])
        out = run_classical(gates, 2 * n + 2, state)
        total = a + b
        assert unpack(out, n, n) == total % (1 << n)
        assert unpack(out, 2 * n + 1, 1) == total >> n

    def test_exhaustive_two_bit(self):
        n = 2
        a_bits = [0, 1]
        b_bits = [2, 3]
        gates = list(ripple_adder(a_bits, b_bits, 4))
        for a in range(4):
            for b in range(4):
                out = run_classical(gates, 5, pack([(a, 2), (b, 2), (0, 1)]))
                assert unpack(out, 2, 2) == (a + b) % 4

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            list(ripple_adder([0], [1, 2], 3))

    def test_adder_circuit_wrapper(self):
        circuit = adder_circuit(4)
        assert circuit.num_qubits == 9
        assert circuit.num_two_qubit_gates > 0


class TestRippleSubtractor:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 3), (3, 1), (5, 5), (7, 2)])
    def test_subtraction_mod_2n(self, a, b):
        n = 3
        a_bits = list(range(n))
        b_bits = list(range(n, 2 * n))
        gates = list(ripple_subtractor(a_bits, b_bits, 2 * n))
        out = run_classical(gates, 2 * n + 1, pack([(a, n), (b, n), (0, 1)]))
        assert unpack(out, n, n) == (b - a) % (1 << n)


class TestMultiControlled:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_mct_truth_table(self, k):
        controls = list(range(k))
        target = k
        ancillas = list(range(k + 1, k + 1 + max(0, k - 2)))
        num_qubits = k + 1 + len(ancillas)
        gates = list(mct_vchain(controls, target, ancillas))
        for pattern in range(1 << k):
            state = pattern  # controls in low bits, target 0, ancillas 0
            out = run_classical(gates, num_qubits, state)
            expected_flip = pattern == (1 << k) - 1
            assert unpack(out, k, 1) == (1 if expected_flip else 0)
            # ancillas restored
            assert out >> (k + 1) == 0
            # controls unchanged
            assert unpack(out, 0, k) == pattern

    def test_mct_zero_controls_is_x(self):
        gates = list(mct_vchain([], 0, []))
        assert gates == [Gate("x", (0,))]

    def test_mct_insufficient_ancillas(self):
        with pytest.raises(ValueError):
            list(mct_vchain([0, 1, 2, 3], 4, []))

    def test_mcz_structure(self):
        gates = list(mcz_vchain([0, 1, 2], 3, [4]))
        assert gates[0] == Gate("h", (3,))
        assert gates[-1] == Gate("h", (3,))

    def test_run_classical_rejects_non_classical(self):
        with pytest.raises(ValueError):
            run_classical([Gate("h", (0,))], 1, 0)

    def test_run_classical_width_guard(self):
        with pytest.raises(ValueError):
            run_classical([Gate("x", (3,))], 2, 0)
