"""Router tests: multi-hop routes and traffic-block resolution."""

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.circuits.gate import Gate
from repro.compiler.config import CompilerConfig
from repro.compiler.routing import Router
from repro.compiler.state import CompilationError, CompilerState
from repro.sim.ops import MergeOp, MoveOp, ShuttleReason, SplitOp
from repro.sim.schedule import Schedule


def make_router(chains, traps=4, capacity=3, comm=1, config=None, upcoming=()):
    machine = uniform_machine(linear_topology(traps), capacity, comm)
    state = CompilerState(machine, chains)
    schedule = Schedule()
    router = Router(
        state,
        schedule,
        config or CompilerConfig.optimized(),
        upcoming_factory=lambda: list(upcoming),
    )
    return router, state, schedule


class TestPlainRoutes:
    def test_single_hop(self):
        router, state, schedule = make_router({0: [0], 1: [1]})
        moves = router.route(0, 1, ShuttleReason.GATE, frozenset())
        assert moves == 1
        kinds = [op.kind for op in schedule]
        assert kinds == ["split", "move", "merge"]
        assert state.trap_of(0) == 1

    def test_multi_hop(self):
        router, state, schedule = make_router({0: [0], 3: [1]})
        moves = router.route(0, 3, ShuttleReason.GATE, frozenset())
        assert moves == 3
        assert state.trap_of(0) == 3
        move_ops = [op for op in schedule if isinstance(op, MoveOp)]
        assert [(m.src, m.dst) for m in move_ops] == [(0, 1), (1, 2), (2, 3)]

    def test_noop_route(self):
        router, state, schedule = make_router({0: [0]})
        assert router.route(0, 0, ShuttleReason.GATE, frozenset()) == 0
        assert len(schedule) == 0

    def test_reason_propagated(self):
        router, _, schedule = make_router({0: [0], 1: [1]})
        router.route(0, 1, ShuttleReason.REBALANCE, frozenset())
        assert all(op.reason == ShuttleReason.REBALANCE for op in schedule)


class TestTrafficBlocks:
    def test_blocked_intermediate_trap_resolved(self):
        """Fig. 7: the route passes through a full trap, which must
        first evict one ion."""
        chains = {0: [0], 1: [1, 2, 3], 2: [4], 3: []}
        router, state, schedule = make_router(chains, capacity=3)
        moves = router.route(0, 2, ShuttleReason.GATE, frozenset())
        # 2 hops for ion 0 plus at least 1 eviction hop out of trap 1.
        assert moves >= 3
        assert router.num_rebalances == 1
        assert state.trap_of(0) == 2
        assert state.occupancy(1) <= 3

    def test_full_destination_resolved(self):
        chains = {0: [0], 1: [1, 2, 3]}
        router, state, schedule = make_router(chains, traps=3, capacity=3)
        router.route(0, 1, ShuttleReason.GATE, frozenset())
        assert state.trap_of(0) == 1
        assert router.num_rebalances == 1

    def test_pinned_ion_not_evicted(self):
        chains = {0: [0], 1: [1, 2, 3]}
        router, state, schedule = make_router(
            chains, traps=3, capacity=3
        )
        router.route(0, 1, ShuttleReason.GATE, frozenset({1}))
        assert state.trap_of(1) == 1  # pinned partner stayed

    def test_both_full_resolves_via_freed_source_slot(self):
        # Two traps, both full: splitting the routed ion frees a slot
        # in the source, so the destination's evictee can land there.
        machine_chains = {0: [0, 1, 2], 1: [3, 4, 5]}
        router, state, _ = make_router(machine_chains, traps=2, capacity=3)
        router.route(0, 1, ShuttleReason.GATE, frozenset())
        assert state.trap_of(0) == 1

    def test_unresolvable_when_every_evictee_pinned(self):
        machine_chains = {0: [0, 1, 2], 1: [3, 4, 5]}
        router, _, _ = make_router(machine_chains, traps=2, capacity=3)
        with pytest.raises(CompilationError):
            router.route(
                0, 1, ShuttleReason.GATE, frozenset({1, 2, 3, 4, 5})
            )

    def test_eviction_respects_strategy(self):
        # lowest-index sends the evicted ion toward trap 0 even when a
        # nearer free trap exists on the other side.
        chains = {0: [0], 1: [1], 2: [2, 3, 4], 3: []}
        config = CompilerConfig.baseline()
        router, state, schedule = make_router(
            chains, traps=4, capacity=3, config=config
        )
        router.route(0, 2, ShuttleReason.GATE, frozenset())
        rebalance_moves = [
            op
            for op in schedule
            if isinstance(op, MoveOp) and op.reason == ShuttleReason.REBALANCE
        ]
        # Baseline: evicted ion goes to trap 0 side (first with room).
        assert rebalance_moves[0].dst < 2

    def test_cheap_evict_requires_free_neighbor(self):
        chains = {0: [0, 1, 2], 1: [3, 4, 5]}
        router, _, _ = make_router(chains, traps=2, capacity=3)
        assert router.cheap_evict(0, frozenset()) is False

    def test_cheap_evict_moves_one_ion(self):
        chains = {0: [0, 1, 2], 1: []}
        router, state, schedule = make_router(chains, traps=2, capacity=3)
        assert router.cheap_evict(0, frozenset()) is True
        assert state.occupancy(0) == 2
        assert schedule.num_shuttles == 1

    def test_cheap_evict_skips_anchored_ions(self):
        # Every ion in the full trap has near-future work there:
        # the eviction is declined.
        chains = {0: [0, 1, 2], 1: []}
        upcoming = [Gate("ms", (0, 1)), Gate("ms", (1, 2)), Gate("ms", (0, 2))]
        router, _, _ = make_router(
            chains, traps=2, capacity=3, upcoming=upcoming
        )
        assert router.cheap_evict(0, frozenset()) is False
