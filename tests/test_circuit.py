"""Unit tests for repro.circuits.circuit."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate, GateError


def sample_circuit() -> Circuit:
    return Circuit(
        4,
        [
            Gate("h", (0,)),
            Gate("ms", (0, 1)),
            Gate("ms", (2, 3)),
            Gate("ms", (1, 2)),
        ],
        name="sample",
    )


class TestConstruction:
    def test_empty(self):
        circuit = Circuit(3)
        assert len(circuit) == 0
        assert circuit.num_qubits == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Circuit(0)
        with pytest.raises(ValueError):
            Circuit(-2)

    def test_gate_out_of_range_rejected(self):
        circuit = Circuit(2)
        with pytest.raises(GateError):
            circuit.append(Gate("ms", (0, 5)))

    def test_append_returns_self(self):
        circuit = Circuit(2)
        assert circuit.append(Gate("h", (0,))) is circuit

    def test_append_type_checked(self):
        with pytest.raises(TypeError):
            Circuit(2).append("ms 0 1")  # type: ignore[arg-type]

    def test_add_convenience(self):
        circuit = Circuit(2).add("ms", 0, 1).add("rz", 0, params=[0.5])
        assert len(circuit) == 2
        assert circuit[1].params == (0.5,)

    def test_extend(self):
        circuit = Circuit(2)
        circuit.extend([Gate("h", (0,)), Gate("h", (1,))])
        assert len(circuit) == 2

    def test_compose(self):
        a = Circuit(3).add("ms", 0, 1)
        b = Circuit(2).add("ms", 0, 1)
        a.compose(b)
        assert len(a) == 2

    def test_compose_too_large_rejected(self):
        small = Circuit(2)
        big = Circuit(5).add("ms", 3, 4)
        with pytest.raises(GateError):
            small.compose(big)


class TestAccess:
    def test_iteration_order(self):
        circuit = sample_circuit()
        names = [g.name for g in circuit]
        assert names == ["h", "ms", "ms", "ms"]

    def test_indexing(self):
        assert sample_circuit()[1].qubits == (0, 1)

    def test_equality(self):
        assert sample_circuit() == sample_circuit()
        other = sample_circuit()
        other.add("h", 3)
        assert sample_circuit() != other

    def test_gates_tuple_immutable(self):
        gates = sample_circuit().gates
        assert isinstance(gates, tuple)

    def test_repr_mentions_name(self):
        assert "sample" in repr(sample_circuit())


class TestStatistics:
    def test_count_ops(self):
        counts = sample_circuit().count_ops()
        assert counts["ms"] == 3
        assert counts["h"] == 1

    def test_two_qubit_count(self):
        assert sample_circuit().num_two_qubit_gates == 3
        assert sample_circuit().num_one_qubit_gates == 1

    def test_two_qubit_gates_list(self):
        gates = sample_circuit().two_qubit_gates()
        assert len(gates) == 3
        assert all(g.is_two_qubit for g in gates)

    def test_used_qubits(self):
        assert sample_circuit().used_qubits() == {0, 1, 2, 3}
        assert Circuit(5).add("ms", 1, 3).used_qubits() == {1, 3}

    def test_depth_serial_chain(self):
        circuit = Circuit(2)
        for _ in range(5):
            circuit.add("ms", 0, 1)
        assert circuit.depth() == 5

    def test_depth_parallel_gates(self):
        circuit = Circuit(4).add("ms", 0, 1).add("ms", 2, 3)
        assert circuit.depth() == 1

    def test_depth_empty(self):
        assert Circuit(3).depth() == 0

    def test_interaction_pairs_unordered(self):
        circuit = Circuit(3).add("ms", 1, 0).add("ms", 0, 1)
        pairs = circuit.interaction_pairs()
        assert pairs[(0, 1)] == 2


class TestTransforms:
    def test_remap(self):
        circuit = Circuit(2).add("ms", 0, 1)
        remapped = circuit.remap({0: 3, 1: 1}, num_qubits=4)
        assert remapped[0].qubits == (3, 1)
        assert remapped.num_qubits == 4

    def test_without_one_qubit_gates(self):
        pruned = sample_circuit().without_one_qubit_gates()
        assert len(pruned) == 3
        assert all(not g.is_one_qubit for g in pruned)

    def test_copy_independent(self):
        original = sample_circuit()
        duplicate = original.copy()
        duplicate.add("h", 0)
        assert len(original) == 4
        assert len(duplicate) == 5

    def test_copy_rename(self):
        assert sample_circuit().copy(name="new").name == "new"
