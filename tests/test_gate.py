"""Unit tests for repro.circuits.gate."""

import math

import pytest

from repro.circuits.gate import (
    ONE_QUBIT_GATES,
    THREE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
    GateError,
    cp,
    cx,
    cz,
    h,
    ms,
    rx,
    ry,
    rz,
    rzz,
    swap,
    x,
)


class TestGateConstruction:
    def test_basic_two_qubit(self):
        gate = Gate("ms", (0, 1))
        assert gate.name == "ms"
        assert gate.qubits == (0, 1)
        assert gate.params == ()

    def test_name_lowercased(self):
        assert Gate("MS", (0, 1)).name == "ms"

    def test_qubits_coerced_to_int(self):
        gate = Gate("ms", (0.0, 1.0))  # type: ignore[arg-type]
        assert gate.qubits == (0, 1)
        assert all(isinstance(q, int) for q in gate.qubits)

    def test_params_coerced_to_float(self):
        gate = Gate("rz", (0,), (1,))
        assert gate.params == (1.0,)

    def test_empty_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate("ms", ())

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate("ms", (3, 3))

    def test_negative_qubit_rejected(self):
        with pytest.raises(GateError):
            Gate("ms", (-1, 0))

    def test_wrong_arity_rejected(self):
        with pytest.raises(GateError):
            Gate("ms", (0, 1, 2))
        with pytest.raises(GateError):
            Gate("h", (0, 1))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(GateError):
            Gate("rz", (0,))
        with pytest.raises(GateError):
            Gate("rz", (0,), (1.0, 2.0))

    def test_unknown_gate_allowed_any_arity(self):
        gate = Gate("mystery", (0, 1, 2, 3))
        assert gate.num_qubits == 4


class TestGateProperties:
    def test_is_one_qubit(self):
        assert Gate("h", (2,)).is_one_qubit
        assert not Gate("ms", (0, 1)).is_one_qubit

    def test_is_two_qubit(self):
        assert Gate("ms", (0, 1)).is_two_qubit
        assert not Gate("h", (0,)).is_two_qubit
        assert not Gate("ccx", (0, 1, 2)).is_two_qubit

    def test_expected_arity(self):
        assert Gate.expected_arity("h") == 1
        assert Gate.expected_arity("cx") == 2
        assert Gate.expected_arity("ccx") == 3
        assert Gate.expected_arity("nope") is None

    def test_gate_sets_disjoint(self):
        assert not ONE_QUBIT_GATES & TWO_QUBIT_GATES
        assert not TWO_QUBIT_GATES & THREE_QUBIT_GATES

    def test_frozen(self):
        gate = Gate("ms", (0, 1))
        with pytest.raises(AttributeError):
            gate.name = "cx"  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert Gate("ms", (0, 1)) == Gate("ms", (0, 1))
        assert Gate("ms", (0, 1)) != Gate("ms", (1, 0))
        assert hash(Gate("rz", (0,), (0.5,))) == hash(Gate("rz", (0,), (0.5,)))


class TestGateTransforms:
    def test_on(self):
        gate = Gate("rz", (0,), (0.3,))
        moved = gate.on(5)
        assert moved.qubits == (5,)
        assert moved.params == (0.3,)

    def test_remap(self):
        gate = Gate("ms", (0, 1))
        assert gate.remap({0: 7, 1: 2}).qubits == (7, 2)

    def test_remap_missing_raises(self):
        with pytest.raises(KeyError):
            Gate("ms", (0, 1)).remap({0: 7})


class TestGateFormatting:
    def test_str_plain(self):
        assert str(Gate("ms", (0, 1))) == "ms q[0], q[1];"

    def test_str_with_pi_param(self):
        assert str(Gate("rz", (0,), (math.pi,))) == "rz(pi) q[0];"

    def test_str_with_pi_fraction(self):
        assert str(Gate("rz", (0,), (math.pi / 2,))) == "rz(pi/2) q[0];"

    def test_str_with_negative_fraction(self):
        assert str(Gate("rz", (0,), (-math.pi / 4,))) == "rz(-pi/4) q[0];"

    def test_str_zero_param(self):
        assert str(Gate("rz", (0,), (0.0,))) == "rz(0) q[0];"


class TestConstructors:
    def test_ms(self):
        assert ms(0, 1) == Gate("ms", (0, 1))

    def test_cx(self):
        assert cx(2, 3) == Gate("cx", (2, 3))

    def test_cz(self):
        assert cz(0, 1) == Gate("cz", (0, 1))

    def test_cp(self):
        assert cp(0.5, 0, 1) == Gate("cp", (0, 1), (0.5,))

    def test_swap(self):
        assert swap(0, 1) == Gate("swap", (0, 1))

    def test_single_qubit_helpers(self):
        assert h(0) == Gate("h", (0,))
        assert x(1) == Gate("x", (1,))
        assert rx(0.1, 0) == Gate("rx", (0,), (0.1,))
        assert ry(0.2, 0) == Gate("ry", (0,), (0.2,))
        assert rz(0.3, 0) == Gate("rz", (0,), (0.3,))
        assert rzz(0.4, 0, 1) == Gate("rzz", (0, 1), (0.4,))
