"""Unit tests of the machine-semantics kernel (``repro.core``)."""

import math

import pytest

from repro.arch import linear_topology, ring_topology, uniform_machine
from repro.circuits.gate import Gate
from repro.core import (
    ClockObserver,
    HeatingObserver,
    MachineModelError,
    MachineState,
    OccupancyTraceObserver,
    estimate_makespan,
    is_applicable,
    occupancy_at,
    replay,
)
from repro.sim import MachineParams, Schedule, Simulator, TimingParams
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp


def machine(traps=3, capacity=4, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


def trip(ion, path):
    ops = [SplitOp(ion=ion, trap=path[0])]
    ops.extend(MoveOp(ion=ion, src=a, dst=b) for a, b in zip(path, path[1:]))
    ops.append(MergeOp(ion=ion, trap=path[-1]))
    return ops


class TestMachineState:
    def test_initial_placement(self):
        state = MachineState(machine(), {0: [0, 1], 2: [2]})
        assert state.trap_of(0) == 0
        assert state.trap_of(2) == 2
        assert state.occupancy(0) == 2
        assert state.occupancy(1) == 0
        assert state.excess_capacity(0) == 2
        assert not state.is_full(0)
        assert state.co_located(0, 1)
        assert not state.co_located(0, 2)

    def test_initial_overflow_rejected(self):
        with pytest.raises(MachineModelError, match="capacity"):
            MachineState(machine(capacity=2), {0: [0, 1, 2]})

    def test_initial_duplicate_rejected(self):
        with pytest.raises(MachineModelError, match="multiple traps"):
            MachineState(machine(), {0: [7], 1: [7]})

    def test_apply_full_trip(self):
        state = MachineState(machine(), {0: [0], 2: [1]})
        for op in trip(0, [0, 1, 2]):
            state.apply(op)
        assert state.trap_of(0) == 2
        assert state.chains[2] == [1, 0]
        state.require_settled()

    def test_transit_registry(self):
        state = MachineState(machine(), {0: [0]})
        state.apply(SplitOp(ion=0, trap=0))
        assert state.in_transit(0)
        assert state.transit_ions() == [0]
        with pytest.raises(MachineModelError, match="in transit"):
            state.require_settled()
        with pytest.raises(MachineModelError, match="is not mapped"):
            state.trap_of(0)

    def test_move_requires_edge(self):
        state = MachineState(machine(), {0: [0]})
        state.apply(SplitOp(ion=0, trap=0))
        with pytest.raises(MachineModelError, match="no shuttle path"):
            state.apply(MoveOp(ion=0, src=0, dst=2))

    def test_move_into_full_trap_rejected(self):
        state = MachineState(machine(capacity=1, comm=0), {0: [0], 1: [1]})
        state.apply(SplitOp(ion=0, trap=0))
        with pytest.raises(MachineModelError, match="full trap"):
            state.apply(MoveOp(ion=0, src=0, dst=1))

    def test_gate_requires_placement(self):
        state = MachineState(machine(), {0: [0], 1: [1]})
        with pytest.raises(MachineModelError, match="is not there"):
            state.apply(GateOp(gate=Gate("ms", (0, 1)), trap=0))

    def test_swap_adjacency(self):
        state = MachineState(machine(), {0: [0, 1, 2]})
        with pytest.raises(MachineModelError, match="not adjacent"):
            state.apply(SwapOp(ion_a=0, ion_b=2, trap=0))
        state.apply(SwapOp(ion_a=0, ion_b=1, trap=0))
        assert state.chains[0] == [1, 0, 2]

    def test_rejected_op_leaves_state_unchanged(self):
        state = MachineState(machine(), {0: [0, 1]})
        before = state.chains_dict()
        with pytest.raises(MachineModelError):
            state.apply(SplitOp(ion=5, trap=0))
        assert state.chains_dict() == before
        assert not state.in_transit(5)

    def test_unknown_ion_ids_are_errors_not_crashes(self):
        state = MachineState(machine(), {0: [0]})
        with pytest.raises(MachineModelError):
            state.apply(SplitOp(ion=99, trap=0))
        with pytest.raises(MachineModelError):
            state.apply(MoveOp(ion=99, src=0, dst=1))
        with pytest.raises(MachineModelError):
            state.apply(MergeOp(ion=99, trap=0))

    def test_compiler_primitives(self):
        state = MachineState(machine(), {0: [0, 1]})
        assert state.detach_ion(0) == 0
        state.attach_ion(0, 1)
        assert state.trap_of(0) == 1
        with pytest.raises(MachineModelError, match="still in trap"):
            state.attach_ion(0, 0)

    def test_has_edge(self):
        state = MachineState(machine(traps=4), {})
        assert state.has_edge(0, 1) and state.has_edge(1, 0)
        assert not state.has_edge(0, 2)


class TestReplay:
    def test_replay_returns_final_state(self):
        m = machine()
        state = replay(m, trip(0, [0, 1]), {0: [0]})
        assert state.chains_dict() == {0: [], 1: [0], 2: []}

    def test_replay_prefixes_op_position(self):
        m = machine()
        with pytest.raises(MachineModelError, match="op 1:"):
            replay(
                m,
                [SplitOp(ion=0, trap=0), MoveOp(ion=0, src=0, dst=2)],
                {0: [0]},
            )

    def test_replay_rejects_stranded_transit(self):
        with pytest.raises(MachineModelError, match="in transit"):
            replay(machine(), [SplitOp(ion=0, trap=0)], {0: [0]})

    def test_is_applicable(self):
        m = machine()
        assert is_applicable(m, trip(0, [0, 1]), {0: [0]})
        assert not is_applicable(m, [MoveOp(ion=0, src=0, dst=1)], {0: [0]})


class TestObservers:
    def test_clock_observer_matches_simulator_duration(self):
        m = machine()
        ops = trip(0, [0, 1, 2]) + [GateOp(gate=Gate("ms", (0, 1)), trap=2)]
        schedule = Schedule(ops)
        report = Simulator(m).run(schedule, {0: [0], 2: [1]})
        clock = ClockObserver(m.num_traps)
        replay(m, ops, {0: [0], 2: [1]}, (clock,))
        assert clock.makespan == report.duration

    def test_clock_drive_equals_replay_observation(self):
        m = machine()
        ops = trip(0, [0, 1, 2]) + [GateOp(gate=Gate("x", (1,)), trap=2)]
        driven = ClockObserver(m.num_traps).drive(ops)
        observed = ClockObserver(m.num_traps)
        replay(m, ops, {0: [0], 2: [1]}, (observed,))
        assert driven.clocks == observed.clocks

    def test_heating_observer_matches_simulator_fidelity(self):
        m = machine()
        ops = trip(0, [0, 1]) + [GateOp(gate=Gate("ms", (0, 1)), trap=1)]
        report = Simulator(m).run(Schedule(ops), {0: [0], 1: [1]})
        heat = HeatingObserver(m.num_traps)
        replay(m, ops, {0: [0], 1: [1]}, (heat,))
        assert heat.log_fidelity == report.program_log_fidelity
        assert heat.max_nbar == report.max_nbar
        assert heat.gate_fidelities == report.gate_fidelities
        assert math.isclose(heat.mean_gate_nbar, report.mean_gate_nbar)

    def test_occupancy_trace(self):
        m = machine()
        ops = trip(0, [0, 1, 2])
        trace = OccupancyTraceObserver()
        replay(m, ops, {0: [0, 1]}, (trace,))
        assert trace.events == [(0, 0, -1), (3, 2, +1)]
        assert trace.events == OccupancyTraceObserver.events_of(ops)
        assert occupancy_at(trace.events, [2, 0, 0], 0) == [2, 0, 0]
        assert occupancy_at(trace.events, [2, 0, 0], 2) == [1, 0, 0]
        assert occupancy_at(trace.events, [2, 0, 0], 4) == [1, 0, 1]

    def test_estimate_makespan_custom_timing(self):
        timing = TimingParams(move_time=1.0, split_time=2.0, merge_time=3.0)
        ops = trip(0, [0, 1])
        assert estimate_makespan(3, ops, timing) == 6.0


class TestErrorHierarchy:
    """Satellite regression: one base class across all three layers."""

    def test_compilation_error_is_machine_model_error(self):
        from repro.compiler.state import CompilationError, CompilerState

        with pytest.raises(MachineModelError) as excinfo:
            CompilerState(machine(capacity=2), {0: [0, 1, 2]})
        assert isinstance(excinfo.value, CompilationError)

    def test_simulation_error_is_machine_model_error(self):
        from repro.sim.simulator import SimulationError

        with pytest.raises(MachineModelError) as excinfo:
            Simulator(machine()).run(
                Schedule([MoveOp(ion=0, src=0, dst=1)]), {0: [0]}
            )
        assert isinstance(excinfo.value, SimulationError)

    def test_verification_error_is_machine_model_error(self):
        from repro.passes.verify import VerificationError, verify_schedule

        with pytest.raises(MachineModelError) as excinfo:
            verify_schedule(
                machine(), Schedule([MoveOp(ion=0, src=0, dst=1)]), {0: [0]}
            )
        assert isinstance(excinfo.value, VerificationError)

    def test_one_handler_catches_all_layers(self):
        """A caller can guard compile+simulate+verify with one except."""
        from repro.passes.verify import verify_schedule

        m = machine(capacity=2)
        caught = []
        for thunk in (
            lambda: CompilerStateOverflow(m),
            lambda: Simulator(m).run(
                Schedule([SplitOp(ion=0, trap=0)]), {0: [0]}
            ),
            lambda: verify_schedule(
                m, Schedule([SplitOp(ion=0, trap=0)]), {0: [0]}
            ),
        ):
            try:
                thunk()
            except MachineModelError as exc:
                caught.append(type(exc).__name__)
        assert caught == [
            "CompilationError",
            "SimulationError",
            "VerificationError",
        ]

    def test_exported_from_repro(self):
        import repro

        assert repro.MachineModelError is MachineModelError
        assert issubclass(repro.CompilationError, repro.MachineModelError)


def CompilerStateOverflow(m):
    from repro.compiler.state import CompilerState

    return CompilerState(m, {0: [0, 1, 2]})


class TestRingTopology:
    def test_ring_edges_in_kernel(self):
        m = uniform_machine(ring_topology(4), 2, 1)
        state = MachineState(m, {0: [0]})
        assert state.has_edge(0, 3)  # the wrap-around edge
        state.apply(SplitOp(ion=0, trap=0))
        state.apply(MoveOp(ion=0, src=0, dst=3))
        state.apply(MergeOp(ion=0, trap=3))
        assert state.trap_of(0) == 3
