"""Property suite for the per-identity sliding-window rate limiter.

The window math is two pure functions (`prune_window`,
`window_decision`) over immutable arrival tuples — so the contract can
be pinned exhaustively with arbitrary arrival sequences x window sizes
x limits:

* **never above limit** — no look-back window of width W ever contains
  more than `limit` admissions, for any arrival process;
* **always below limit** — a request with strictly fewer than `limit`
  admitted arrivals in its window is always admitted;
* **exact boundary** — an arrival exactly `window` seconds old has
  expired (half-open window);
* **exact retry_after** — retrying just after `now + retry_after` is
  admitted, retrying just before is still denied;
* **denied requests leave no trace** — rejected traffic cannot starve
  an identity.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.ratelimit import (
    SlidingWindowLimiter,
    prune_window,
    window_decision,
)

#: (seed, limit, window) grid driving the arbitrary-sequence properties.
GRID = [
    (seed, limit, window)
    for seed in (1, 7, 23)
    for limit in (1, 2, 5)
    for window in (0.5, 1.0, 10.0)
]


def _random_arrival_process(rng: random.Random, n: int) -> list[float]:
    """A monotone clock with bursty and sparse stretches."""
    now = 0.0
    out = []
    for _ in range(n):
        # Mix dense bursts (far below any window) with long gaps.
        now += rng.choice([0.0, 0.001, 0.01, 0.1, 0.4, 1.0, 3.0]) * (
            rng.random() + 0.001
        )
        out.append(now)
    return out


class TestPureWindowMath:
    @pytest.mark.parametrize("seed,limit,window", GRID)
    def test_never_admits_above_limit(self, seed, limit, window):
        """For an arbitrary arrival process, every look-back window of
        width `window` holds at most `limit` admissions."""
        rng = random.Random(seed)
        arrivals: tuple[float, ...] = ()
        admitted_times: list[float] = []
        for now in _random_arrival_process(rng, 400):
            ok, retry_after, arrivals = window_decision(
                arrivals, now, window, limit
            )
            if ok:
                admitted_times.append(now)
                assert retry_after == 0.0
            else:
                assert retry_after > 0.0
            # The invariant, checked against the full admission
            # history, not the limiter's own pruned state.
            in_window = [
                t for t in admitted_times if t > now - window
            ]
            assert len(in_window) <= limit

    @pytest.mark.parametrize("seed,limit,window", GRID)
    def test_always_admits_below_limit(self, seed, limit, window):
        """Whenever strictly fewer than `limit` admissions are inside
        the window, the next request must be admitted."""
        rng = random.Random(seed)
        arrivals: tuple[float, ...] = ()
        admitted_times: list[float] = []
        for now in _random_arrival_process(rng, 400):
            in_window = [t for t in admitted_times if t > now - window]
            ok, _, arrivals = window_decision(arrivals, now, window, limit)
            if len(in_window) < limit:
                assert ok, (
                    f"denied at {now} with only {len(in_window)}"
                    f"/{limit} in window"
                )
            if ok:
                admitted_times.append(now)

    def test_exact_boundary_expiry(self):
        """An arrival exactly `window` old has expired (half-open):
        limit 1, window 10 — a request at t=10 after one at t=0 is
        admitted; at t=10-eps it is denied."""
        ok, _, arrivals = window_decision((), 0.0, 10.0, 1)
        assert ok
        denied, retry_after, _ = window_decision(
            arrivals, 10.0 - 1e-9, 10.0, 1
        )
        assert not denied
        assert retry_after == pytest.approx(1e-9, abs=1e-12)
        ok, _, _ = window_decision(arrivals, 10.0, 10.0, 1)
        assert ok

    @pytest.mark.parametrize("seed,limit,window", GRID)
    def test_retry_after_is_exact(self, seed, limit, window):
        """Retrying at now + retry_after (+ float epsilon, per the
        documented contract) is admitted; any meaningfully earlier
        moment (half the wait) is still denied."""
        eps = 1e-9 * window
        rng = random.Random(seed)
        arrivals: tuple[float, ...] = ()
        for now in _random_arrival_process(rng, 200):
            ok, retry_after, arrivals = window_decision(
                arrivals, now, window, limit
            )
            if ok:
                continue
            # Denied: the hint must be exact in both directions.
            again_ok, _, _ = window_decision(
                arrivals, now + retry_after + eps, window, limit
            )
            assert again_ok
            if retry_after > 1e-6:
                early_ok, _, _ = window_decision(
                    arrivals, now + retry_after / 2, window, limit
                )
                assert not early_ok

    @pytest.mark.parametrize("seed,limit,window", GRID)
    def test_denied_requests_are_not_recorded(self, seed, limit, window):
        """A denial never extends the window: state after a denial
        equals the pruned state before it."""
        rng = random.Random(seed)
        arrivals: tuple[float, ...] = ()
        for now in _random_arrival_process(rng, 200):
            before = prune_window(arrivals, now, window)
            ok, _, arrivals = window_decision(arrivals, now, window, limit)
            if ok:
                assert arrivals == before + (now,)
            else:
                assert arrivals == before

    @pytest.mark.parametrize("seed,limit,window", GRID)
    def test_state_is_only_in_window_admissions(self, seed, limit, window):
        """The carried tuple is always sorted and inside the window."""
        rng = random.Random(seed)
        arrivals: tuple[float, ...] = ()
        for now in _random_arrival_process(rng, 200):
            _, _, arrivals = window_decision(arrivals, now, window, limit)
            assert list(arrivals) == sorted(arrivals)
            assert all(t > now - window for t in arrivals)
            assert len(arrivals) <= limit

    def test_validation(self):
        with pytest.raises(ValueError):
            window_decision((), 0.0, 10.0, 0)
        with pytest.raises(ValueError):
            window_decision((), 0.0, 0.0, 1)
        with pytest.raises(ValueError):
            SlidingWindowLimiter(0, 1.0)
        with pytest.raises(ValueError):
            SlidingWindowLimiter(1, 0.0)


class TestSlidingWindowLimiter:
    def test_identities_are_independent(self):
        limiter = SlidingWindowLimiter(1, 10.0)
        assert limiter.check("a", 0.0) == (True, 0.0)
        ok, retry_after = limiter.check("a", 1.0)
        assert not ok and retry_after == pytest.approx(9.0)
        # A different identity has its own window.
        assert limiter.check("b", 1.0)[0]
        assert len(limiter) == 2

    def test_burst_then_recovery(self):
        limiter = SlidingWindowLimiter(3, 1.0)
        admitted = [limiter.check("id", 0.01 * i)[0] for i in range(10)]
        assert sum(admitted) == 3
        assert limiter.check("id", 2.0) == (True, 0.0)

    def test_prune_idle_drops_expired_identities(self):
        limiter = SlidingWindowLimiter(2, 1.0)
        limiter.check("old", 0.0)
        limiter.check("fresh", 9.5)
        assert len(limiter) == 2
        assert limiter.prune_idle(10.0) == 1
        assert len(limiter) == 1
        # The pruned identity starts clean.
        assert limiter.check("old", 10.0) == (True, 0.0)

    def test_denied_identity_drains_naturally(self):
        """Sustained rejected traffic does not keep the identity
        blocked once its admissions expire."""
        limiter = SlidingWindowLimiter(1, 1.0)
        assert limiter.check("id", 0.0)[0]
        for i in range(1, 10):
            assert not limiter.check("id", 0.1 * i)[0]
        assert limiter.check("id", 1.0)[0]
