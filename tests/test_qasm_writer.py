"""QASM emission and round-trip tests."""

import math

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.circuits.qasm import parse_qasm
from repro.circuits.qasm_writer import circuit_to_qasm, dump_qasm, gate_to_qasm


class TestGateRendering:
    def test_plain_gate(self):
        assert gate_to_qasm(Gate("cx", (0, 1))) == "cx q[0], q[1];"

    def test_parameterized_gate(self):
        assert gate_to_qasm(Gate("rz", (0,), (math.pi / 2,))) == "rz(pi/2) q[0];"

    def test_ms_rendered_as_rxx(self):
        assert gate_to_qasm(Gate("ms", (0, 1))) == "rxx(pi/2) q[0], q[1];"

    def test_negative_angle(self):
        assert gate_to_qasm(Gate("rz", (0,), (-math.pi,))) == "rz(-pi) q[0];"

    def test_irrational_angle_repr(self):
        text = gate_to_qasm(Gate("rz", (0,), (0.12345,)))
        assert "0.12345" in text

    def test_custom_register_name(self):
        assert gate_to_qasm(Gate("h", (2,)), register="r") == "h r[2];"


class TestProgramRendering:
    def test_header_and_register(self):
        circuit = Circuit(3).add("h", 0)
        text = circuit_to_qasm(circuit)
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[3];" in text

    def test_rxx_preamble_only_when_needed(self):
        with_ms = circuit_to_qasm(Circuit(2).add("ms", 0, 1))
        without_ms = circuit_to_qasm(Circuit(2).add("cx", 0, 1))
        assert "gate rxx" in with_ms
        assert "gate rxx" not in without_ms

    def test_round_trip_standard_gates(self):
        circuit = Circuit(3)
        circuit.add("h", 0).add("cx", 0, 1).add("rz", 2, params=[0.25])
        circuit.add("cp", 1, 2, params=[math.pi / 4]).add("swap", 0, 2)
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        assert reparsed.num_qubits == 3
        assert [g.name for g in reparsed] == [g.name for g in circuit]
        for a, b in zip(reparsed, circuit):
            assert a.qubits == b.qubits
            assert a.params == b.params

    def test_round_trip_ms_via_macro(self):
        circuit = Circuit(2).add("ms", 0, 1)
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        # The macro expands to the cx-based rxx definition.
        assert reparsed.num_two_qubit_gates == 2  # two cx in the macro
        assert reparsed.num_qubits == 2

    def test_dump_qasm(self, tmp_path):
        path = tmp_path / "circ.qasm"
        dump_qasm(Circuit(2).add("cx", 0, 1), str(path))
        assert "cx q[0], q[1];" in path.read_text()

    def test_load_qasm(self, tmp_path):
        from repro.circuits.qasm import load_qasm

        path = tmp_path / "prog.qasm"
        path.write_text('OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncx q[0], q[1];\n')
        circuit = load_qasm(str(path))
        assert circuit.name == "prog"
        assert len(circuit) == 1
