"""Stable serialization of compilation/simulation outcomes.

Used by the machine-semantics golden test (and the script that records
its fixture) to reduce a full compile -> optimize -> simulate run to a
JSON-comparable summary: schedule digests, simulation-report fields and
pass accept/revert decisions.  The representation depends only on
*observable* behavior — op streams, report numbers, pass stats — so a
refactor of the implementation underneath must reproduce it exactly.
"""

from __future__ import annotations

import hashlib

from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp


def op_token(op) -> str:
    """Canonical one-line text form of a machine op."""
    if isinstance(op, GateOp):
        gate = op.gate
        params = ",".join(repr(p) for p in getattr(gate, "params", ()) or ())
        qubits = ",".join(str(q) for q in gate.qubits)
        return f"gate:{gate.name}:{qubits}:{params}:{op.trap}"
    if isinstance(op, SplitOp):
        return f"split:{op.ion}:{op.trap}:{op.reason.value}"
    if isinstance(op, MoveOp):
        return f"move:{op.ion}:{op.src}:{op.dst}:{op.reason.value}"
    if isinstance(op, MergeOp):
        return f"merge:{op.ion}:{op.trap}:{op.reason.value}:{op.position}"
    if isinstance(op, SwapOp):
        return f"swap:{op.ion_a}:{op.ion_b}:{op.trap}:{op.reason.value}"
    raise TypeError(f"unknown op {op!r}")


def schedule_digest(schedule) -> str:
    """Content hash of the exact op stream."""
    digest = hashlib.sha256()
    for op in schedule:
        digest.update(op_token(op).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def report_summary(report) -> dict:
    """All scalar fields of a SimulationReport, floats as exact reprs."""
    return {
        "program_log_fidelity": repr(report.program_log_fidelity),
        "duration": repr(report.duration),
        "num_gates": report.num_gates,
        "num_two_qubit_gates": report.num_two_qubit_gates,
        "num_shuttles": report.num_shuttles,
        "num_splits": report.num_splits,
        "num_merges": report.num_merges,
        "min_gate_fidelity": repr(report.min_gate_fidelity),
        "max_nbar": repr(report.max_nbar),
        "mean_gate_nbar": repr(report.mean_gate_nbar),
        "gate_fidelity_digest": hashlib.sha256(
            "\n".join(repr(f) for f in report.gate_fidelities).encode()
        ).hexdigest(),
    }


def pass_summary(stats) -> dict:
    """The accept/revert decision and op deltas of one pass run."""
    return {
        "name": stats.name,
        "rewrites": stats.rewrites,
        "shuttles_removed": stats.shuttles_removed,
        "splits_removed": stats.splits_removed,
        "merges_removed": stats.merges_removed,
        "swaps_removed": stats.swaps_removed,
        "ops_removed": stats.ops_removed,
        "reverted": stats.reverted,
    }


def chains_summary(chains: dict) -> dict:
    """Final per-trap chains as JSON-stable lists."""
    return {str(trap): list(chain) for trap, chain in sorted(chains.items())}


def circuit_case(circuit, machine) -> dict:
    """The full golden record for one benchmark circuit.

    Compiles with both paper configurations from the shared greedy
    mapping, runs the default pass pipeline on the optimized schedule,
    and simulates every stream.
    """
    from repro.compiler.compiler import QCCDCompiler
    from repro.compiler.config import CompilerConfig
    from repro.compiler.mapping import greedy_initial_mapping
    from repro.passes.manager import PassManager
    from repro.sim.simulator import Simulator

    chains = greedy_initial_mapping(circuit, machine)
    simulator = Simulator(machine)

    baseline = QCCDCompiler(machine, CompilerConfig.baseline()).compile(
        circuit, initial_chains=chains
    )
    optimized = QCCDCompiler(machine, CompilerConfig.optimized()).compile(
        circuit, initial_chains=chains
    )
    optimization = PassManager().run(
        optimized.schedule, machine, optimized.initial_chains
    )

    return {
        "circuit": circuit.name,
        "baseline_schedule": schedule_digest(baseline.schedule),
        "optimized_schedule": schedule_digest(optimized.schedule),
        "post_pass_schedule": schedule_digest(optimization.schedule),
        "baseline_report": report_summary(
            simulator.run(baseline.schedule, baseline.initial_chains)
        ),
        "optimized_report": report_summary(
            simulator.run(optimized.schedule, optimized.initial_chains)
        ),
        "post_pass_report": report_summary(
            simulator.run(optimization.schedule, optimized.initial_chains)
        ),
        "passes": [pass_summary(s) for s in optimization.passes],
        "baseline_final_chains": chains_summary(baseline.final_chains),
        "optimized_final_chains": chains_summary(optimized.final_chains),
        "post_pass_final_chains": chains_summary(
            optimization.final_chains or {}
        ),
    }
