"""Unit tests for the trap/topology/machine model."""

import pytest

from repro.arch import (
    QCCDMachine,
    TrapError,
    TrapSpec,
    TrapState,
    TrapTopology,
    grid_machine,
    grid_topology,
    heterogeneous_machine,
    l6_machine,
    linear_machine,
    linear_topology,
    ring_machine,
    ring_topology,
    uniform_machine,
)
from repro.arch.topology import TopologyError


class TestTrapSpec:
    def test_valid(self):
        spec = TrapSpec(trap_id=0, capacity=17, comm_capacity=2)
        assert spec.load_capacity == 15

    def test_zero_capacity_rejected(self):
        with pytest.raises(TrapError):
            TrapSpec(trap_id=0, capacity=0, comm_capacity=0)

    def test_comm_capacity_must_leave_room(self):
        with pytest.raises(TrapError):
            TrapSpec(trap_id=0, capacity=4, comm_capacity=4)
        with pytest.raises(TrapError):
            TrapSpec(trap_id=0, capacity=4, comm_capacity=-1)


class TestTrapState:
    def spec(self):
        return TrapSpec(trap_id=0, capacity=3, comm_capacity=1)

    def test_add_remove(self):
        state = TrapState(self.spec())
        state.add_ion(5)
        assert state.occupancy == 1
        assert state.excess_capacity == 2
        state.remove_ion(5)
        assert state.occupancy == 0

    def test_full_rejects_add(self):
        state = TrapState(self.spec(), chain=[1, 2, 3])
        assert state.is_full
        with pytest.raises(TrapError):
            state.add_ion(4)

    def test_duplicate_ion_rejected(self):
        state = TrapState(self.spec(), chain=[1])
        with pytest.raises(TrapError):
            state.add_ion(1)

    def test_remove_missing_rejected(self):
        with pytest.raises(TrapError):
            TrapState(self.spec()).remove_ion(9)

    def test_positional_insert(self):
        state = TrapState(self.spec(), chain=[1, 2])
        state.remove_ion(2)
        state.add_ion(3, position=0)
        assert state.chain == [3, 1]

    def test_copy_is_deep(self):
        state = TrapState(self.spec(), chain=[1])
        other = state.copy()
        other.add_ion(2)
        assert state.chain == [1]


class TestTopology:
    def test_linear(self):
        topo = linear_topology(6)
        assert topo.name == "L6"
        assert topo.edges == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(3) == [2, 4]

    def test_linear_distance(self):
        topo = linear_topology(6)
        assert topo.distance(0, 5) == 5
        assert topo.distance(4, 4) == 0
        assert topo.distance(3, 1) == 2

    def test_linear_path(self):
        assert linear_topology(6).shortest_path(1, 4) == [1, 2, 3, 4]
        assert linear_topology(6).shortest_path(4, 1) == [4, 3, 2, 1]

    def test_ring_wraps(self):
        topo = ring_topology(6)
        assert topo.distance(0, 5) == 1
        assert topo.distance(0, 3) == 3

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_grid(self):
        topo = grid_topology(2, 3)
        assert topo.num_traps == 6
        assert topo.distance(0, 5) == 3  # (0,0) -> (1,2)
        assert topo.distance(0, 3) == 1  # (0,0) -> (1,0)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            TrapTopology(2, [(0, 0)])

    def test_unknown_trap_edge_rejected(self):
        with pytest.raises(TopologyError):
            TrapTopology(2, [(0, 5)])

    def test_duplicate_edges_deduplicated(self):
        topo = TrapTopology(2, [(0, 1), (1, 0)])
        assert topo.edges == [(0, 1)]

    def test_disconnected_distance_raises(self):
        topo = TrapTopology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.distance(0, 2)
        assert not topo.is_connected()

    def test_path_endpoints_inclusive(self):
        topo = grid_topology(3, 3)
        path = topo.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == topo.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert b in topo.neighbors(a)


class TestMachine:
    def test_l6_preset_matches_paper(self):
        machine = l6_machine()
        assert machine.num_traps == 6
        assert machine.trap(0).capacity == 17
        assert machine.trap(0).comm_capacity == 2
        assert machine.total_capacity == 102
        assert machine.load_capacity == 90

    def test_uniform_machine(self):
        machine = uniform_machine(linear_topology(3), 5, 1)
        assert machine.load_capacity == 12

    def test_heterogeneous_machine(self):
        machine = heterogeneous_machine(
            linear_topology(2), capacities=[5, 4], comm_capacities=[1, 1]
        )
        assert machine.trap(0).capacity == 5
        assert machine.trap(1).capacity == 4

    def test_heterogeneous_length_mismatch(self):
        with pytest.raises(TrapError):
            heterogeneous_machine(
                linear_topology(2), capacities=[5], comm_capacities=[1, 1]
            )

    def test_spec_count_mismatch_rejected(self):
        specs = (TrapSpec(0, 4, 1),)
        with pytest.raises(TrapError):
            QCCDMachine(topology=linear_topology(2), traps=specs)

    def test_spec_id_mismatch_rejected(self):
        specs = (TrapSpec(1, 4, 1), TrapSpec(0, 4, 1))
        with pytest.raises(TrapError):
            QCCDMachine(topology=linear_topology(2), traps=specs)

    def test_disconnected_machine_rejected(self):
        topo = TrapTopology(3, [(0, 1)])
        with pytest.raises(TrapError):
            uniform_machine(topo, 4, 1)

    def test_check_fits(self):
        machine = l6_machine()
        machine.check_fits(90)
        with pytest.raises(TrapError):
            machine.check_fits(91)

    def test_presets(self):
        assert linear_machine(3).num_traps == 3
        assert ring_machine(4).num_traps == 4
        assert grid_machine(2, 3).num_traps == 6
