"""Chain-order tracking (Fig. 3 step (i)): in-chain swaps before split."""

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.circuits.circuit import Circuit
from repro.compiler import CompilerConfig, compile_circuit
from repro.compiler.state import CompilationError, CompilerState
from repro.sim import Schedule, SimulationError, Simulator
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from repro.sim.simulator import _SimState  # noqa: internal, for replay


def machine(traps=3, capacity=5, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


def ordered_config() -> CompilerConfig:
    return CompilerConfig.optimized().variant(track_chain_order=True)


class TestSwapEmission:
    def test_head_ion_moving_left_needs_no_swaps(self):
        circuit = Circuit(4).add("ms", 0, 3)
        # ion 3 is the head of T1's chain; gate pulls one ion across.
        result = compile_circuit(
            circuit,
            machine(traps=2),
            ordered_config(),
            initial_chains={0: [0, 1], 1: [3, 2]},
        )
        # Whichever ion moved, it was at the matching chain end.
        assert result.schedule.num_swaps <= 1

    def test_buried_ion_swaps_to_exit_end(self):
        # Force ion 2 (buried mid-chain in T1) to move left to T0.
        circuit = Circuit(5).add("ms", 0, 2)
        config = ordered_config().variant(
            shuttle_policy="excess-capacity"
        )
        result = compile_circuit(
            circuit,
            machine(traps=2),
            config,
            initial_chains={0: [0], 1: [1, 2, 3]},
        )
        # EC moves ion 2 into the roomier T0; it sits at index 1 of
        # [1, 2, 3] and must first swap with ion 1 (the head, since the
        # exit edge toward T0 is the low end).
        swaps = [op for op in result.schedule if isinstance(op, SwapOp)]
        assert len(swaps) == 1
        assert {swaps[0].ion_a, swaps[0].ion_b} == {1, 2}

    def test_swaps_not_counted_as_shuttles(self):
        circuit = Circuit(5).add("ms", 0, 2)
        config = ordered_config().variant(shuttle_policy="excess-capacity")
        chains = {0: [0], 1: [1, 2, 3]}
        plain = compile_circuit(
            circuit,
            machine(traps=2),
            config.variant(track_chain_order=False),
            initial_chains=chains,
        )
        ordered = compile_circuit(
            circuit, machine(traps=2), config, initial_chains=chains
        )
        assert ordered.num_shuttles == plain.num_shuttles

    def test_merge_side_recorded(self):
        # Ion moving right (T0 -> T1) enters T1 from the low edge:
        # it lands at the chain head (position 0).
        circuit = Circuit(3).add("ms", 0, 2)
        config = ordered_config().variant(shuttle_policy="excess-capacity")
        result = compile_circuit(
            circuit,
            machine(traps=2),
            config,
            initial_chains={0: [0, 1], 1: [2]},
        )
        merges = [op for op in result.schedule if isinstance(op, MergeOp)]
        moves = [op for op in result.schedule if isinstance(op, MoveOp)]
        assert len(merges) == 1
        if moves[0].dst > moves[0].src:
            assert merges[0].position == 0
        else:
            assert merges[0].position is None

    def test_multi_hop_chain_order_consistent(self):
        import random

        rng = random.Random(8)
        circuit = Circuit(12)
        for _ in range(60):
            a, b = rng.sample(range(12), 2)
            circuit.add("ms", a, b)
        result = compile_circuit(circuit, machine(traps=4), ordered_config())
        report = Simulator(machine(traps=4)).run(
            result.schedule, result.initial_chains
        )
        assert report.num_gates == 60

    def test_compiler_final_chains_match_simulator(self):
        import random

        rng = random.Random(9)
        circuit = Circuit(10)
        for _ in range(40):
            a, b = rng.sample(range(10), 2)
            circuit.add("ms", a, b)
        m = machine(traps=3)
        result = compile_circuit(circuit, m, ordered_config())
        # Replay in the simulator and compare exact chain ORDER.
        sim_state = _SimState(m, result.initial_chains)
        for op in result.schedule:
            if isinstance(op, SplitOp):
                sim_state.traps[op.trap].remove(op.ion)
                from repro.sim.simulator import _Transit

                sim_state.transit[op.ion] = _Transit(op.trap, 0.0)
            elif isinstance(op, MoveOp):
                sim_state.transit[op.ion].trap = op.dst
            elif isinstance(op, MergeOp):
                del sim_state.transit[op.ion]
                sim_state.traps[op.trap].add(op.ion, position=op.position)
            elif isinstance(op, SwapOp):
                chain = sim_state.traps[op.trap].chain
                ia, ib = chain.index(op.ion_a), chain.index(op.ion_b)
                chain[ia], chain[ib] = chain[ib], chain[ia]
        for trap_id, chain in result.final_chains.items():
            assert sim_state.traps[trap_id].chain == chain


class TestSimulatorSwapValidation:
    def params(self):
        from repro.sim import MachineParams

        return MachineParams()

    def test_swap_of_non_adjacent_rejected(self):
        ops = [SwapOp(ion_a=0, ion_b=2, trap=0)]
        with pytest.raises(SimulationError):
            Simulator(machine()).run(Schedule(ops), {0: [0, 1, 2]})

    def test_swap_of_absent_ion_rejected(self):
        ops = [SwapOp(ion_a=0, ion_b=9, trap=0)]
        with pytest.raises(SimulationError):
            Simulator(machine()).run(Schedule(ops), {0: [0, 1]})

    def test_swap_charges_time_and_heat(self):
        from repro.sim import MachineParams, NoiseParams, TimingParams

        params = MachineParams(
            TimingParams(),
            NoiseParams(
                swap_heating=1.5,
                background_heating_rate=0.0,
                recool_enabled=False,
                gate_infidelity_scale=0.0,
                heating_rate=0.0,
                one_qubit_infidelity=0.0,
            ),
        )
        ops = [
            SwapOp(ion_a=0, ion_b=1, trap=0),
            GateOp(gate=__import__("repro.circuits.gate", fromlist=["Gate"]).Gate("ms", (0, 1)), trap=0),
        ]
        report = Simulator(machine(), params).run(Schedule(ops), {0: [0, 1]})
        assert report.mean_gate_nbar == pytest.approx(1.5)
        assert report.duration == pytest.approx(
            params.timing.swap_time + params.timing.gate2q_time
        )

    def test_swap_updates_order_for_merge_positions(self):
        ops = [
            SwapOp(ion_a=0, ion_b=1, trap=0),
        ]
        sim = Simulator(machine())
        report = sim.run(Schedule(ops), {0: [0, 1]})
        assert report.num_gates == 0


class TestStateHelpers:
    def test_swap_adjacent(self):
        state = CompilerState(machine(), {0: [0, 1, 2]})
        state.swap_adjacent(0, 1)
        assert state.chains[0] == [0, 2, 1]

    def test_swap_adjacent_bounds(self):
        state = CompilerState(machine(), {0: [0, 1]})
        with pytest.raises(CompilationError):
            state.swap_adjacent(0, 1)
        with pytest.raises(CompilationError):
            state.swap_adjacent(0, -1)

    def test_positional_attach(self):
        state = CompilerState(machine(), {0: [0, 1]})
        state.detach_ion(0)
        state.attach_ion(0, 0, position=0)
        assert state.chains[0] == [0, 1]


class TestOverheadStudy:
    """Chain-order modeling adds swap overhead but preserves the
    optimized compiler's shuttle advantage."""

    def test_shuttle_counts_invariant(self):
        from repro.bench import qft_circuit
        from repro.arch import l6_machine
        from repro.compiler.mapping import greedy_initial_mapping

        circuit = qft_circuit(num_qubits=24)
        m = l6_machine()
        chains = greedy_initial_mapping(circuit, m)
        plain = compile_circuit(
            circuit, m, CompilerConfig.optimized(), initial_chains=chains
        )
        ordered = compile_circuit(
            circuit, m, ordered_config(), initial_chains=chains
        )
        assert ordered.num_shuttles == plain.num_shuttles
        assert ordered.schedule.num_swaps > 0
